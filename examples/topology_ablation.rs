//! Topology co-design ablation: the same warehouse under two designers.
//!
//! The *co-design* claim of the paper is that the traffic system's shape
//! determines which workloads are servable. This example builds one
//! warehouse grid and compares the snake designer (used for the paper
//! maps) against a deliberately throughput-poor variant with short
//! components, showing where flow synthesis starts rejecting workloads.
//!
//! Run with `cargo run --release --example topology_ablation`.

use wsp_flow::{synthesize_flow_relaxed, FlowSynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let map = wsp_maps::sorting_center()?;

    // Designer A: the shipped snake (near-uniform long components).
    let snake = &map.traffic;
    // Designer B: same ring, chopped into short components (throughput-poor:
    // a component of length l only passes l/2 agents per cycle period).
    let short = wsp_maps::SnakeLayout {
        width: 29,
        height: 14,
        aisle_ys: vec![1, 3, 5, 7, 9, 11],
        max_component_len: 12,
        orientation: wsp_traffic::RingOrientation::Forward,
    }
    .build_traffic(&map.warehouse)?;

    println!(
        "snake: {} components (t_c = {}), short-chop: {} components (t_c = {})\n",
        snake.component_count(),
        snake.cycle_time(),
        short.component_count(),
        short.cycle_time()
    );

    for units in [80u64, 160, 320, 480] {
        let workload = map.uniform_workload(units);
        let opts = FlowSynthesisOptions::default(); // strict capacity
        let a = synthesize_flow_relaxed(&map.warehouse, snake, &workload, 3_600, &opts);
        let b = synthesize_flow_relaxed(&map.warehouse, &short, &workload, 3_600, &opts);
        println!(
            "{units:4} units | snake: {} | short-chop: {}",
            verdict(&a),
            verdict(&b)
        );
    }
    println!("\nSame floorplan, same workloads — only the topology changed.");
    Ok(())
}

fn verdict(r: &Result<wsp_flow::RelaxedFlowSummary, wsp_flow::FlowError>) -> String {
    match r {
        Ok(s) => format!("feasible (min flow {:.1})", s.objective),
        Err(wsp_flow::FlowError::Infeasible { .. }) => "INFEASIBLE".to_string(),
        Err(e) => format!("error: {e}"),
    }
}
