//! Sorting-center scenario: the paper's Fig. 5 map, integer mode end to end.
//!
//! Regenerates the sorting-center instance (36 chutes, 4 bins), solves a
//! workload with the strict integer pipeline, and verifies the realized
//! multi-agent plan — the complete §V reduction, including the shelf/chute
//! role swap described in the paper.
//!
//! Run with `cargo run --release --example sorting_center`.

use wsp_core::{solve, PipelineOptions, WspInstance};
use wsp_traffic::{describe_traffic_system, render_traffic_system};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let map = wsp_maps::sorting_center()?;
    println!("{}", describe_traffic_system(&map.warehouse, &map.traffic));
    println!("{}\n", render_traffic_system(&map.warehouse, &map.traffic));

    // 160 packages to sort (Table I row 1), strict integer pipeline.
    let workload = map.uniform_workload(160);
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, 3_600);
    let report = solve(&instance, &PipelineOptions::default())?;
    println!("{}", report.summary());
    println!(
        "agents advance on schedule: {} missed advances (Property 4.1)",
        report.outcome.missed_advances
    );
    // In the sorting reduction, pickups at chutes are really deliveries of
    // sorted packages TO the chutes; the roles swap when reading the plan.
    println!(
        "sorted {} packages into chutes within {} timesteps",
        report.stats.total_delivered(),
        report.outcome.timesteps
    );
    Ok(())
}
