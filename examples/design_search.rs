//! Design-space search over sorting-center topologies: sweep the default
//! 20-candidate family in parallel, print every candidate's outcome, the
//! Pareto front over (agents, makespan, synthesis cost), and the best
//! design's full pipeline summary.
//!
//! ```text
//! cargo run --release --example design_search
//! WSP_THREADS=4 cargo run --release --example design_search
//! ```

use wsp_core::{Pipeline, PipelineOptions, WspInstance};
use wsp_explore::{evaluate_batch, sorting_center_sweep, CandidateOutcome, ExploreOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let candidates = sorting_center_sweep();
    let options = ExploreOptions::default(); // 160 units, T = 3600, auto threads

    println!(
        "exploring {} sorting-center candidates ({} units each)...",
        candidates.len(),
        options.units
    );
    let outcome = evaluate_batch(&candidates, &options);
    println!(
        "evaluated on {} threads in {:.2}s ({:.1} candidates/sec)\n",
        outcome.threads,
        outcome.wall.as_secs_f64(),
        candidates.len() as f64 / outcome.wall.as_secs_f64(),
    );

    for (i, report) in outcome.reports.iter().enumerate() {
        let marker = if outcome.front.contains(&i) { "*" } else { " " };
        match &report.outcome {
            CandidateOutcome::Solved(eval) => println!(
                "{marker} {:<44} {:>4} agents  makespan {:>5}  synth cost {:>4}",
                report.candidate.label(),
                eval.agents,
                eval.makespan,
                eval.synthesis_cost,
            ),
            CandidateOutcome::Infeasible(_) => println!(
                "{marker} {:<44} infeasible (capacity bound)",
                report.candidate.label()
            ),
            CandidateOutcome::Failed(e) => {
                println!("{marker} {:<44} failed: {e}", report.candidate.label())
            }
        }
    }

    println!("\nPareto front (* above): {:?}", outcome.front);
    let best = outcome.best().expect("at least one candidate solves");
    println!("best design: {}", best.candidate.label());

    // Re-run the winner through the staged pipeline for the full report.
    let map = best.candidate.build()?;
    let workload = map.uniform_workload(options.units);
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, options.t_limit);
    let report = Pipeline::new().run(&instance, &PipelineOptions::default())?;
    println!("{}", report.summary());
    Ok(())
}
