//! Lifelong simulation demo: the paper's sorting center run as a living
//! warehouse — a seeded zipf package stream, robots looping between chutes
//! and bins, stall deviations knocking execution off plan, MAPF catch-up
//! repair splicing detours back in, and rolling-horizon replans through
//! the staged pipeline healing whatever remains.
//!
//! ```text
//! cargo run --release --example lifelong_sim
//! ```

use wsp_core::{PipelineOptions, WspInstance};
use wsp_sim::{DeviationConfig, RepairConfig, SimConfig, Simulation, StreamConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let map = wsp_maps::sorting_center()?;
    let mix = map.zipf_workload(4_000, 1.0, 7);
    let workload = map.uniform_workload(160);
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, 3_600);

    let config = SimConfig {
        ticks: 6_000,
        stream: StreamConfig {
            mix,
            // ~200 arrivals per kilotick — just under the design's §IV-D
            // ceiling (36 deliveries per 166-tick period). The queue the
            // run still builds is the gap between theoretical and
            // *achieved* throughput: zipf skew concentrates demand on a
            // few chutes, and stalls cost cycle slots.
            mean_gap: 5,
            seed: 7,
        },
        deviations: DeviationConfig::stalls(64, 2, 8, 9),
        repair: RepairConfig {
            enabled: true,
            ..RepairConfig::default()
        },
        replan_lag: 24,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&instance, &PipelineOptions::default(), config)?;

    println!(
        "simulating {} agents on {} vertices (window {} ticks)…",
        sim.agent_count(),
        instance.warehouse.graph().vertex_count(),
        sim.window_len()
    );
    for checkpoint in 1..=6u64 {
        sim.run_ticks(1_000)?;
        let c = sim.counters();
        println!(
            "  t={:>5}: {:>4}/{:<4} tasks done, {:>3} queued, lag≤{}, {} replans, {} repairs",
            checkpoint * 1_000,
            c.completed,
            c.injected,
            c.queued,
            c.max_lag,
            c.replans,
            c.repairs_applied,
        );
    }
    let report = sim.report();
    assert!(report.counters.conserved());
    println!("\n{report}");
    println!(
        "throughput {:.2} tasks/kilotick, mean latency {:.1} ticks, utilization {:.1}%",
        report.throughput_per_kilotick() as f64,
        report.mean_latency_milliticks() as f64 / 1000.0,
        report.utilization_permille() as f64 / 10.0,
    );
    Ok(())
}
