//! Server quickstart: start `wsp-server` in-process, submit a small
//! explore sweep over HTTP, poll it to completion, fetch the canonical
//! result, and verify it matches the direct library call byte for byte.
//!
//! The same flow works from the shell against the standalone binary
//! (`cargo run --bin wsp-server`) — see `docs/SERVER.md` for the curl
//! version.
//!
//! Run with `cargo run --example server_quickstart`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use wsp_server::json::Json;
use wsp_server::spec::ExploreSpec;
use wsp_server::{serve, ServerConfig};

/// One HTTP/1.1 request against a Connection: close server.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: wsp\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8(raw).expect("utf-8");
    let (head, rest) = text.split_once("\r\n\r\n").expect("response head");
    let status = head.split(' ').nth(1).unwrap().parse().unwrap();
    (status, rest.to_string())
}

const SPEC: &str = r#"{
    "candidates": [
        {"chute_rows": 3, "chute_cols": 4, "stations": 2},
        {"chute_rows": 3, "chute_cols": 4, "stations": 4}
    ],
    "units": 24, "t_limit": 1200, "threads": 1
}"#;

fn main() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    println!("serving on http://{addr}");

    let (status, body) = http(addr, "POST", "/api/v1/jobs/explore", SPEC);
    assert_eq!(status, 202, "{body}");
    let id = Json::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    println!("submitted explore job {id}");

    loop {
        let (_, body) = http(addr, "GET", &format!("/api/v1/jobs/{id}"), "");
        let snapshot = Json::parse(&body).unwrap();
        let state = snapshot
            .get("status")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        println!(
            "  {state}: {}/{} candidates",
            snapshot.get("progress").unwrap().as_u64().unwrap(),
            snapshot.get("total").unwrap().as_u64().unwrap()
        );
        if state == "done" {
            break;
        }
        assert!(
            state == "queued" || state == "running",
            "job ended as {state}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let (status, served) = http(addr, "GET", &format!("/api/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200);
    print!("{served}");

    // The determinism guarantee: the served bytes are exactly what the
    // direct library call renders.
    let spec = ExploreSpec::from_json(&Json::parse(SPEC).unwrap()).unwrap();
    let direct = wsp_explore::evaluate_batch(&spec.candidates, &spec.options()).to_json();
    assert_eq!(served, direct);
    println!("server result is byte-identical to the direct evaluate_batch call");

    handle.shutdown();
}
