//! Quickstart: a small warehouse end to end.
//!
//! Builds a Fig. 1-style warehouse (shelves accessed from the sides,
//! stations on the bottom edge), designs a perimeter-loop traffic system,
//! synthesizes agent flows for a small workload, realizes them into a
//! collision-free plan, and verifies the plan with the independent checker.
//!
//! Run with `cargo run --example quickstart`.

use wsp_core::{solve, PipelineOptions, WspInstance};
use wsp_model::{Direction, GridMap, ProductCatalog, ProductId, Warehouse, Workload};
use wsp_traffic::{design_perimeter_loop, render_traffic_system};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shelf (#) accessed from east/west, one station (@), open floor.
    // Both shelf-access cells sit on the border, so the perimeter-loop
    // designer can cover them.
    let grid = GridMap::from_ascii(
        "...\n\
         .#.\n\
         ...\n\
         .@.",
    )?;
    let mut warehouse =
        Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West])?;
    warehouse.set_catalog(ProductCatalog::with_len(1));
    for &s in &warehouse.shelf_access().to_vec() {
        warehouse.stock(s, ProductId(0), 5_000)?;
    }

    // Co-design step: carve the floorplan into one-way road components.
    let traffic = design_perimeter_loop(&warehouse, 4)?;
    println!(
        "Traffic system ({} components, t_c = {}):",
        traffic.component_count(),
        traffic.cycle_time()
    );
    println!("{}\n", render_traffic_system(&warehouse, &traffic));

    // Problem 3.1: service 25 units within 1200 timesteps.
    let workload = Workload::from_demands(vec![25]);
    let instance = WspInstance::new(warehouse, traffic, workload, 1_200);
    let report = solve(&instance, &PipelineOptions::default())?;

    println!("Flow set:   {}", report.flow);
    println!("Cycle set:  {}", report.cycles);
    println!("Pipeline:   {}", report.summary());
    println!(
        "Verified:   plan services the workload ({} units delivered)",
        report.stats.total_delivered()
    );
    Ok(())
}
