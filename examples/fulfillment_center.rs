//! Fulfillment-center scenario: the paper's Fig. 4 map at full scale.
//!
//! Regenerates the "Fulfillment 1" evaluation instance (560 shelves, 4
//! station bays, 55 products), renders the co-designed traffic system the
//! way Fig. 4 draws it, and runs flow synthesis in the paper's real-valued
//! solver configuration for the Table I workloads.
//!
//! Run with `cargo run --release --example fulfillment_center`.

use wsp_flow::{synthesize_flow_relaxed, FlowSynthesisOptions};
use wsp_traffic::{describe_traffic_system, render_traffic_system};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let map = wsp_maps::fulfillment_center_1()?;
    println!("{}", describe_traffic_system(&map.warehouse, &map.traffic));
    println!("{}\n", render_traffic_system(&map.warehouse, &map.traffic));

    for units in [550u64, 825, 1100] {
        let workload = map.uniform_workload(units);
        let options = FlowSynthesisOptions {
            skip_capacity: true, // the paper's configuration; see DESIGN.md
            ..FlowSynthesisOptions::default()
        };
        let t0 = std::time::Instant::now();
        let summary =
            synthesize_flow_relaxed(&map.warehouse, &map.traffic, &workload, 3_600, &options)?;
        println!(
            "{} units: min total flow {:.2} per period (q_c = {}) in {:.3}s",
            units,
            summary.objective,
            summary.periods,
            t0.elapsed().as_secs_f64()
        );
    }
    Ok(())
}
