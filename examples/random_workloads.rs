//! Randomized-scenario demo: a seeded block warehouse and a Zipf-skewed
//! workload, solved end to end.
//!
//! Run with `cargo run --release --example random_workloads [seed]`.

use wsp_core::{solve, PipelineOptions, WspInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(42);

    let map = wsp_maps::random_block_warehouse(3, 12, seed)?;
    println!(
        "seed {seed}: {}x{} grid, {} shelves, {} stations, {} products",
        map.warehouse.grid().width(),
        map.warehouse.grid().height(),
        map.shelves,
        map.station_bays,
        map.products,
    );
    println!(
        "traffic: {} components, cycle time {}",
        map.traffic.component_count(),
        map.traffic.cycle_time()
    );

    // A skewed order stream: 20% of products take most of the volume.
    let workload = map.zipf_workload(120, 1.0, seed);
    let hottest = workload
        .iter()
        .max_by_key(|&(_, units)| units)
        .expect("non-empty workload");
    println!(
        "zipf workload: {} units over {} products, hottest {} x{}",
        workload.total_units(),
        workload.demanded_products(),
        hottest.0,
        hottest.1,
    );

    let instance = WspInstance::new(map.warehouse, map.traffic, workload, 3_600);
    let report = solve(&instance, &PipelineOptions::default())?;
    println!("{}", report.summary());
    Ok(())
}
