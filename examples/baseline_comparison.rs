//! Baseline comparison: contract-based co-design vs search-based MAPF.
//!
//! Mirrors the §V comparison: the baseline (Iterated ECBS / prioritized
//! planning) is given the same shelf->station itineraries that the
//! co-design pipeline produces, and its runtime growth with team size is
//! measured against the pipeline's (which is insensitive to agent count).
//!
//! Run with `cargo run --release --example baseline_comparison`.

use std::time::Instant;

use wsp_core::{solve, PipelineOptions, WspInstance};
use wsp_mapf::{InnerSolver, IteratedPlanner, MapfProblem, PrioritizedPlanner};
use wsp_model::VertexId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let map = wsp_maps::sorting_center()?;

    for units in [20u64, 40, 80] {
        // Ours: full pipeline.
        let workload = map.uniform_workload(units);
        let instance =
            WspInstance::new(map.warehouse.clone(), map.traffic.clone(), workload, 3_600);
        let t0 = Instant::now();
        let report = solve(&instance, &PipelineOptions::default())?;
        let ours = t0.elapsed();

        // Baseline: extract each agent's visit sequence from our plan and
        // ask the search-based planner to realize the same itineraries.
        let starts: Vec<VertexId> = (0..report.outcome.plan.agent_count())
            .map(|a| report.outcome.plan.state(a, 0).expect("state").at)
            .collect();
        let itineraries = itineraries_from_plan(&report);
        let problem =
            MapfProblem::new(map.warehouse.graph(), starts, itineraries).with_max_time(20_000);
        let planner = IteratedPlanner {
            inner: InnerSolver::Prioritized(PrioritizedPlanner::default()),
            max_iterations: 64,
        };
        let t1 = Instant::now();
        let baseline = planner.solve(&problem);
        let base_elapsed = t1.elapsed();

        println!(
            "{units:4} units | ours: {} agents in {:.3}s | baseline ({} agents): {}",
            report.outcome.agents,
            ours.as_secs_f64(),
            report.outcome.agents,
            match baseline {
                Ok(sol) => format!(
                    "solved in {:.3}s (makespan {})",
                    base_elapsed.as_secs_f64(),
                    sol.makespan()
                ),
                Err(e) => format!("gave up after {:.3}s ({e})", base_elapsed.as_secs_f64()),
            }
        );
    }
    Ok(())
}

/// Each agent's first few waypoints (pickup/drop-off positions) from the
/// realized plan.
fn itineraries_from_plan(report: &wsp_core::PipelineReport) -> Vec<Vec<VertexId>> {
    let plan = &report.outcome.plan;
    (0..plan.agent_count())
        .map(|a| {
            let mut goals = Vec::new();
            let traj = plan.trajectory(a);
            for w in traj.windows(2) {
                if w[0].carry != w[1].carry {
                    goals.push(w[1].at);
                    if goals.len() >= 4 {
                        break;
                    }
                }
            }
            if goals.is_empty() {
                goals.push(traj.last().expect("non-empty").at);
            }
            goals
        })
        .collect()
}
