//! Conjunctive linear predicates: the assertion language of the contracts.

use wsp_lp::{
    solve_lp, BoundOverrides, Constraint, LinExpr, LpOutcome, Rational, Relation, SimplexOptions,
};

use crate::VarRegistry;

/// A conjunction of linear constraints over non-negative variables — the
/// set of behaviours satisfying every constraint.
///
/// The empty conjunction is `⊤` (all non-negative valuations).
///
/// # Examples
///
/// ```
/// use wsp_contracts::{Predicate, VarRegistry};
/// use wsp_lp::{LinExpr, Rational, Relation};
///
/// let mut reg = VarRegistry::new();
/// let x = reg.fresh("x");
/// let mut p = Predicate::top();
/// p.require(LinExpr::var(x), Relation::Le, Rational::from(5), "cap");
/// assert!(p.is_satisfiable(&reg).unwrap());
/// assert!(p.holds_at(&[Rational::from(3)]));
/// assert!(!p.holds_at(&[Rational::from(6)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Predicate {
    constraints: Vec<Constraint>,
}

impl Predicate {
    /// The trivially true predicate `⊤`.
    pub fn top() -> Self {
        Predicate::default()
    }

    /// Adds a constraint to the conjunction.
    pub fn require(
        &mut self,
        expr: LinExpr,
        relation: Relation,
        rhs: Rational,
        label: impl Into<String>,
    ) -> &mut Self {
        self.constraints
            .push(Constraint::new(expr, relation, rhs, label));
        self
    }

    /// The constraints of the conjunction.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether this is `⊤`.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The conjunction of two predicates.
    pub fn and(&self, other: &Predicate) -> Predicate {
        let mut constraints = self.constraints.clone();
        constraints.extend(other.constraints.iter().cloned());
        Predicate { constraints }
    }

    /// Whether a valuation (non-negativity is *not* checked here) satisfies
    /// every conjunct exactly.
    pub fn holds_at(&self, values: &[Rational]) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(values))
    }

    /// Whether the predicate admits any non-negative valuation.
    ///
    /// # Errors
    ///
    /// Returns [`wsp_lp::LpError`] if the LP kernel fails.
    pub fn is_satisfiable(&self, registry: &VarRegistry) -> Result<bool, wsp_lp::LpError> {
        let mut problem = registry.to_problem();
        for c in &self.constraints {
            problem.add_constraint(c.expr.clone(), c.relation, c.rhs, c.label.clone());
        }
        // Feasibility only: zero objective.
        problem.minimize(LinExpr::new());
        let out = solve_lp::<Rational>(
            &problem,
            &BoundOverrides::none(),
            &SimplexOptions::default(),
        )?;
        Ok(matches!(out, LpOutcome::Optimal(_) | LpOutcome::Unbounded))
    }

    /// Whether `self ⟹ other` over non-negative valuations: every point of
    /// `self` satisfies every conjunct of `other`.
    ///
    /// Decided exactly, one conjunct at a time, by maximizing the conjunct's
    /// violation over `self` with the exact simplex.
    ///
    /// # Errors
    ///
    /// Returns [`wsp_lp::LpError`] if the LP kernel fails.
    pub fn implies(
        &self,
        other: &Predicate,
        registry: &VarRegistry,
    ) -> Result<bool, wsp_lp::LpError> {
        // An unsatisfiable antecedent implies everything.
        if !self.is_satisfiable(registry)? {
            return Ok(true);
        }
        for target in &other.constraints {
            let mut problem = registry.to_problem();
            for c in &self.constraints {
                problem.add_constraint(c.expr.clone(), c.relation, c.rhs, c.label.clone());
            }
            // Maximize violation of `target` over `self`.
            match target.relation {
                Relation::Le => {
                    // violated when expr > rhs: maximize expr.
                    problem.maximize(target.expr.clone());
                    if !max_at_most(&problem, target.rhs)? {
                        return Ok(false);
                    }
                }
                Relation::Ge => {
                    // violated when expr < rhs: minimize expr.
                    problem.minimize(target.expr.clone());
                    if !min_at_least(&problem, target.rhs)? {
                        return Ok(false);
                    }
                }
                Relation::Eq => {
                    let mut upper = problem.clone();
                    upper.maximize(target.expr.clone());
                    if !max_at_most(&upper, target.rhs)? {
                        return Ok(false);
                    }
                    problem.minimize(target.expr.clone());
                    if !min_at_least(&problem, target.rhs)? {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }
}

fn max_at_most(problem: &wsp_lp::Problem, bound: Rational) -> Result<bool, wsp_lp::LpError> {
    Ok(
        match solve_lp::<Rational>(problem, &BoundOverrides::none(), &SimplexOptions::default())? {
            LpOutcome::Optimal(sol) => sol.objective <= bound,
            LpOutcome::Unbounded => false,
            LpOutcome::Infeasible => true,
        },
    )
}

fn min_at_least(problem: &wsp_lp::Problem, bound: Rational) -> Result<bool, wsp_lp::LpError> {
    Ok(
        match solve_lp::<Rational>(problem, &BoundOverrides::none(), &SimplexOptions::default())? {
            LpOutcome::Optimal(sol) => sol.objective >= bound,
            LpOutcome::Unbounded => false,
            LpOutcome::Infeasible => true,
        },
    )
}

impl FromIterator<Constraint> for Predicate {
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Self {
        Predicate {
            constraints: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn top_is_satisfiable_and_implied() {
        let mut reg = VarRegistry::new();
        let x = reg.fresh("x");
        let top = Predicate::top();
        assert!(top.is_satisfiable(&reg).unwrap());
        let mut narrow = Predicate::top();
        narrow.require(LinExpr::var(x), Relation::Le, r(1), "le1");
        assert!(narrow.implies(&top, &reg).unwrap());
        assert!(!top.implies(&narrow, &reg).unwrap());
    }

    #[test]
    fn contradiction_is_unsatisfiable() {
        let mut reg = VarRegistry::new();
        let x = reg.fresh("x");
        let mut p = Predicate::top();
        p.require(LinExpr::var(x), Relation::Ge, r(5), "ge5");
        p.require(LinExpr::var(x), Relation::Le, r(3), "le3");
        assert!(!p.is_satisfiable(&reg).unwrap());
        // Ex falso quodlibet.
        let mut q = Predicate::top();
        q.require(LinExpr::var(x), Relation::Eq, r(100), "eq100");
        assert!(p.implies(&q, &reg).unwrap());
    }

    #[test]
    fn implication_between_intervals() {
        let mut reg = VarRegistry::new();
        let x = reg.fresh("x");
        let mut tight = Predicate::top();
        tight.require(LinExpr::var(x), Relation::Le, r(2), "le2");
        let mut loose = Predicate::top();
        loose.require(LinExpr::var(x), Relation::Le, r(5), "le5");
        assert!(tight.implies(&loose, &reg).unwrap());
        assert!(!loose.implies(&tight, &reg).unwrap());
    }

    #[test]
    fn equality_implication_needs_both_sides() {
        let mut reg = VarRegistry::new();
        let x = reg.fresh("x");
        let mut point = Predicate::top();
        point.require(LinExpr::var(x), Relation::Ge, r(4), "ge4");
        point.require(LinExpr::var(x), Relation::Le, r(4), "le4");
        let mut eq = Predicate::top();
        eq.require(LinExpr::var(x), Relation::Eq, r(4), "eq4");
        assert!(point.implies(&eq, &reg).unwrap());
        assert!(eq.implies(&point, &reg).unwrap());

        let mut half = Predicate::top();
        half.require(LinExpr::var(x), Relation::Le, r(4), "le4b");
        assert!(!half.implies(&eq, &reg).unwrap());
    }

    #[test]
    fn and_concatenates() {
        let mut reg = VarRegistry::new();
        let x = reg.fresh("x");
        let mut a = Predicate::top();
        a.require(LinExpr::var(x), Relation::Ge, r(1), "ge1");
        let mut b = Predicate::top();
        b.require(LinExpr::var(x), Relation::Le, r(3), "le3");
        let both = a.and(&b);
        assert_eq!(both.len(), 2);
        assert!(both.holds_at(&[r(2)]));
        assert!(!both.holds_at(&[r(0)]));
        assert!(!both.holds_at(&[r(4)]));
    }

    #[test]
    fn unbounded_direction_blocks_implication() {
        let mut reg = VarRegistry::new();
        let x = reg.fresh("x");
        let top = Predicate::top();
        let mut capped = Predicate::top();
        capped.require(LinExpr::var(x), Relation::Le, r(10), "cap");
        // x unbounded above, so top does not imply the cap.
        assert!(!top.implies(&capped, &reg).unwrap());
        // But >= 0 is implied (non-negative domain).
        let mut nonneg = Predicate::top();
        nonneg.require(LinExpr::var(x), Relation::Ge, r(0), "nonneg");
        assert!(top.implies(&nonneg, &reg).unwrap());
    }
}
