//! A shared namespace of contract variables.

use std::collections::HashMap;

use wsp_lp::{LinExpr, Problem, VarId};

/// Allocates and names the variables that contracts range over, and turns a
/// constraint system over those variables into a [`Problem`].
///
/// All contract variables are non-negative (agent flows and transfer rates
/// are counts); integer-ness is recorded per variable and honoured when
/// building ILP problems.
///
/// # Examples
///
/// ```
/// use wsp_contracts::VarRegistry;
///
/// let mut reg = VarRegistry::new();
/// let f = reg.fresh_int("f_0_1_p2");
/// assert_eq!(reg.name(f), "f_0_1_p2");
/// assert_eq!(reg.lookup("f_0_1_p2"), Some(f));
/// assert_eq!(reg.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VarRegistry {
    names: Vec<String>,
    integer: Vec<bool>,
    by_name: HashMap<String, VarId>,
}

impl VarRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        VarRegistry::default()
    }

    /// Allocates a fresh continuous variable.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered: contract variables are
    /// points of composition, so accidental shadowing is a bug.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        self.fresh_inner(name.into(), false)
    }

    /// Allocates a fresh integer variable.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered.
    pub fn fresh_int(&mut self, name: impl Into<String>) -> VarId {
        self.fresh_inner(name.into(), true)
    }

    fn fresh_inner(&mut self, name: String, integer: bool) -> VarId {
        assert!(
            !self.by_name.contains_key(&name),
            "contract variable {name:?} registered twice"
        );
        let id = VarId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.integer.push(integer);
        id
    }

    /// Looks up a variable by name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not allocated by this registry.
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// Whether a variable is integer-constrained.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not allocated by this registry.
    pub fn is_integer(&self, var: VarId) -> bool {
        self.integer[var.index()]
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Builds an empty [`Problem`] whose variables mirror this registry
    /// (same ids, names, and integrality). The caller adds constraints and
    /// an objective.
    pub fn to_problem(&self) -> Problem {
        let mut p = Problem::new();
        for (i, name) in self.names.iter().enumerate() {
            let v = if self.integer[i] {
                p.add_int_var(name.clone())
            } else {
                p.add_var(name.clone())
            };
            debug_assert_eq!(v.index(), i);
        }
        p
    }

    /// Convenience: a `1·var` expression.
    pub fn expr(&self, var: VarId) -> LinExpr {
        LinExpr::var(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocates_dense_ids() {
        let mut reg = VarRegistry::new();
        let a = reg.fresh("a");
        let b = reg.fresh_int("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert!(!reg.is_integer(a));
        assert!(reg.is_integer(b));
        assert!(!reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut reg = VarRegistry::new();
        reg.fresh("x");
        reg.fresh("x");
    }

    #[test]
    fn to_problem_mirrors_registry() {
        let mut reg = VarRegistry::new();
        reg.fresh("a");
        reg.fresh_int("b");
        let p = reg.to_problem();
        assert_eq!(p.var_count(), 2);
        let ints: Vec<_> = p.integer_vars().collect();
        assert_eq!(ints.len(), 1);
        assert_eq!(p.var(ints[0]).name, "b");
    }
}
