//! The assume–guarantee contract type and its algebra.

use std::fmt;

use wsp_lp::{LinExpr, Problem};

use crate::{Predicate, VarRegistry};

/// Errors from contract-algebra operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ContractError {
    /// The underlying LP kernel failed during a semantic check.
    Lp(wsp_lp::LpError),
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::Lp(e) => write!(f, "contract check failed in LP kernel: {e}"),
        }
    }
}

impl std::error::Error for ContractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContractError::Lp(e) => Some(e),
        }
    }
}

impl From<wsp_lp::LpError> for ContractError {
    fn from(e: wsp_lp::LpError) -> Self {
        ContractError::Lp(e)
    }
}

/// An assume–guarantee contract `C := (V, A, G)` in the conjunctive
/// linear fragment (see the crate docs for the composition semantics).
///
/// # Examples
///
/// ```
/// use wsp_contracts::{AgContract, Predicate, VarRegistry};
/// use wsp_lp::{LinExpr, Rational, Relation};
///
/// let mut reg = VarRegistry::new();
/// let fin = reg.fresh_int("f_in");
/// let fout = reg.fresh_int("f_out");
///
/// let mut a = Predicate::top();
/// a.require(LinExpr::var(fin), Relation::Le, Rational::from(4), "entry cap");
/// let mut g = Predicate::top();
/// let mut conserve = LinExpr::var(fout);
/// conserve.add_term(fin, -Rational::ONE);
/// g.require(conserve, Relation::Eq, Rational::ZERO, "conservation");
///
/// let c = AgContract::new("transport", a, g);
/// assert!(c.is_consistent(&reg)?);
/// assert!(c.is_compatible(&reg)?);
/// # Ok::<(), wsp_contracts::ContractError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgContract {
    name: String,
    assumptions: Predicate,
    guarantees: Predicate,
}

impl AgContract {
    /// Creates a contract from assumption and guarantee predicates.
    pub fn new(name: impl Into<String>, assumptions: Predicate, guarantees: Predicate) -> Self {
        AgContract {
            name: name.into(),
            assumptions,
            guarantees,
        }
    }

    /// The contract's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assumption predicate `A`.
    pub fn assumptions(&self) -> &Predicate {
        &self.assumptions
    }

    /// The guarantee predicate `G`.
    pub fn guarantees(&self) -> &Predicate {
        &self.guarantees
    }

    /// Composition `C₁ ⊗ C₂` in the conjunctive fragment: the contract of
    /// the system formed by connecting the two components.
    ///
    /// `G = G₁ ∧ G₂`; `A = A₁ ∧ A₂` (a sound strengthening of the exact
    /// `(A₁ ∧ A₂) ∨ ¬G` — see the crate docs).
    pub fn compose(&self, other: &AgContract) -> AgContract {
        AgContract {
            name: format!("({} ⊗ {})", self.name, other.name),
            assumptions: self.assumptions.and(&other.assumptions),
            guarantees: self.guarantees.and(&other.guarantees),
        }
    }

    /// Conjunction `C₁ ∧ C₂`: a contract imposing both requirements.
    ///
    /// `G = G₁ ∧ G₂`; `A = A₁ ∧ A₂` (exact disjunction of assumptions
    /// leaves the conjunctive fragment; the strengthening is sound for
    /// synthesis, and the consistency region `A ∧ G` matches the paper's
    /// solved system exactly).
    pub fn conjoin(&self, other: &AgContract) -> AgContract {
        AgContract {
            name: format!("({} ∧ {})", self.name, other.name),
            assumptions: self.assumptions.and(&other.assumptions),
            guarantees: self.guarantees.and(&other.guarantees),
        }
    }

    /// Composes an iterator of contracts (`⊗` over all of them), starting
    /// from the identity contract `(⊤, ⊤)`.
    pub fn compose_all<'a>(
        name: impl Into<String>,
        contracts: impl IntoIterator<Item = &'a AgContract>,
    ) -> AgContract {
        let mut assumptions = Predicate::top();
        let mut guarantees = Predicate::top();
        for c in contracts {
            assumptions = assumptions.and(&c.assumptions);
            guarantees = guarantees.and(&c.guarantees);
        }
        AgContract {
            name: name.into(),
            assumptions,
            guarantees,
        }
    }

    /// Consistency: `A ∧ G` admits a behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::Lp`] if the LP kernel fails.
    pub fn is_consistent(&self, registry: &VarRegistry) -> Result<bool, ContractError> {
        Ok(self
            .assumptions
            .and(&self.guarantees)
            .is_satisfiable(registry)?)
    }

    /// Compatibility: `A` admits an environment behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::Lp`] if the LP kernel fails.
    pub fn is_compatible(&self, registry: &VarRegistry) -> Result<bool, ContractError> {
        Ok(self.assumptions.is_satisfiable(registry)?)
    }

    /// Refinement `self ⪯ other`: `self` can replace `other` in any
    /// environment — it assumes no more (`A_other ⟹ A_self`) and
    /// guarantees no less (`A_other ∧ G_self ⟹ G_other`).
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::Lp`] if the LP kernel fails.
    pub fn refines(
        &self,
        other: &AgContract,
        registry: &VarRegistry,
    ) -> Result<bool, ContractError> {
        if !other.assumptions.implies(&self.assumptions, registry)? {
            return Ok(false);
        }
        let strengthened = other.assumptions.and(&self.guarantees);
        Ok(strengthened.implies(&other.guarantees, registry)?)
    }

    /// Builds the synthesis problem for this contract: variables mirror the
    /// registry, constraints are `A ∧ G`, and `objective` is minimized.
    /// This is the system the paper hands to Z3 (Fig. 3); here it goes to
    /// the ILP solver.
    pub fn synthesis_problem(&self, registry: &VarRegistry, objective: LinExpr) -> Problem {
        let mut problem = registry.to_problem();
        for c in self.assumptions.constraints() {
            problem.add_constraint(
                c.expr.clone(),
                c.relation,
                c.rhs,
                format!("[{}|A] {}", self.name, c.label),
            );
        }
        for c in self.guarantees.constraints() {
            problem.add_constraint(
                c.expr.clone(),
                c.relation,
                c.rhs,
                format!("[{}|G] {}", self.name, c.label),
            );
        }
        problem.minimize(objective);
        problem
    }
}

impl fmt::Display for AgContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: A[{} constraints] G[{} constraints]",
            self.name,
            self.assumptions.len(),
            self.guarantees.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_lp::{LinExpr, Rational, Relation};

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    fn capped(reg: &mut VarRegistry, name: &str, cap: i128) -> (AgContract, wsp_lp::VarId) {
        let v = reg.fresh_int(name);
        let mut a = Predicate::top();
        a.require(LinExpr::var(v), Relation::Le, r(cap), format!("{name} cap"));
        (AgContract::new(name, a, Predicate::top()), v)
    }

    #[test]
    fn composition_accumulates_constraints() {
        let mut reg = VarRegistry::new();
        let (c1, _) = capped(&mut reg, "a", 3);
        let (c2, _) = capped(&mut reg, "b", 5);
        let composed = c1.compose(&c2);
        assert_eq!(composed.assumptions().len(), 2);
        assert!(composed.is_consistent(&reg).unwrap());
    }

    #[test]
    fn compose_all_matches_pairwise() {
        let mut reg = VarRegistry::new();
        let (c1, _) = capped(&mut reg, "a", 3);
        let (c2, _) = capped(&mut reg, "b", 5);
        let (c3, _) = capped(&mut reg, "c", 7);
        let all = AgContract::compose_all("ts", [&c1, &c2, &c3]);
        let pairwise = c1.compose(&c2).compose(&c3);
        assert_eq!(all.assumptions(), pairwise.assumptions());
        assert_eq!(all.guarantees(), pairwise.guarantees());
    }

    #[test]
    fn inconsistent_contract_detected() {
        let mut reg = VarRegistry::new();
        let v = reg.fresh_int("x");
        let mut a = Predicate::top();
        a.require(LinExpr::var(v), Relation::Le, r(1), "le");
        let mut g = Predicate::top();
        g.require(LinExpr::var(v), Relation::Ge, r(2), "ge");
        let c = AgContract::new("bad", a, g);
        assert!(!c.is_consistent(&reg).unwrap());
        // Still compatible: the assumption alone is satisfiable.
        assert!(c.is_compatible(&reg).unwrap());
    }

    #[test]
    fn refinement_weaker_assumption_stronger_guarantee() {
        let mut reg = VarRegistry::new();
        let v = reg.fresh_int("x");
        // Abstract contract: assumes x <= 2, guarantees x <= 10.
        let mut a_abs = Predicate::top();
        a_abs.require(LinExpr::var(v), Relation::Le, r(2), "a");
        let mut g_abs = Predicate::top();
        g_abs.require(LinExpr::var(v), Relation::Le, r(10), "g");
        let abstract_c = AgContract::new("abstract", a_abs, g_abs);
        // Refined contract: assumes x <= 5 (weaker), guarantees x <= 8 (stronger).
        let mut a_ref = Predicate::top();
        a_ref.require(LinExpr::var(v), Relation::Le, r(5), "a");
        let mut g_ref = Predicate::top();
        g_ref.require(LinExpr::var(v), Relation::Le, r(8), "g");
        let refined = AgContract::new("refined", a_ref, g_ref);

        assert!(refined.refines(&abstract_c, &reg).unwrap());
        assert!(!abstract_c.refines(&refined, &reg).unwrap());
    }

    #[test]
    fn refinement_is_reflexive() {
        let mut reg = VarRegistry::new();
        let (c, _) = capped(&mut reg, "a", 3);
        assert!(c.refines(&c, &reg).unwrap());
    }

    #[test]
    fn synthesis_problem_collects_a_and_g() {
        let mut reg = VarRegistry::new();
        let v = reg.fresh_int("x");
        let mut a = Predicate::top();
        a.require(LinExpr::var(v), Relation::Le, r(4), "cap");
        let mut g = Predicate::top();
        g.require(LinExpr::var(v), Relation::Ge, r(2), "demand");
        let c = AgContract::new("c", a, g);
        let p = c.synthesis_problem(&reg, LinExpr::var(v));
        assert_eq!(p.constraint_count(), 2);
        match wsp_lp::solve_ilp(&p, &wsp_lp::IlpOptions::default()).unwrap() {
            wsp_lp::IlpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(2)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
