//! Assume–guarantee (A/G) contracts over linear-arithmetic predicates.
//!
//! This crate replaces the CHASE requirement-engineering front end used by
//! the paper (§II-B, §IV-D): it provides the contract algebra — composition
//! `⊗`, conjunction `∧`, refinement, compatibility, and consistency — for
//! contracts whose assumptions and guarantees are conjunctions of linear
//! constraints over non-negative variables (exactly the fragment the
//! paper's component and workload contracts live in). All semantic checks
//! (implication, feasibility) are discharged with the exact LP machinery of
//! [`wsp_lp`].
//!
//! # The conjunctive fragment
//!
//! True A/G composition produces assumption sets of the form
//! `(A₁ ∧ A₂) ∨ ¬(G₁ ∧ G₂)`, which leaves the conjunctive fragment. This
//! crate keeps `A = A₁ ∧ A₂`, a *stronger* assumption — the resulting
//! contract refines the true composition, which is sound for synthesis:
//! any flow accepted under the approximated contract is accepted under the
//! true one. The same approximation is applied to conjunction. The
//! *consistency region* `A ∧ G` — the constraint system actually handed to
//! the solver — is computed exactly.
//!
//! # Examples
//!
//! ```
//! use wsp_contracts::{AgContract, Predicate, VarRegistry};
//! use wsp_lp::{LinExpr, Rational, Relation};
//!
//! let mut reg = VarRegistry::new();
//! let flow = reg.fresh_int("flow_in");
//!
//! // Component: assumes at most 3 agents enter; guarantees >= 0 leave.
//! let mut assume = Predicate::top();
//! assume.require(LinExpr::var(flow), Relation::Le, Rational::from(3), "cap");
//! let contract = AgContract::new("row", assume, Predicate::top());
//! assert!(contract.is_consistent(&reg).unwrap());
//! ```

#![warn(missing_docs)]

mod contract;
mod predicate;
mod registry;

pub use contract::{AgContract, ContractError};
pub use predicate::Predicate;
pub use registry::VarRegistry;
