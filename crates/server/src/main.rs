//! The `wsp-server` binary: bind an address, serve jobs until killed.
//!
//! Flags (each with an environment fallback):
//!
//! - `--addr HOST:PORT` / `WSP_SERVER_ADDR` (default `127.0.0.1:7878`)
//! - `--http-threads N` / `WSP_SERVER_HTTP_THREADS` (default 4)
//! - `--job-workers N` / `WSP_SERVER_JOB_WORKERS` (default 1)
//! - `--queue-cap N` / `WSP_SERVER_QUEUE_CAP` (default 64)

use std::process::ExitCode;

use wsp_server::{serve, ServerConfig};

fn usage() -> String {
    "usage: wsp-server [--addr HOST:PORT] [--http-threads N] \
     [--job-workers N] [--queue-cap N]"
        .to_string()
}

/// One knob: CLI flag first, then environment variable, then default.
fn knob(
    args: &mut std::collections::HashMap<String, String>,
    flag: &str,
    env: &str,
    default: usize,
) -> Result<usize, String> {
    let raw = match args.remove(flag) {
        Some(v) => v,
        None => match std::env::var(env) {
            Ok(v) => v,
            Err(_) => return Ok(default),
        },
    };
    wsp_core::parse_threads(&raw).map_err(|e| format!("{flag}: {e}"))
}

fn run() -> Result<(), String> {
    let mut args = std::collections::HashMap::new();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--help" || flag == "-h" {
            println!("{}", usage());
            return Ok(());
        }
        let value = argv.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if !["--addr", "--http-threads", "--job-workers", "--queue-cap"].contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag}\n{}", usage()));
        }
        args.insert(flag, value);
    }
    let addr = args
        .remove("--addr")
        .or_else(|| std::env::var("WSP_SERVER_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let config = ServerConfig {
        http_threads: knob(&mut args, "--http-threads", "WSP_SERVER_HTTP_THREADS", 4)?,
        job_workers: knob(&mut args, "--job-workers", "WSP_SERVER_JOB_WORKERS", 1)?,
        queue_capacity: knob(&mut args, "--queue-cap", "WSP_SERVER_QUEUE_CAP", 64)?,
    };
    let handle = serve(&addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("wsp-server listening on http://{}", handle.addr());
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
