//! Job specifications: the JSON bodies `POST /api/v1/jobs/{explore,sim}`
//! accept, validated strictly at submit time.
//!
//! Unknown fields are rejected (a typoed knob fails the submission with
//! `400` instead of silently running the default), and every field is
//! range-checked by the same constructors the library path uses, so a
//! spec that submits cleanly runs exactly like the equivalent direct
//! library call.

use crate::json::Json;
use wsp_explore::{sorting_center_sweep, DesignCandidate, ExploreOptions, SimScoring};
use wsp_maps::SortingCenterParams;
use wsp_sim::{
    AssignConfig, AssignPolicy, DeviationConfig, FaultConfig, RepairConfig, SimConfig, SimEngine,
    StreamConfig,
};
use wsp_traffic::RingOrientation;

/// Errors on any object field outside `allowed`.
fn check_keys(value: &Json, what: &str, allowed: &[&str]) -> Result<(), String> {
    let fields = value
        .as_object()
        .ok_or_else(|| format!("{what} must be an object, got {}", value.kind()))?;
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown {what} field {key:?} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn get_u64(value: &Json, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key} must be a non-negative integer, got {}", v.kind())),
    }
}

fn get_usize(value: &Json, key: &str, default: usize) -> Result<usize, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("{key} must be a non-negative integer, got {}", v.kind())),
    }
}

fn get_u32(value: &Json, key: &str, default: u32) -> Result<u32, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u32()
            .ok_or_else(|| format!("{key} must be a non-negative integer, got {}", v.kind())),
    }
}

fn get_threads(value: &Json) -> Result<Option<usize>, String> {
    match value.get("threads") {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("threads must be a non-negative integer, got {}", v.kind())),
    }
}

/// Parses a `"map"` object into [`SortingCenterParams`], defaulting every
/// absent knob to [`SortingCenterParams::paper`].
fn parse_params(value: &Json) -> Result<SortingCenterParams, String> {
    check_keys(
        value,
        "map",
        &[
            "chute_rows",
            "chute_cols",
            "chute_step",
            "aisle_pitch",
            "stations",
            "station_offset",
            "max_products",
            "max_component_len",
            "orientation",
        ],
    )?;
    let paper = SortingCenterParams::paper();
    let orientation = match value.get("orientation") {
        None => paper.orientation,
        Some(v) => match v.as_str() {
            Some("forward") => RingOrientation::Forward,
            Some("reversed") => RingOrientation::Reversed,
            _ => {
                return Err(format!(
                    "orientation must be \"forward\" or \"reversed\", got {v}"
                ))
            }
        },
    };
    Ok(SortingCenterParams {
        chute_rows: get_u32(value, "chute_rows", paper.chute_rows)?,
        chute_cols: get_u32(value, "chute_cols", paper.chute_cols)?,
        chute_step: get_u32(value, "chute_step", paper.chute_step)?,
        aisle_pitch: get_u32(value, "aisle_pitch", paper.aisle_pitch)?,
        stations: get_u32(value, "stations", paper.stations)?,
        station_offset: get_u32(value, "station_offset", paper.station_offset)?,
        max_products: get_u32(value, "max_products", paper.max_products)?,
        max_component_len: get_usize(value, "max_component_len", paper.max_component_len)?,
        orientation,
    })
}

/// A validated explore job: a candidate list plus batch options.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// The candidates to evaluate (the default sorting-center sweep when
    /// the spec names none).
    pub candidates: Vec<DesignCandidate>,
    /// Workload units per candidate.
    pub units: u64,
    /// Plan-length limit `T` per candidate.
    pub t_limit: usize,
    /// Worker-thread budget for this job (`None`: `WSP_THREADS`, then
    /// available parallelism — resolved by [`wsp_core::resolve_threads`]).
    pub threads: Option<usize>,
    /// Optional lifelong scoring stage.
    pub sim: Option<SimScoring>,
}

impl ExploreSpec {
    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// A message naming the offending field; the caller maps it to `400`.
    pub fn from_json(value: &Json) -> Result<ExploreSpec, String> {
        check_keys(
            value,
            "explore spec",
            &["candidates", "units", "t_limit", "threads", "sim"],
        )?;
        let defaults = ExploreOptions::default();
        let candidates = match value.get("candidates") {
            None => sorting_center_sweep(),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| format!("candidates must be an array, got {}", v.kind()))?;
                if items.is_empty() {
                    return Err("candidates must not be empty".to_string());
                }
                items
                    .iter()
                    .map(|item| parse_params(item).map(DesignCandidate::new))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let sim = match value.get("sim") {
            None => None,
            Some(v) => Some(parse_scoring(v)?),
        };
        Ok(ExploreSpec {
            candidates,
            units: get_u64(value, "units", defaults.units)?,
            t_limit: get_usize(value, "t_limit", defaults.t_limit)?,
            threads: get_threads(value)?,
            sim,
        })
    }

    /// The [`ExploreOptions`] this spec evaluates under.
    pub fn options(&self) -> ExploreOptions {
        ExploreOptions {
            threads: self.threads,
            units: self.units,
            t_limit: self.t_limit,
            sim: self.sim.clone(),
            ..ExploreOptions::default()
        }
    }

    /// Progress denominator: candidates to evaluate.
    pub fn total(&self) -> u64 {
        self.candidates.len() as u64
    }
}

/// Parses the explore spec's optional `"sim"` scoring stage.
fn parse_scoring(value: &Json) -> Result<SimScoring, String> {
    check_keys(
        value,
        "sim scoring",
        &[
            "ticks",
            "window",
            "units",
            "zipf_exponent",
            "mean_gap",
            "seed",
            "policy",
        ],
    )?;
    let defaults = SimScoring::default();
    Ok(SimScoring {
        ticks: get_u64(value, "ticks", defaults.ticks)?,
        window: get_usize(value, "window", defaults.window)?,
        units: get_u64(value, "units", defaults.units)?,
        zipf_exponent: match value.get("zipf_exponent") {
            None => defaults.zipf_exponent,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("zipf_exponent must be a number, got {}", v.kind()))?,
        },
        mean_gap: get_u32(value, "mean_gap", defaults.mean_gap)?,
        seed: get_u64(value, "seed", defaults.seed)?,
        policy: parse_policy(value, defaults.policy)?,
    })
}

fn parse_policy(value: &Json, default: AssignPolicy) -> Result<AssignPolicy, String> {
    match value.get("policy") {
        None => Ok(default),
        Some(v) => match v.as_str() {
            Some("static") => Ok(AssignPolicy::Static),
            Some("auction") => Ok(AssignPolicy::Auction),
            _ => Err(format!("policy must be \"static\" or \"auction\", got {v}")),
        },
    }
}

/// A validated lifelong-simulation job over one sorting-center design.
#[derive(Debug, Clone)]
pub struct SimSpec {
    /// The design to simulate.
    pub params: SortingCenterParams,
    /// Total workload units (both the synthesis workload and the arrival
    /// mix use this).
    pub units: u64,
    /// Plan-length limit `T` for the synthesis stage.
    pub t_limit: usize,
    /// Ticks to simulate.
    pub ticks: u64,
    /// Rolling-horizon window (`0`: the simulator's auto default).
    pub window: usize,
    /// Skew of the arrival mix (`None`: uniform mix).
    pub zipf_exponent: Option<f64>,
    /// Seed for the zipf popularity permutation.
    pub workload_seed: u64,
    /// Mean ticks between arrivals.
    pub mean_gap: u32,
    /// Seed for the arrival permutation and gaps.
    pub stream_seed: u64,
    /// Task-assignment policy.
    pub policy: AssignPolicy,
    /// The stepping core.
    pub engine: SimEngine,
    /// The stall-deviation process (`DeviationConfig::none()` default).
    pub deviations: DeviationConfig,
    /// The fault-injection layer — agent breakdowns, station outages,
    /// corridor closures (`FaultConfig::none()` default; a stream fires
    /// only when its `*_gap` is non-zero).
    pub faults: FaultConfig,
    /// The catch-up repair stage; the job's thread budget lives in
    /// `repair.threads`.
    pub repair: RepairConfig,
}

impl SimSpec {
    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// A message naming the offending field; the caller maps it to `400`.
    pub fn from_json(value: &Json) -> Result<SimSpec, String> {
        check_keys(
            value,
            "sim spec",
            &[
                "map",
                "units",
                "t_limit",
                "ticks",
                "window",
                "zipf_exponent",
                "workload_seed",
                "mean_gap",
                "stream_seed",
                "policy",
                "engine",
                "deviations",
                "faults",
                "repair",
                "threads",
            ],
        )?;
        let params = match value.get("map") {
            None => SortingCenterParams::paper(),
            Some(v) => parse_params(v)?,
        };
        let engine = match value.get("engine") {
            None => SimEngine::default(),
            Some(v) => match v.as_str() {
                Some("event") => SimEngine::Event,
                Some("reference") => SimEngine::Reference,
                _ => {
                    return Err(format!(
                        "engine must be \"event\" or \"reference\", got {v}"
                    ))
                }
            },
        };
        let deviations = match value.get("deviations") {
            None => DeviationConfig::none(),
            Some(v) => {
                check_keys(
                    v,
                    "deviations",
                    &["mean_gap", "min_ticks", "max_ticks", "seed"],
                )?;
                DeviationConfig::stalls(
                    get_u32(v, "mean_gap", 0)?,
                    get_u32(v, "min_ticks", 1)?,
                    get_u32(v, "max_ticks", 1)?,
                    get_u64(v, "seed", 0)?,
                )
            }
        };
        let faults = match value.get("faults") {
            None => FaultConfig::none(),
            Some(v) => {
                check_keys(
                    v,
                    "faults",
                    &[
                        "breakdown_gap",
                        "breakdown_min_ticks",
                        "breakdown_max_ticks",
                        "permanent_permille",
                        "outage_gap",
                        "outage_min_ticks",
                        "outage_max_ticks",
                        "closure_gap",
                        "closure_min_ticks",
                        "closure_max_ticks",
                        "closure_len",
                        "seed",
                    ],
                )?;
                let defaults = FaultConfig::default();
                FaultConfig {
                    breakdown_gap: get_u32(v, "breakdown_gap", defaults.breakdown_gap)?,
                    breakdown_min_ticks: get_u32(
                        v,
                        "breakdown_min_ticks",
                        defaults.breakdown_min_ticks,
                    )?,
                    breakdown_max_ticks: get_u32(
                        v,
                        "breakdown_max_ticks",
                        defaults.breakdown_max_ticks,
                    )?,
                    permanent_permille: get_u32(
                        v,
                        "permanent_permille",
                        defaults.permanent_permille,
                    )?,
                    outage_gap: get_u32(v, "outage_gap", defaults.outage_gap)?,
                    outage_min_ticks: get_u32(v, "outage_min_ticks", defaults.outage_min_ticks)?,
                    outage_max_ticks: get_u32(v, "outage_max_ticks", defaults.outage_max_ticks)?,
                    closure_gap: get_u32(v, "closure_gap", defaults.closure_gap)?,
                    closure_min_ticks: get_u32(v, "closure_min_ticks", defaults.closure_min_ticks)?,
                    closure_max_ticks: get_u32(v, "closure_max_ticks", defaults.closure_max_ticks)?,
                    closure_len: get_u32(v, "closure_len", defaults.closure_len)?,
                    seed: get_u64(v, "seed", defaults.seed)?,
                }
            }
        };
        let mut repair = match value.get("repair") {
            None => RepairConfig::default(),
            Some(v) => {
                check_keys(
                    v,
                    "repair",
                    &[
                        "enabled",
                        "lag_threshold",
                        "slack",
                        "lookahead",
                        "cooldown",
                        "max_batch",
                        "threads",
                    ],
                )?;
                let defaults = RepairConfig::default();
                RepairConfig {
                    enabled: match v.get("enabled") {
                        None => true,
                        Some(b) => b
                            .as_bool()
                            .ok_or_else(|| format!("enabled must be a bool, got {}", b.kind()))?,
                    },
                    lag_threshold: get_usize(v, "lag_threshold", defaults.lag_threshold)?,
                    slack: get_usize(v, "slack", defaults.slack)?,
                    lookahead: get_usize(v, "lookahead", defaults.lookahead)?,
                    cooldown: get_u64(v, "cooldown", defaults.cooldown)?,
                    max_batch: get_usize(v, "max_batch", defaults.max_batch)?,
                    threads: get_threads(v)?,
                }
            }
        };
        // The top-level thread budget routes into the repair fan-out (the
        // only parallel stage a sim job has).
        if let Some(threads) = get_threads(value)? {
            repair.threads = Some(threads);
        }
        Ok(SimSpec {
            params,
            units: get_u64(value, "units", 96)?,
            t_limit: get_usize(value, "t_limit", 3_600)?,
            ticks: get_u64(value, "ticks", 600)?,
            window: get_usize(value, "window", 0)?,
            zipf_exponent: match value.get("zipf_exponent") {
                None => None,
                Some(v) => {
                    Some(v.as_f64().ok_or_else(|| {
                        format!("zipf_exponent must be a number, got {}", v.kind())
                    })?)
                }
            },
            workload_seed: get_u64(value, "workload_seed", 7)?,
            mean_gap: get_u32(value, "mean_gap", 4)?,
            stream_seed: get_u64(value, "stream_seed", 0x5eed)?,
            policy: parse_policy(value, AssignPolicy::Static)?,
            engine,
            deviations,
            faults,
            repair,
        })
    }

    /// The [`SimConfig`] this spec runs under, given the arrival mix drawn
    /// from the built map.
    pub fn config(&self, mix: wsp_model::Workload) -> SimConfig {
        SimConfig {
            ticks: self.ticks,
            window: self.window,
            stream: StreamConfig {
                mix,
                mean_gap: self.mean_gap,
                seed: self.stream_seed,
            },
            assign: AssignConfig {
                policy: self.policy,
                ..AssignConfig::default()
            },
            deviations: self.deviations.clone(),
            faults: self.faults,
            repair: self.repair.clone(),
            engine: self.engine,
            ..SimConfig::default()
        }
    }

    /// Progress denominator: ticks to simulate.
    pub fn total(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn explore_spec_defaults_to_the_sweep() {
        let spec = ExploreSpec::from_json(&parse("{}")).unwrap();
        assert_eq!(spec.candidates.len(), 20);
        assert_eq!(spec.units, ExploreOptions::default().units);
        assert!(spec.sim.is_none());
        assert_eq!(spec.total(), 20);
    }

    #[test]
    fn explore_spec_parses_candidates_and_scoring() {
        let spec = ExploreSpec::from_json(&parse(
            r#"{
                "candidates": [
                    {"chute_rows": 3, "chute_cols": 4, "stations": 2},
                    {"orientation": "reversed"}
                ],
                "units": 24, "t_limit": 1200, "threads": 2,
                "sim": {"ticks": 100, "policy": "auction"}
            }"#,
        ))
        .unwrap();
        assert_eq!(spec.candidates.len(), 2);
        assert_eq!(spec.candidates[0].params.chute_rows, 3);
        assert_eq!(
            spec.candidates[1].params.orientation,
            RingOrientation::Reversed
        );
        assert_eq!(spec.threads, Some(2));
        let scoring = spec.sim.as_ref().unwrap();
        assert_eq!(scoring.ticks, 100);
        assert_eq!(scoring.policy, AssignPolicy::Auction);
        let options = spec.options();
        assert_eq!(options.units, 24);
        assert_eq!(options.t_limit, 1200);
    }

    #[test]
    fn unknown_and_mistyped_fields_are_rejected() {
        assert!(ExploreSpec::from_json(&parse(r#"{"unitz": 10}"#))
            .unwrap_err()
            .contains("unitz"));
        assert!(ExploreSpec::from_json(&parse(r#"{"units": "ten"}"#))
            .unwrap_err()
            .contains("units"));
        assert!(ExploreSpec::from_json(&parse(r#"{"candidates": []}"#))
            .unwrap_err()
            .contains("empty"));
        assert!(
            ExploreSpec::from_json(&parse(r#"{"candidates": [{"chute_rowz": 3}]}"#))
                .unwrap_err()
                .contains("chute_rowz")
        );
        assert!(SimSpec::from_json(&parse(r#"{"engine": "warp"}"#))
            .unwrap_err()
            .contains("engine"));
        assert!(SimSpec::from_json(&parse(r#"{"policy": "greedy"}"#))
            .unwrap_err()
            .contains("policy"));
    }

    #[test]
    fn sim_spec_parses_faults_and_rejects_unknown_fault_fields() {
        let spec = SimSpec::from_json(&parse(
            r#"{
                "ticks": 200,
                "faults": {"breakdown_gap": 40, "permanent_permille": 250,
                           "outage_gap": 90, "closure_gap": 70, "seed": 3}
            }"#,
        ))
        .unwrap();
        assert!(spec.faults.enabled());
        assert_eq!(spec.faults.breakdown_gap, 40);
        assert_eq!(spec.faults.permanent_permille, 250);
        assert_eq!(spec.faults.outage_gap, 90);
        assert_eq!(spec.faults.closure_gap, 70);
        assert_eq!(spec.faults.seed, 3);
        // Unset spans keep the library defaults.
        assert_eq!(spec.faults.breakdown_min_ticks, 50);
        let config = spec.config(wsp_model::Workload::from_demands(vec![1; 3]));
        assert!(config.faults.enabled());

        let absent = SimSpec::from_json(&parse(r#"{"ticks": 200}"#)).unwrap();
        assert!(!absent.faults.enabled(), "no faults block, no faults");

        assert!(
            SimSpec::from_json(&parse(r#"{"faults": {"breakdown_gapp": 4}}"#))
                .unwrap_err()
                .contains("breakdown_gapp")
        );
        assert!(SimSpec::from_json(&parse(r#"{"faults": {"seed": "x"}}"#))
            .unwrap_err()
            .contains("seed"));
    }

    #[test]
    fn sim_spec_routes_threads_into_repair() {
        let spec = SimSpec::from_json(&parse(
            r#"{
                "map": {"chute_rows": 3, "chute_cols": 4, "stations": 2},
                "ticks": 260, "threads": 3,
                "deviations": {"mean_gap": 16, "min_ticks": 2, "max_ticks": 7, "seed": 9},
                "repair": {"lag_threshold": 3}
            }"#,
        ))
        .unwrap();
        assert_eq!(spec.params.chute_rows, 3);
        assert_eq!(spec.ticks, 260);
        assert!(spec.repair.enabled, "a repair block implies enabled");
        assert_eq!(spec.repair.lag_threshold, 3);
        assert_eq!(spec.repair.threads, Some(3));
        assert_eq!(spec.deviations.mean_gap, 16);
        assert_eq!(spec.total(), 260);
        let config = spec.config(wsp_model::Workload::from_demands(vec![1; 3]));
        assert_eq!(config.ticks, 260);
        assert_eq!(config.stream.mean_gap, 4);
    }
}
