//! HTTP routing: pure functions from (method, path, body) to a status +
//! body, so the whole API surface is testable without a socket.

use crate::jobs::{JobEngine, JobResult, JobSnapshot, JobSpec, SubmitError};
use crate::json::{escape, Json};
use crate::spec::{ExploreSpec, SimSpec};

/// A routed response, ready for the HTTP layer to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body.
    pub body: String,
}

impl ApiResponse {
    fn json(status: u16, body: String) -> ApiResponse {
        ApiResponse {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: u16, message: &str) -> ApiResponse {
        ApiResponse::json(status, format!("{{\"error\":\"{}\"}}\n", escape(message)))
    }
}

fn snapshot_json(s: &JobSnapshot) -> String {
    format!(
        "{{\"id\":{},\"kind\":\"{}\",\"status\":\"{}\",\"progress\":{},\"total\":{}}}",
        s.id, s.kind, s.status, s.progress, s.total
    )
}

/// Routes one request. Increments the request counter; every path returns
/// a well-formed response (unknown routes get `404`, wrong methods
/// `405`).
pub fn route(engine: &JobEngine, method: &str, path: &str, body: &[u8]) -> ApiResponse {
    engine
        .metrics()
        .http_requests
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = path.split('?').next().unwrap_or(path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => match method {
            "GET" => ApiResponse::json(200, "{\"status\":\"ok\"}\n".to_string()),
            _ => ApiResponse::error(405, "use GET"),
        },
        ["metrics"] => match method {
            "GET" => ApiResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: engine.metrics().render(),
            },
            _ => ApiResponse::error(405, "use GET"),
        },
        ["api", "v1", "jobs"] => match method {
            "GET" => {
                let items: Vec<String> = engine
                    .list()
                    .iter()
                    .map(|job| snapshot_json(&job.snapshot()))
                    .collect();
                ApiResponse::json(200, format!("{{\"jobs\":[{}]}}\n", items.join(",")))
            }
            _ => ApiResponse::error(405, "use GET; submit to /api/v1/jobs/explore or /sim"),
        },
        ["api", "v1", "jobs", kind @ ("explore" | "sim")] => match method {
            "POST" => submit(engine, kind, body),
            _ => ApiResponse::error(405, "use POST"),
        },
        ["api", "v1", "jobs", id] => match (method, id.parse::<u64>()) {
            (_, Err(_)) => ApiResponse::error(404, "no such job"),
            ("GET", Ok(id)) => match engine.job(id) {
                Some(job) => {
                    ApiResponse::json(200, format!("{}\n", snapshot_json(&job.snapshot())))
                }
                None => ApiResponse::error(404, "no such job"),
            },
            ("DELETE", Ok(id)) => {
                if engine.delete(id) {
                    ApiResponse::json(200, format!("{{\"id\":{id},\"deleted\":true}}\n"))
                } else {
                    ApiResponse::error(404, "no such job")
                }
            }
            _ => ApiResponse::error(405, "use GET or DELETE"),
        },
        ["api", "v1", "jobs", id, "result"] => match (method, id.parse::<u64>()) {
            ("GET", Ok(id)) => match engine.job(id) {
                None => ApiResponse::error(404, "no such job"),
                Some(job) => match job.result() {
                    JobResult::NotFinished => {
                        ApiResponse::error(409, "job not finished; poll its status")
                    }
                    JobResult::Cancelled => ApiResponse::error(409, "job was cancelled"),
                    JobResult::Failed(e) => ApiResponse::error(500, &e),
                    JobResult::Done(json) => ApiResponse::json(200, json),
                },
            },
            (_, Ok(_)) => ApiResponse::error(405, "use GET"),
            (_, Err(_)) => ApiResponse::error(404, "no such job"),
        },
        ["api", "v1", "jobs", id, "cancel"] => match (method, id.parse::<u64>()) {
            ("POST", Ok(id)) => {
                if engine.cancel(id) {
                    let status = engine
                        .job(id)
                        .map(|job| job.snapshot().status)
                        .unwrap_or("cancelled");
                    ApiResponse::json(200, format!("{{\"id\":{id},\"status\":\"{status}\"}}\n"))
                } else {
                    ApiResponse::error(404, "no such job")
                }
            }
            (_, Ok(_)) => ApiResponse::error(405, "use POST"),
            (_, Err(_)) => ApiResponse::error(404, "no such job"),
        },
        _ => ApiResponse::error(404, "no such route"),
    }
}

fn submit(engine: &JobEngine, kind: &str, body: &[u8]) -> ApiResponse {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return ApiResponse::error(400, "body must be UTF-8 JSON"),
    };
    let value = if text.trim().is_empty() {
        Json::Obj(Vec::new())
    } else {
        match Json::parse(text) {
            Ok(v) => v,
            Err(e) => return ApiResponse::error(400, &format!("bad JSON: {e}")),
        }
    };
    let spec = match kind {
        "explore" => ExploreSpec::from_json(&value).map(JobSpec::Explore),
        _ => SimSpec::from_json(&value).map(JobSpec::Sim),
    };
    let spec = match spec {
        Ok(s) => s,
        Err(e) => return ApiResponse::error(400, &e),
    };
    match engine.submit(spec) {
        Ok(id) => ApiResponse::json(202, format!("{{\"id\":{id},\"status\":\"queued\"}}\n")),
        Err(e @ SubmitError::QueueFull { .. }) => ApiResponse::error(503, &e.to_string()),
        Err(e @ SubmitError::ShuttingDown) => ApiResponse::error(503, &e.to_string()),
    }
}
