//! Warehouse-as-a-service: a long-running HTTP job server over the
//! workspace's explore and sim subsystems.
//!
//! The paper's workflows — design-space sweeps
//! ([`wsp_explore::evaluate_batch`]) and lifelong simulations
//! (`wsp_sim::Simulation`) — run for seconds to minutes; a synchronous
//! HTTP handler would hold connections open that whole time. This crate
//! instead runs them as **cancellable background jobs**:
//!
//! 1. `POST /api/v1/jobs/explore` or `POST /api/v1/jobs/sim` with a JSON
//!    spec → `202` with a job id (or `400` on a bad spec, `503` when the
//!    bounded queue is full — backpressure, nothing is dropped).
//! 2. `GET /api/v1/jobs/{id}` → status + monotone progress counters.
//! 3. `GET /api/v1/jobs/{id}/result` → the **canonical JSON rendering**
//!    the direct library call produces (`ExploreOutcome::to_json`,
//!    `SimReport::to_json`) — byte-identical, so a server round-trip is
//!    directly comparable to a local run.
//! 4. `POST /api/v1/jobs/{id}/cancel` stops a running job within one
//!    progress chunk; `DELETE /api/v1/jobs/{id}` also forgets it.
//!
//! `GET /metrics` exposes Prometheus-style text counters and
//! `GET /healthz` a liveness probe. Per-job thread budgets route through
//! [`wsp_core::resolve_threads`] like every other parallel driver in the
//! workspace. The HTTP layer is the vendored [`tiny_http`] shim — no
//! external dependencies, same discipline as `vendor/rand` and friends.
//!
//! # Example
//!
//! ```
//! use wsp_server::{serve, ServerConfig};
//!
//! let handle = serve("127.0.0.1:0", ServerConfig::default())?;
//! let addr = handle.addr();
//! // ... drive it over HTTP (see tests/smoke.rs), then:
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod jobs;
pub mod json;
pub mod metrics;
pub mod spec;

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use jobs::JobEngine;
use metrics::Metrics;

/// Server sizing knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Acceptor threads answering HTTP requests.
    pub http_threads: usize,
    /// Background job workers. `0` is a test mode: jobs queue up and run
    /// only through [`jobs::JobEngine::run_one`].
    pub job_workers: usize,
    /// Bounded job-queue capacity; submissions past it get `503`.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            http_threads: 4,
            job_workers: 1,
            queue_capacity: 64,
        }
    }
}

/// A running server: bound address plus the handles to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<JobEngine>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job engine, for in-process inspection (tests, embedding).
    pub fn engine(&self) -> &Arc<JobEngine> {
        &self.engine
    }

    /// Stops accepting, cancels all jobs, and joins every thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock each acceptor parked in accept() with a no-op
        // connection; the shim reports it as "no request" and the loop
        // re-checks the stop flag.
        for _ in 0..self.acceptors.len().max(1) {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.acceptors {
            let _ = handle.join();
        }
        self.engine.shutdown();
    }
}

/// Binds `addr` and starts the HTTP acceptors and job workers.
///
/// # Errors
///
/// Bind/listen failures.
pub fn serve(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<ServerHandle> {
    let server = Arc::new(tiny_http::Server::http(addr)?);
    let bound = server.server_addr();
    let engine = JobEngine::new(
        config.job_workers,
        config.queue_capacity,
        Arc::new(Metrics::new()),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mut acceptors = Vec::with_capacity(config.http_threads.max(1));
    for i in 0..config.http_threads.max(1) {
        let server = Arc::clone(&server);
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        acceptors.push(
            std::thread::Builder::new()
                .name(format!("wsp-http-{i}"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match server.recv() {
                            Ok(Some(request)) => {
                                let routed = api::route(
                                    &engine,
                                    request.method().as_str(),
                                    request.url(),
                                    request.body(),
                                );
                                let response = tiny_http::Response::from_data(routed.body)
                                    .with_status_code(routed.status)
                                    .with_header("Content-Type", routed.content_type);
                                let _ = request.respond(response);
                            }
                            Ok(None) => continue,
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn http acceptor"),
        );
    }
    Ok(ServerHandle {
        addr: bound,
        engine,
        stop,
        acceptors,
    })
}

// The server shares these across HTTP handler threads and job workers;
// compile-time proof they stay thread-safe (the same audit style as
// `wsp_core::pipeline` and `wsp_sim`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<JobEngine>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<jobs::Job>();
    assert_send_sync::<tiny_http::Server>();
};
