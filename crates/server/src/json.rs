//! A minimal JSON value: recursive-descent parser plus the escape helper
//! the response builders share.
//!
//! The workspace vendors every dependency, so rather than a shim of a
//! full serde stack this is the small honest thing: a [`Json`] tree with
//! typed accessors, strict parsing (depth-limited, full-input), and
//! object fields kept in received order.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in received order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first offending byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions, negatives,
    /// and anything above 2^53 where doubles lose exactness).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`as_u64`](Json::as_u64) narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// [`as_u64`](Json::as_u64) narrowed to `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// A short name for error messages ("object", "string", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(b) => Err(format!("unexpected byte {b:?} at {pos}", pos = *pos)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let value: f64 = text
        .parse()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
    if !value.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Json::Num(value))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".to_string());
                            }
                            *pos += 2;
                            let second = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err("bad low surrogate".to_string());
                            }
                            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(code).ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(first).ok_or("lone surrogate escape")?
                        };
                        out.push(c);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("raw control byte in string".to_string()),
            Some(_) => {
                // Copy one full UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let start = *pos + 1;
    let end = start + 4;
    let hex = bytes
        .get(start..end)
        .ok_or("truncated \\u escape")
        .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
    *pos = end - 1; // caller advances past the final hex digit
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse("\"a\\n\\u0041\\ud83d\\ude00\"").unwrap(),
            Json::Str("a\nA😀".to_string())
        );
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn integer_accessor_is_strict() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":1,\"a\":2}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\\ud800x\"",
            "nan",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"a":[1,2.5,null,true],"b":"x\"y\n"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
