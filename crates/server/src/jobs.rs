//! The async job engine: an id-keyed registry of cancellable background
//! jobs drained by a worker pool off a bounded queue.
//!
//! The registry pattern: one `Arc<Job>` per submission, keyed by a
//! monotonically increasing id in a `BTreeMap`, with the job's live
//! signals (a shared [`RunControl`] for cancel + progress, a small state
//! mutex for the queued → running → finished lifecycle). HTTP handlers
//! poll and cancel through the registry while a worker owns the actual
//! evaluation; neither side ever blocks the other beyond the short
//! registry lock.
//!
//! Lock ordering: the registry mutex may be held while taking a job's
//! state mutex, never the reverse. Workers take them strictly in
//! sequence (registry to pick a job, then state to transition it), so
//! the ordering holds everywhere.
//!
//! Determinism: a job's result is the same canonical JSON the direct
//! library call renders ([`wsp_explore::ExploreOutcome::to_json`],
//! `wsp_sim::SimReport::to_json`), and the evaluation honors the spec's
//! thread budget through the same [`wsp_core::resolve_threads`] channel —
//! so a server round-trip is byte-comparable to a local run.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use wsp_core::{PipelineOptions, RunControl, WspInstance};
use wsp_explore::evaluate_batch_with;
use wsp_maps::sorting_center_variant;
use wsp_sim::Simulation;

use crate::metrics::Metrics;
use crate::spec::{ExploreSpec, SimSpec};

/// Ticks a sim job advances between cancellation checks.
const SIM_CHUNK: u64 = 256;

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A design-space sweep via [`wsp_explore::evaluate_batch_with`].
    Explore(ExploreSpec),
    /// A lifelong simulation via `wsp_sim::Simulation::run_controlled`.
    Sim(SimSpec),
    /// Panics mid-run with the given message. Not reachable from the HTTP
    /// surface; exists so the supervision tests can prove a panicking job
    /// lands in `failed` instead of stranding a worker.
    #[doc(hidden)]
    Panic(String),
}

impl JobSpec {
    /// Short kind tag for snapshots ("explore" / "sim").
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Explore(_) => "explore",
            JobSpec::Sim(_) => "sim",
            JobSpec::Panic(_) => "panic",
        }
    }

    fn total(&self) -> u64 {
        match self {
            JobSpec::Explore(spec) => spec.total(),
            JobSpec::Sim(spec) => spec.total(),
            JobSpec::Panic(_) => 1,
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done(String),
    Failed(String),
    Cancelled,
}

/// One submitted job: spec, live signals, and final state.
#[derive(Debug)]
pub struct Job {
    /// Registry id (monotone per engine).
    pub id: u64,
    /// What to compute.
    pub spec: JobSpec,
    /// Shared cancel + progress channel; handlers poll and cancel it,
    /// the worker drives it.
    pub control: RunControl,
    /// Progress denominator (candidates for explore, ticks for sim).
    pub total: u64,
    state: Mutex<JobState>,
}

/// A point-in-time view of a job for list/poll responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Registry id.
    pub id: u64,
    /// "explore" / "sim".
    pub kind: &'static str,
    /// "queued" / "running" / "done" / "failed" / "cancelled".
    pub status: &'static str,
    /// Units of work finished so far (monotone).
    pub progress: u64,
    /// Progress denominator.
    pub total: u64,
}

/// A finished (or not) job's result, for the result endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResult {
    /// Still queued or running.
    NotFinished,
    /// The canonical JSON rendering.
    Done(String),
    /// The evaluation errored.
    Failed(String),
    /// The job was cancelled before finishing.
    Cancelled,
}

impl Job {
    fn status_name(&self) -> &'static str {
        match *self.state.lock().expect("job state poisoned") {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Snapshots id, kind, status, and progress.
    pub fn snapshot(&self) -> JobSnapshot {
        // Status before progress: a job observed "running" may show a
        // slightly stale (lower) progress, which keeps polls monotone.
        let status = self.status_name();
        JobSnapshot {
            id: self.id,
            kind: self.spec.kind(),
            status,
            progress: self.control.progress(),
            total: self.total,
        }
    }

    /// The job's result, cloning the rendering.
    pub fn result(&self) -> JobResult {
        match &*self.state.lock().expect("job state poisoned") {
            JobState::Queued | JobState::Running => JobResult::NotFinished,
            JobState::Done(json) => JobResult::Done(json.clone()),
            JobState::Failed(e) => JobResult::Failed(e.clone()),
            JobState::Cancelled => JobResult::Cancelled,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (`503`).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The engine is shutting down (`503`).
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} queued); retry later")
            }
            SubmitError::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

#[derive(Debug)]
struct Registry {
    jobs: BTreeMap<u64, Arc<Job>>,
    queue: VecDeque<u64>,
    next_id: u64,
    shutdown: bool,
}

/// The job engine: registry + bounded queue + worker pool.
#[derive(Debug)]
pub struct JobEngine {
    registry: Mutex<Registry>,
    available: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobEngine {
    /// Builds an engine with `workers` background threads and a queue
    /// bounded at `capacity` jobs.
    ///
    /// `workers == 0` runs no background threads: jobs stay queued until
    /// [`run_one`](JobEngine::run_one) executes them on the caller's
    /// thread — the deterministic mode the lifecycle tests drive.
    pub fn new(workers: usize, capacity: usize, metrics: Arc<Metrics>) -> Arc<JobEngine> {
        let engine = Arc::new(JobEngine {
            registry: Mutex::new(Registry {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker = Arc::clone(&engine);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("wsp-job-{i}"))
                    .spawn(move || worker.worker_loop())
                    .expect("spawn job worker"),
            );
        }
        *engine.workers.lock().expect("workers poisoned") = handles;
        engine
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when `capacity` jobs are already
    /// waiting (backpressure — nothing is dropped), or
    /// [`SubmitError::ShuttingDown`].
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let mut reg = self.registry.lock().expect("registry poisoned");
        if reg.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if reg.queue.len() >= self.capacity {
            self.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = reg.next_id;
        reg.next_id += 1;
        let total = spec.total();
        let job = Arc::new(Job {
            id,
            spec,
            control: RunControl::new(),
            total,
            state: Mutex::new(JobState::Queued),
        });
        reg.jobs.insert(id, job);
        reg.queue.push_back(id);
        self.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.metrics.jobs_queued.fetch_add(1, Ordering::Relaxed);
        drop(reg);
        self.available.notify_one();
        Ok(id)
    }

    /// Looks a job up by id.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.registry
            .lock()
            .expect("registry poisoned")
            .jobs
            .get(&id)
            .cloned()
    }

    /// All registered jobs in id order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        self.registry
            .lock()
            .expect("registry poisoned")
            .jobs
            .values()
            .cloned()
            .collect()
    }

    /// Cancels a job: a queued job finishes as cancelled without running,
    /// a running job is signalled and stops within one progress chunk.
    /// Idempotent; cancelling a finished job is a no-op.
    ///
    /// Returns `false` when the id is unknown.
    pub fn cancel(&self, id: u64) -> bool {
        let reg = self.registry.lock().expect("registry poisoned");
        let Some(job) = reg.jobs.get(&id).cloned() else {
            return false;
        };
        let mut state = job.state.lock().expect("job state poisoned");
        match *state {
            JobState::Queued => {
                *state = JobState::Cancelled;
                job.control.cancel();
                self.metrics.jobs_queued.fetch_sub(1, Ordering::Relaxed);
                self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
            JobState::Running => job.control.cancel(),
            _ => {}
        }
        true
    }

    /// Cancels and removes a job from the registry. A worker mid-job
    /// keeps its own `Arc` and finishes into it harmlessly.
    ///
    /// Returns `false` when the id is unknown.
    pub fn delete(&self, id: u64) -> bool {
        if !self.cancel(id) {
            return false;
        }
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.queue.retain(|&q| q != id);
        reg.jobs.remove(&id).is_some()
    }

    /// Pops one queued job and runs it on the calling thread. Returns
    /// `false` when the queue is empty. (The `workers == 0` test mode;
    /// with background workers the pool races this, which is harmless.)
    pub fn run_one(&self) -> bool {
        match self.claim_next() {
            Some(job) => {
                self.execute(&job);
                true
            }
            None => false,
        }
    }

    /// Stops accepting submissions, cancels everything, and joins the
    /// worker pool.
    pub fn shutdown(&self) {
        {
            let mut reg = self.registry.lock().expect("registry poisoned");
            reg.shutdown = true;
            let jobs: Vec<Arc<Job>> = reg.jobs.values().cloned().collect();
            for job in jobs {
                let mut state = job.state.lock().expect("job state poisoned");
                if matches!(*state, JobState::Queued) {
                    *state = JobState::Cancelled;
                    self.metrics.jobs_queued.fetch_sub(1, Ordering::Relaxed);
                    self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                }
                job.control.cancel();
            }
            reg.queue.clear();
        }
        self.available.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut reg = self.registry.lock().expect("registry poisoned");
                loop {
                    if reg.shutdown {
                        return;
                    }
                    if let Some(id) = reg.queue.pop_front() {
                        break reg.jobs.get(&id).cloned();
                    }
                    reg = self.available.wait(reg).expect("registry poisoned");
                }
            };
            // The id may have been deleted between push and pop.
            let Some(job) = job else { continue };
            if !self.start(&job) {
                continue;
            }
            self.finish(&job, self.run_supervised(&job));
        }
    }

    fn claim_next(&self) -> Option<Arc<Job>> {
        let mut reg = self.registry.lock().expect("registry poisoned");
        while let Some(id) = reg.queue.pop_front() {
            if let Some(job) = reg.jobs.get(&id).cloned() {
                drop(reg);
                if self.start(&job) {
                    return Some(job);
                }
                reg = self.registry.lock().expect("registry poisoned");
            }
        }
        None
    }

    /// Queued → Running; `false` when the job was cancelled first.
    fn start(&self, job: &Job) -> bool {
        let mut state = job.state.lock().expect("job state poisoned");
        match *state {
            JobState::Queued => {
                *state = JobState::Running;
                self.metrics.jobs_queued.fetch_sub(1, Ordering::Relaxed);
                self.metrics.jobs_running.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    fn execute(&self, job: &Job) {
        self.finish(job, self.run_supervised(job));
    }

    /// Runs the job with a panic barrier. Before this barrier existed, a
    /// panic inside the evaluation unwound straight through `worker_loop`
    /// — the thread died silently and the job stranded in `Running`
    /// forever. Now the panic converts to an `Err` (→ `Failed`, counted
    /// by `jobs_panicked`) and the worker keeps draining the queue.
    fn run_supervised(&self, job: &Job) -> Result<String, String> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run(job))) {
            Ok(result) => result,
            Err(payload) => {
                self.metrics.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(format!("job panicked: {msg}"))
            }
        }
    }

    fn run(&self, job: &Job) -> Result<String, String> {
        match &job.spec {
            JobSpec::Explore(spec) => {
                let outcome = evaluate_batch_with(&spec.candidates, &spec.options(), &job.control);
                Ok(outcome.to_json())
            }
            JobSpec::Sim(spec) => {
                let map = sorting_center_variant(&spec.params).map_err(|e| e.to_string())?;
                let mix = match spec.zipf_exponent {
                    Some(exponent) => map.zipf_workload(spec.units, exponent, spec.workload_seed),
                    None => map.uniform_workload(spec.units),
                };
                let workload = map.uniform_workload(spec.units);
                let instance = WspInstance::new(map.warehouse, map.traffic, workload, spec.t_limit);
                let mut sim =
                    Simulation::new(&instance, &PipelineOptions::default(), spec.config(mix))
                        .map_err(|e| e.to_string())?;
                let report = sim
                    .run_controlled(&job.control, SIM_CHUNK)
                    .map_err(|e| e.to_string())?;
                Ok(report.to_json())
            }
            JobSpec::Panic(msg) => panic!("{msg}"),
        }
    }

    /// Running → final state, with metric accounting.
    fn finish(&self, job: &Job, result: Result<String, String>) {
        let progress = job.control.progress();
        match &job.spec {
            JobSpec::Explore(_) => self
                .metrics
                .candidates_evaluated
                .fetch_add(progress, Ordering::Relaxed),
            JobSpec::Sim(_) => self
                .metrics
                .sim_ticks
                .fetch_add(progress, Ordering::Relaxed),
            JobSpec::Panic(_) => 0,
        };
        let mut state = job.state.lock().expect("job state poisoned");
        self.metrics.jobs_running.fetch_sub(1, Ordering::Relaxed);
        *state = if job.control.is_cancelled() {
            self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            JobState::Cancelled
        } else {
            match result {
                Ok(json) => {
                    self.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    JobState::Done(json)
                }
                Err(e) => {
                    self.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    JobState::Failed(e)
                }
            }
        };
    }
}
