//! Server counters rendered in the Prometheus text exposition format.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters shared by the HTTP handlers and the job workers.
///
/// Counters are monotone totals; `jobs_queued` / `jobs_running` are
/// gauges tracking the registry's live state.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests routed (any endpoint, any status).
    pub http_requests: AtomicU64,
    /// Jobs accepted into the queue.
    pub jobs_submitted: AtomicU64,
    /// Submissions bounced for a full queue.
    pub jobs_rejected: AtomicU64,
    /// Jobs that finished with a result.
    pub jobs_completed: AtomicU64,
    /// Jobs that finished with an error.
    pub jobs_failed: AtomicU64,
    /// Jobs whose evaluation panicked (a subset of `jobs_failed`; the
    /// worker survives and keeps draining).
    pub jobs_panicked: AtomicU64,
    /// Jobs cancelled (queued or running).
    pub jobs_cancelled: AtomicU64,
    /// Jobs currently waiting in the queue (gauge).
    pub jobs_queued: AtomicU64,
    /// Jobs currently executing (gauge).
    pub jobs_running: AtomicU64,
    /// Explore candidates fully evaluated across all jobs.
    pub candidates_evaluated: AtomicU64,
    /// Simulation ticks advanced across all jobs (elided ticks included).
    pub sim_ticks: AtomicU64,
}

impl Metrics {
    /// A zeroed set.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Renders all series in the Prometheus text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut series = |name: &str, help: &str, kind: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        series(
            "wsp_http_requests_total",
            "HTTP requests routed.",
            "counter",
            get(&self.http_requests),
        );
        series(
            "wsp_jobs_submitted_total",
            "Jobs accepted into the queue.",
            "counter",
            get(&self.jobs_submitted),
        );
        series(
            "wsp_jobs_rejected_total",
            "Job submissions bounced for a full queue.",
            "counter",
            get(&self.jobs_rejected),
        );
        series(
            "wsp_jobs_completed_total",
            "Jobs finished with a result.",
            "counter",
            get(&self.jobs_completed),
        );
        series(
            "wsp_jobs_failed_total",
            "Jobs finished with an error.",
            "counter",
            get(&self.jobs_failed),
        );
        series(
            "wsp_jobs_panicked_total",
            "Jobs whose evaluation panicked (also counted failed).",
            "counter",
            get(&self.jobs_panicked),
        );
        series(
            "wsp_jobs_cancelled_total",
            "Jobs cancelled while queued or running.",
            "counter",
            get(&self.jobs_cancelled),
        );
        series(
            "wsp_jobs_queued",
            "Jobs currently waiting in the queue.",
            "gauge",
            get(&self.jobs_queued),
        );
        series(
            "wsp_jobs_running",
            "Jobs currently executing.",
            "gauge",
            get(&self.jobs_running),
        );
        series(
            "wsp_explore_candidates_evaluated_total",
            "Design candidates fully evaluated by explore jobs.",
            "counter",
            get(&self.candidates_evaluated),
        );
        series(
            "wsp_sim_ticks_total",
            "Simulation ticks advanced by sim jobs (elided ticks included).",
            "counter",
            get(&self.sim_ticks),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_series_with_help_and_type() {
        let m = Metrics::new();
        m.http_requests.store(3, Ordering::Relaxed);
        m.jobs_running.store(1, Ordering::Relaxed);
        let text = m.render();
        for name in [
            "wsp_http_requests_total",
            "wsp_jobs_submitted_total",
            "wsp_jobs_rejected_total",
            "wsp_jobs_completed_total",
            "wsp_jobs_failed_total",
            "wsp_jobs_panicked_total",
            "wsp_jobs_cancelled_total",
            "wsp_jobs_queued",
            "wsp_jobs_running",
            "wsp_explore_candidates_evaluated_total",
            "wsp_sim_ticks_total",
        ] {
            assert!(text.contains(&format!("# HELP {name} ")), "{name} help");
            assert!(text.contains(&format!("# TYPE {name} ")), "{name} type");
            assert!(text.contains(&format!("\n{name} ")), "{name} sample");
        }
        assert!(text.contains("wsp_http_requests_total 3\n"));
        assert!(text.contains("# TYPE wsp_jobs_running gauge\nwsp_jobs_running 1\n"));
    }
}
