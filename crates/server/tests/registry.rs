//! Job-registry lifecycle tests, run deterministic-first: an engine with
//! `workers == 0` never races the test thread (jobs execute only through
//! `run_one`), so every queued-state transition is exact. A second group
//! uses one background worker to exercise the running-state transitions.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wsp_server::api::{route, ApiResponse};
use wsp_server::jobs::{JobEngine, JobResult, JobSpec, SubmitError};
use wsp_server::json::Json;
use wsp_server::metrics::Metrics;
use wsp_server::spec::{ExploreSpec, SimSpec};

fn tiny_explore(candidates: usize) -> JobSpec {
    let body = format!(
        r#"{{
            "candidates": [{}],
            "units": 24, "t_limit": 1200, "threads": 1
        }}"#,
        (0..candidates)
            .map(|i| format!(
                r#"{{"chute_rows": 3, "chute_cols": 4, "stations": {}}}"#,
                if i % 2 == 0 { 2 } else { 4 }
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    JobSpec::Explore(ExploreSpec::from_json(&Json::parse(&body).unwrap()).unwrap())
}

fn tiny_sim() -> JobSpec {
    let body = r#"{
        "map": {"chute_rows": 3, "chute_cols": 4, "stations": 2},
        "units": 24, "t_limit": 2000, "ticks": 120, "threads": 1
    }"#;
    JobSpec::Sim(SimSpec::from_json(&Json::parse(body).unwrap()).unwrap())
}

fn engine(workers: usize, capacity: usize) -> Arc<JobEngine> {
    JobEngine::new(workers, capacity, Arc::new(Metrics::new()))
}

#[test]
fn queue_full_backpressure_rejects_then_accepts_again() {
    let engine = engine(0, 2);
    let a = engine.submit(tiny_explore(1)).unwrap();
    let b = engine.submit(tiny_explore(1)).unwrap();
    assert_eq!((a, b), (1, 2));
    match engine.submit(tiny_explore(1)) {
        Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(engine.metrics().jobs_rejected.load(Ordering::Relaxed), 1);
    // Draining one queue slot makes room for one more submission.
    assert!(engine.run_one());
    let c = engine.submit(tiny_explore(1)).unwrap();
    assert_eq!(c, 3);
    assert_eq!(engine.metrics().jobs_queued.load(Ordering::Relaxed), 2);
}

#[test]
fn cancelling_a_queued_job_skips_execution() {
    let engine = engine(0, 8);
    let id = engine.submit(tiny_explore(2)).unwrap();
    assert!(engine.cancel(id));
    assert_eq!(engine.job(id).unwrap().snapshot().status, "cancelled");
    // The queue entry is a tombstone: run_one refuses it and reports an
    // empty queue.
    assert!(!engine.run_one());
    assert_eq!(engine.job(id).unwrap().result(), JobResult::Cancelled);
    assert_eq!(engine.job(id).unwrap().control.progress(), 0);
    assert_eq!(engine.metrics().jobs_cancelled.load(Ordering::Relaxed), 1);
}

#[test]
fn double_cancel_is_idempotent() {
    let engine = engine(0, 8);
    let id = engine.submit(tiny_explore(1)).unwrap();
    assert!(engine.cancel(id));
    assert!(engine.cancel(id));
    assert!(engine.cancel(id));
    assert_eq!(engine.metrics().jobs_cancelled.load(Ordering::Relaxed), 1);
    assert!(!engine.cancel(999), "unknown id is reported, not invented");
}

#[test]
fn completed_jobs_poll_done_and_serve_their_result() {
    let engine = engine(0, 8);
    let id = engine.submit(tiny_explore(2)).unwrap();
    assert_eq!(engine.job(id).unwrap().snapshot().status, "queued");
    assert!(engine.run_one());
    let job = engine.job(id).unwrap();
    let snapshot = job.snapshot();
    assert_eq!(snapshot.status, "done");
    assert_eq!(snapshot.progress, 2);
    assert_eq!(snapshot.total, 2);
    match job.result() {
        JobResult::Done(json) => {
            assert!(json.contains("\"front\""), "canonical explore JSON");
            assert!(json.ends_with('\n'));
        }
        other => panic!("expected Done, got {other:?}"),
    }
    // Cancel after completion is a no-op: the result stays served.
    assert!(engine.cancel(id));
    assert_eq!(engine.job(id).unwrap().snapshot().status, "done");
    assert!(matches!(
        engine.job(id).unwrap().result(),
        JobResult::Done(_)
    ));
    assert_eq!(engine.metrics().jobs_completed.load(Ordering::Relaxed), 1);
    assert_eq!(
        engine
            .metrics()
            .candidates_evaluated
            .load(Ordering::Relaxed),
        2
    );
}

#[test]
fn sim_jobs_account_ticks_and_render_reports() {
    let engine = engine(0, 8);
    let id = engine.submit(tiny_sim()).unwrap();
    assert!(engine.run_one());
    let job = engine.job(id).unwrap();
    assert_eq!(job.snapshot().status, "done");
    assert_eq!(job.snapshot().progress, 120);
    match job.result() {
        JobResult::Done(json) => assert!(json.contains("\"ticks\""), "sim report JSON"),
        other => panic!("expected Done, got {other:?}"),
    }
    assert_eq!(engine.metrics().sim_ticks.load(Ordering::Relaxed), 120);
}

/// Regression: a panic inside the evaluation used to unwind through the
/// worker, killing the thread silently and stranding the job in
/// `running` forever. The panic barrier must convert it into the
/// `failed` terminal state while the engine keeps serving.
#[test]
fn panicking_job_fails_cleanly_and_the_engine_keeps_serving() {
    let engine = engine(0, 8);
    let id = engine
        .submit(JobSpec::Panic("deliberate test panic".into()))
        .unwrap();
    assert!(engine.run_one(), "the panicking job is still a queue entry");
    let job = engine.job(id).unwrap();
    assert_eq!(job.snapshot().status, "failed");
    match job.result() {
        JobResult::Failed(msg) => {
            assert!(msg.contains("panicked"), "{msg}");
            assert!(msg.contains("deliberate test panic"), "{msg}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(engine.metrics().jobs_failed.load(Ordering::Relaxed), 1);
    assert_eq!(engine.metrics().jobs_panicked.load(Ordering::Relaxed), 1);
    assert_eq!(engine.metrics().jobs_running.load(Ordering::Relaxed), 0);

    // The engine (and, below, a real worker thread) keeps executing.
    let next = engine.submit(tiny_explore(1)).unwrap();
    assert!(engine.run_one());
    assert_eq!(engine.job(next).unwrap().snapshot().status, "done");
}

/// The same supervision on a background worker: the thread that absorbed
/// the panic must pick up and finish the next job.
#[test]
fn worker_thread_survives_a_panicking_job() {
    let engine = engine(1, 8);
    let bad = engine.submit(JobSpec::Panic("boom".into())).unwrap();
    let good = engine.submit(tiny_explore(1)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let bad_status = engine.job(bad).unwrap().snapshot().status;
        let good_status = engine.job(good).unwrap().snapshot().status;
        if bad_status == "failed" && good_status == "done" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker died: panic job {bad_status}, follow-up {good_status}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(engine.metrics().jobs_panicked.load(Ordering::Relaxed), 1);
    engine.shutdown();
}

#[test]
fn deleting_a_queued_job_forgets_it() {
    let engine = engine(0, 8);
    let id = engine.submit(tiny_explore(1)).unwrap();
    assert!(engine.delete(id));
    assert!(engine.job(id).is_none());
    assert!(!engine.delete(id), "second delete reports unknown");
    assert!(!engine.run_one(), "deleted job never runs");
}

#[test]
fn routes_cover_the_lifecycle_without_sockets() {
    let engine = engine(0, 1);
    let submit = route(
        &engine,
        "POST",
        "/api/v1/jobs/explore",
        br#"{"candidates":[{"chute_rows":3,"chute_cols":4,"stations":2}],"units":24,"t_limit":1200,"threads":1}"#,
    );
    assert_eq!(submit.status, 202, "{}", submit.body);
    let id = Json::parse(&submit.body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();

    // Backpressure surfaces as 503 through the API.
    let full = route(&engine, "POST", "/api/v1/jobs/sim", b"{}");
    assert_eq!(full.status, 503, "{}", full.body);

    // Result before completion is a 409 conflict.
    let early = route(&engine, "GET", &format!("/api/v1/jobs/{id}/result"), b"");
    assert_eq!(early.status, 409);

    assert!(engine.run_one());
    let poll = route(&engine, "GET", &format!("/api/v1/jobs/{id}"), b"");
    assert_eq!(poll.status, 200);
    let snapshot = Json::parse(&poll.body).unwrap();
    assert_eq!(snapshot.get("status").unwrap().as_str(), Some("done"));
    assert_eq!(snapshot.get("progress").unwrap().as_u64(), Some(1));

    let result = route(&engine, "GET", &format!("/api/v1/jobs/{id}/result"), b"");
    assert_eq!(result.status, 200);
    assert!(result.body.contains("\"front\""));

    let listing = route(&engine, "GET", "/api/v1/jobs", b"");
    assert_eq!(listing.status, 200);
    assert_eq!(
        Json::parse(&listing.body)
            .unwrap()
            .get("jobs")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        1
    );

    let deleted = route(&engine, "DELETE", &format!("/api/v1/jobs/{id}"), b"");
    assert_eq!(deleted.status, 200);
    let gone = route(&engine, "GET", &format!("/api/v1/jobs/{id}"), b"");
    assert_eq!(gone.status, 404);

    // Error surfaces: bad spec, bad route, bad method.
    let bad = route(&engine, "POST", "/api/v1/jobs/explore", b"{\"unitz\":1}");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("unitz"));
    assert_eq!(route(&engine, "GET", "/nope", b"").status, 404);
    assert_eq!(route(&engine, "PUT", "/healthz", b"").status, 405);
    let health: ApiResponse = route(&engine, "GET", "/healthz", b"");
    assert_eq!(
        (health.status, health.content_type),
        (200, "application/json")
    );
    let metrics = route(&engine, "GET", "/metrics", b"");
    assert!(metrics.body.contains("wsp_http_requests_total"));
}

/// Running-state transitions need a real worker. The job is a 20-candidate
/// sweep with a deliberately heavy per-candidate load so cancellation
/// lands mid-batch.
#[test]
fn cancel_mid_run_stops_promptly_with_partial_progress() {
    let engine = engine(1, 8);
    let body = r#"{"units": 400, "t_limit": 3600, "threads": 1}"#;
    let spec = ExploreSpec::from_json(&Json::parse(body).unwrap()).unwrap();
    assert_eq!(spec.total(), 20, "defaults to the full sweep");
    let id = engine.submit(JobSpec::Explore(spec)).unwrap();

    // Wait for the worker to pick the job up and evaluate something.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let snapshot = engine.job(id).unwrap().snapshot();
        if snapshot.status == "running" && snapshot.progress >= 1 {
            break;
        }
        assert!(
            snapshot.status == "queued" || snapshot.status == "running",
            "unexpected status {}",
            snapshot.status
        );
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }

    assert!(engine.cancel(id));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let snapshot = engine.job(id).unwrap().snapshot();
        if snapshot.status == "cancelled" {
            assert!(
                snapshot.progress < snapshot.total,
                "cancellation should land before all {} candidates ran",
                snapshot.total
            );
            break;
        }
        assert!(Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(engine.job(id).unwrap().result(), JobResult::Cancelled);
    // Double cancel after the fact stays idempotent.
    assert!(engine.cancel(id));
    assert_eq!(engine.job(id).unwrap().snapshot().status, "cancelled");
    engine.shutdown();
}

/// Deleting a running job forgets it immediately; the worker finishes
/// into its private Arc without disturbing the registry.
#[test]
fn delete_while_running_forgets_the_job() {
    let engine = engine(1, 8);
    let body = r#"{"units": 400, "t_limit": 3600, "threads": 1}"#;
    let spec = ExploreSpec::from_json(&Json::parse(body).unwrap()).unwrap();
    let id = engine.submit(JobSpec::Explore(spec)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.job(id).unwrap().snapshot().status != "running" {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(engine.delete(id));
    assert!(engine.job(id).is_none());
    // The engine stays serviceable afterwards.
    let next = engine.submit(tiny_explore(1)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.job(next).unwrap().snapshot().status != "done" {
        assert!(Instant::now() < deadline, "follow-up job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    engine.shutdown();
}
