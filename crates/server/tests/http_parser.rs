//! Property/adversarial tests for the vendored HTTP request parser, run
//! from the server crate (the consumer whose security posture depends on
//! it): arbitrary bytes must never panic, and structurally valid
//! requests — including pipelined sequences — must round-trip exactly.

use std::io::Cursor;

use proptest::prelude::*;
use tiny_http::{parse_request, Limits, Method, ParseError};

fn parse_all(bytes: &[u8], limits: &Limits) -> Result<Vec<tiny_http::ParsedRequest>, ParseError> {
    let mut cursor = Cursor::new(bytes);
    let mut out = Vec::new();
    while let Some(request) = parse_request(&mut cursor, limits)? {
        out.push(request);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Raw fuzz: any byte soup either parses or errors; no panic, no
    /// hang, and every error is one of the typed variants with a
    /// plausible HTTP status.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..=300)) {
        match parse_all(&bytes, &Limits::default()) {
            Ok(_) => {}
            Err(e) => {
                let status = e.status();
                prop_assert!(
                    matches!(status, 400 | 413 | 431 | 501 | 505),
                    "unexpected status {status} for {e}"
                );
            }
        }
    }

    /// Truncating a valid request at any byte boundary is either a clean
    /// EOF (nothing sent yet), a parse of a shorter valid prefix, or a
    /// typed error — never a panic.
    #[test]
    fn truncation_is_always_handled(cut in 0usize..=64) {
        let full = b"POST /api/v1/jobs/sim HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let cut = cut.min(full.len());
        let _ = parse_all(&full[..cut], &Limits::default());
        if cut == 0 {
            prop_assert!(parse_all(&full[..0], &Limits::default()).unwrap().is_empty());
        } else if cut < full.len() {
            prop_assert!(matches!(
                parse_all(&full[..cut], &Limits::default()),
                Err(ParseError::Truncated)
            ));
        }
    }

    /// Structured round-trip: a generated valid request parses back to
    /// exactly the method, target, headers, and body that were written.
    #[test]
    fn valid_requests_round_trip(
        method_index in 0usize..4,
        path_len in 1usize..20,
        header_count in 0usize..5,
        body in proptest::collection::vec(0u8..=255, 0..=64),
    ) {
        let methods = ["GET", "POST", "PUT", "DELETE"];
        let method = methods[method_index];
        let path: String = (0..path_len).map(|i| (b'a' + (i % 26) as u8) as char).collect();
        let mut text = format!("{method} /{path} HTTP/1.1\r\n");
        for h in 0..header_count {
            text.push_str(&format!("X-H{h}: v{h}\r\n"));
        }
        text.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let mut bytes = text.into_bytes();
        bytes.extend_from_slice(&body);

        let requests = parse_all(&bytes, &Limits::default()).unwrap();
        prop_assert_eq!(requests.len(), 1);
        let r = &requests[0];
        prop_assert_eq!(r.method.as_str(), method);
        let expected_url = format!("/{path}");
        prop_assert_eq!(r.url.as_str(), expected_url.as_str());
        prop_assert_eq!(r.body.as_slice(), body.as_slice());
        for h in 0..header_count {
            let expected = format!("v{h}");
            prop_assert_eq!(r.header(&format!("x-h{h}")), Some(expected.as_str()));
        }
    }

    /// Pipelining: N back-to-back requests on one stream parse as exactly
    /// N requests, in order, each with its own body.
    #[test]
    fn pipelined_streams_parse_in_order(count in 1usize..6) {
        let mut bytes = Vec::new();
        for i in 0..count {
            let body = format!("payload-{i}");
            bytes.extend_from_slice(
                format!(
                    "POST /job/{i} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                )
                .as_bytes(),
            );
        }
        let requests = parse_all(&bytes, &Limits::default()).unwrap();
        prop_assert_eq!(requests.len(), count);
        for (i, r) in requests.iter().enumerate() {
            prop_assert_eq!(r.method.clone(), Method::Post);
            let expected_url = format!("/job/{i}");
            let expected_body = format!("payload-{i}");
            prop_assert_eq!(r.url.as_str(), expected_url.as_str());
            prop_assert_eq!(r.body.as_slice(), expected_body.as_bytes());
        }
    }

    /// Oversized inputs hit the matching limit error, not an allocation.
    #[test]
    fn oversized_inputs_hit_typed_limits(size in 100usize..400) {
        let limits = Limits {
            max_request_line: 64,
            max_header_line: 48,
            max_headers: 8,
            max_body: 64,
            ..Limits::default()
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(size));
        prop_assert!(matches!(
            parse_all(long_line.as_bytes(), &limits),
            Err(ParseError::LineTooLong)
        ));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..size % 40 + 10).map(|i| format!("H{i}: v\r\n")).collect::<String>()
        );
        prop_assert!(matches!(
            parse_all(many_headers.as_bytes(), &limits),
            Err(ParseError::TooManyHeaders)
        ));
        let big_body = format!("POST / HTTP/1.1\r\nContent-Length: {size}\r\n\r\n");
        prop_assert!(matches!(
            parse_all(big_body.as_bytes(), &limits),
            Err(ParseError::BodyTooLarge { .. })
        ));
    }
}

#[test]
fn bad_content_lengths_are_typed_errors() {
    for bad in [
        "abc",
        "-4",
        "0x1f",
        "9 9",
        "+1",
        "",
        "184467440737095516160",
    ] {
        let req = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
        match parse_all(req.as_bytes(), &Limits::default()) {
            Err(ParseError::BadContentLength(_)) => {}
            other => panic!("content-length {bad:?}: expected typed error, got {other:?}"),
        }
    }
}
