//! End-to-end smoke tests over a real socket: submit → poll (monotone
//! progress) → fetch result, and assert the served bytes are identical
//! to the direct library call — the server's headline determinism
//! guarantee. Also exercises cancellation over HTTP.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use wsp_server::json::Json;
use wsp_server::{serve, ServerConfig};

/// Minimal HTTP/1.1 client for one-request-per-connection servers.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: wsp\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, rest) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, rest.to_string())
}

fn poll_until_done(addr: SocketAddr, id: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut last_progress = 0u64;
    loop {
        let (status, body) = request(addr, "GET", &format!("/api/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let snapshot = Json::parse(&body).expect("snapshot JSON");
        let progress = snapshot.get("progress").unwrap().as_u64().unwrap();
        assert!(
            progress >= last_progress,
            "progress went backwards: {last_progress} -> {progress}"
        );
        last_progress = progress;
        match snapshot.get("status").unwrap().as_str().unwrap() {
            "done" => {
                let total = snapshot.get("total").unwrap().as_u64().unwrap();
                assert_eq!(progress, total, "done implies full progress");
                return progress;
            }
            "queued" | "running" => {}
            other => panic!("job ended as {other}: {body}"),
        }
        assert!(Instant::now() < deadline, "job did not finish in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

const EXPLORE_SPEC: &str = r#"{
    "candidates": [
        {"chute_rows": 3, "chute_cols": 4, "stations": 2},
        {"chute_rows": 3, "chute_cols": 4, "stations": 4}
    ],
    "units": 24, "t_limit": 1200, "threads": 1
}"#;

#[test]
fn explore_round_trip_matches_the_direct_library_call() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}\n"));

    let (status, body) = request(addr, "POST", "/api/v1/jobs/explore", EXPLORE_SPEC);
    assert_eq!(status, 202, "{body}");
    let id = Json::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(poll_until_done(addr, id), 2);

    let (status, served) = request(addr, "GET", &format!("/api/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200, "{served}");

    // The exact computation, directly through the library.
    let spec = wsp_server::spec::ExploreSpec::from_json(&Json::parse(EXPLORE_SPEC).unwrap())
        .expect("spec parses");
    let direct = wsp_explore::evaluate_batch(&spec.candidates, &spec.options()).to_json();
    assert_eq!(served, direct, "server bytes must match the library bytes");

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("wsp_jobs_completed_total 1"), "{metrics}");
    assert!(
        metrics.contains("wsp_explore_candidates_evaluated_total 2"),
        "{metrics}"
    );

    handle.shutdown();
}

#[test]
fn sim_round_trip_matches_the_direct_library_call() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    let spec_text = r#"{
        "map": {"chute_rows": 3, "chute_cols": 4, "stations": 2},
        "units": 24, "t_limit": 2000, "ticks": 260,
        "deviations": {"mean_gap": 16, "min_ticks": 2, "max_ticks": 7, "seed": 9},
        "repair": {"lag_threshold": 3},
        "threads": 2
    }"#;
    let (status, body) = request(addr, "POST", "/api/v1/jobs/sim", spec_text);
    assert_eq!(status, 202, "{body}");
    let id = Json::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(poll_until_done(addr, id), 260);

    let (status, served) = request(addr, "GET", &format!("/api/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200, "{served}");

    // The exact computation, directly through the library (and at a
    // different repair thread count — thread budgets never change bytes).
    let spec = wsp_server::spec::SimSpec::from_json(&Json::parse(spec_text).unwrap()).unwrap();
    let map = wsp_maps::sorting_center_variant(&spec.params).unwrap();
    let mix = map.uniform_workload(spec.units);
    let workload = map.uniform_workload(spec.units);
    let instance = wsp_core::WspInstance::new(map.warehouse, map.traffic, workload, spec.t_limit);
    let mut config = spec.config(mix);
    config.repair.threads = Some(1);
    let mut sim =
        wsp_sim::Simulation::new(&instance, &wsp_core::PipelineOptions::default(), config).unwrap();
    let direct = sim.run().unwrap().to_json();
    assert_eq!(served, direct, "server bytes must match the library bytes");

    handle.shutdown();
}

#[test]
fn cancellation_over_http_stops_a_running_sweep() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    // The full 20-candidate sweep at a heavy unit count: plenty of time
    // to cancel mid-run.
    let (status, body) = request(
        addr,
        "POST",
        "/api/v1/jobs/explore",
        r#"{"units": 400, "t_limit": 3600, "threads": 1}"#,
    );
    assert_eq!(status, 202, "{body}");
    let id = Json::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();

    // Wait until it is genuinely running with some progress.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = request(addr, "GET", &format!("/api/v1/jobs/{id}"), "");
        let snapshot = Json::parse(&body).unwrap();
        if snapshot.get("status").unwrap().as_str() == Some("running")
            && snapshot.get("progress").unwrap().as_u64().unwrap() >= 1
        {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, body) = request(addr, "POST", &format!("/api/v1/jobs/{id}/cancel"), "");
    assert_eq!(status, 200, "{body}");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = request(addr, "GET", &format!("/api/v1/jobs/{id}"), "");
        let snapshot = Json::parse(&body).unwrap();
        if snapshot.get("status").unwrap().as_str() == Some("cancelled") {
            let progress = snapshot.get("progress").unwrap().as_u64().unwrap();
            let total = snapshot.get("total").unwrap().as_u64().unwrap();
            assert!(progress < total, "cancel landed after the whole sweep ran");
            break;
        }
        assert!(Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The result endpoint reports the cancellation as a conflict.
    let (status, body) = request(addr, "GET", &format!("/api/v1/jobs/{id}/result"), "");
    assert_eq!(status, 409, "{body}");

    handle.shutdown();
}
