//! Workloads: the demand vector `w := ⟨w_1, …, w_n⟩`.

use std::fmt;

use crate::{ModelError, ProductCatalog, ProductId};

/// A workload `w := ⟨w_1, …, w_n⟩`: how many units of each product must be
/// brought to a station within the time limit.
///
/// # Examples
///
/// ```
/// use wsp_model::{ProductId, Workload};
///
/// let mut w = Workload::zeros(3);
/// w.set(ProductId(1), 5);
/// assert_eq!(w.demand(ProductId(1)), 5);
/// assert_eq!(w.total_units(), 5);
/// assert!(!w.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    demands: Vec<u64>,
}

impl Workload {
    /// A zero workload over `n` products.
    pub fn zeros(n: usize) -> Self {
        Workload {
            demands: vec![0; n],
        }
    }

    /// Builds a workload from explicit per-product demands.
    pub fn from_demands(demands: Vec<u64>) -> Self {
        Workload { demands }
    }

    /// Number of products this workload ranges over.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// Whether every demand is zero (or the workload ranges over no products).
    pub fn is_empty(&self) -> bool {
        self.demands.iter().all(|&d| d == 0)
    }

    /// The demand `w_k` for a product, zero if out of range.
    pub fn demand(&self, product: ProductId) -> u64 {
        self.demands.get(product.index()).copied().unwrap_or(0)
    }

    /// Sets the demand for a product, growing the vector if needed.
    pub fn set(&mut self, product: ProductId, units: u64) {
        if product.index() >= self.demands.len() {
            self.demands.resize(product.index() + 1, 0);
        }
        self.demands[product.index()] = units;
    }

    /// Adds `units` to the demand for a product, saturating.
    pub fn add(&mut self, product: ProductId, units: u64) {
        let current = self.demand(product);
        self.set(product, current.saturating_add(units));
    }

    /// Total units demanded across all products ("Units Moved" in Table I).
    pub fn total_units(&self) -> u64 {
        self.demands.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Number of products with non-zero demand ("Unique Products" in Table I
    /// counts catalog size; this counts demanded products).
    pub fn demanded_products(&self) -> usize {
        self.demands.iter().filter(|&&d| d > 0).count()
    }

    /// Iterates over `(product, demand)` pairs with non-zero demand.
    pub fn iter(&self) -> impl Iterator<Item = (ProductId, u64)> + '_ {
        self.demands
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, &d)| (ProductId(i as u32), d))
    }

    /// A workload scaled by an integer factor (used by the sensitivity
    /// experiment, §V: "doubling the units of product in the workload…").
    pub fn scaled(&self, factor: u64) -> Workload {
        Workload {
            demands: self
                .demands
                .iter()
                .map(|&d| d.saturating_mul(factor))
                .collect(),
        }
    }

    /// Checks the workload is compatible with a catalog: it must not demand
    /// products outside the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownProduct`] if it does.
    pub fn validate_against(&self, catalog: &ProductCatalog) -> Result<(), ModelError> {
        if self.demands.len() > catalog.len() {
            // Trailing zero demands for unknown products are still an error:
            // they indicate the workload was built for a different warehouse.
            if self.demands[catalog.len()..].iter().any(|&d| d > 0) {
                return Err(ModelError::UnknownProduct {
                    index: catalog.len(),
                    catalog_len: catalog.len(),
                });
            }
        }
        Ok(())
    }

    /// Whether the per-product `delivered` counts satisfy every demand.
    pub fn is_satisfied_by(&self, delivered: &[u64]) -> bool {
        self.demands
            .iter()
            .enumerate()
            .all(|(i, &d)| delivered.get(i).copied().unwrap_or(0) >= d)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload[{} products, {} units]",
            self.demanded_products(),
            self.total_units()
        )
    }
}

impl FromIterator<(ProductId, u64)> for Workload {
    fn from_iter<I: IntoIterator<Item = (ProductId, u64)>>(iter: I) -> Self {
        let mut w = Workload::default();
        for (p, d) in iter {
            w.add(p, d);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_grows_vector() {
        let mut w = Workload::default();
        w.set(ProductId(4), 9);
        assert_eq!(w.len(), 5);
        assert_eq!(w.demand(ProductId(4)), 9);
        assert_eq!(w.demand(ProductId(0)), 0);
    }

    #[test]
    fn totals_and_counts() {
        let w = Workload::from_demands(vec![3, 0, 7]);
        assert_eq!(w.total_units(), 10);
        assert_eq!(w.demanded_products(), 2);
        let pairs: Vec<_> = w.iter().collect();
        assert_eq!(pairs, vec![(ProductId(0), 3), (ProductId(2), 7)]);
    }

    #[test]
    fn scaling_doubles_units() {
        let w = Workload::from_demands(vec![3, 4]);
        assert_eq!(w.scaled(2).total_units(), 14);
    }

    #[test]
    fn satisfaction_requires_every_product() {
        let w = Workload::from_demands(vec![2, 2]);
        assert!(w.is_satisfied_by(&[2, 3]));
        assert!(!w.is_satisfied_by(&[3, 1]));
        assert!(!w.is_satisfied_by(&[2]));
        assert!(Workload::zeros(2).is_satisfied_by(&[]));
    }

    #[test]
    fn validate_against_catalog() {
        let catalog = ProductCatalog::with_len(2);
        let ok = Workload::from_demands(vec![1, 1]);
        assert!(ok.validate_against(&catalog).is_ok());
        let bad = Workload::from_demands(vec![1, 1, 1]);
        assert!(bad.validate_against(&catalog).is_err());
        // Trailing zeros are fine.
        let trailing = Workload::from_demands(vec![1, 1, 0]);
        assert!(trailing.validate_against(&catalog).is_ok());
    }
}
