//! Error type shared by the warehouse-model crate.

use std::error::Error;
use std::fmt;

use crate::Coord;

/// Errors produced while constructing or validating warehouse models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An ASCII grid had rows of unequal length.
    RaggedGrid {
        /// Row index (from the top of the input).
        row: usize,
        /// Length of the offending row.
        len: usize,
        /// Expected row length (taken from the first row).
        expected: usize,
    },
    /// An ASCII grid contained a character with no [`CellKind`](crate::CellKind) mapping.
    UnknownCell {
        /// The unrecognised character.
        ch: char,
        /// Where it appeared.
        at: Coord,
    },
    /// The grid was empty.
    EmptyGrid,
    /// A coordinate was outside the grid bounds.
    OutOfBounds {
        /// The offending coordinate.
        at: Coord,
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
    },
    /// A shelf cell had no traversable neighbour, so its products are
    /// unreachable.
    UnreachableShelf {
        /// The shelf cell.
        at: Coord,
    },
    /// A warehouse had no stations, so no workload can ever be serviced.
    NoStations,
    /// A warehouse had no shelf-access vertices.
    NoShelfAccess,
    /// Product data referenced a product id outside the catalog.
    UnknownProduct {
        /// The out-of-range product index.
        index: usize,
        /// Catalog size.
        catalog_len: usize,
    },
    /// Inventory was placed on a vertex that is not a shelf-access vertex.
    NotShelfAccess {
        /// The offending vertex, as a coordinate.
        at: Coord,
    },
    /// A plan matrix had inconsistent dimensions.
    MalformedPlan {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::RaggedGrid { row, len, expected } => {
                write!(f, "grid row {row} has length {len}, expected {expected}")
            }
            ModelError::UnknownCell { ch, at } => {
                write!(f, "unknown cell character {ch:?} at {at}")
            }
            ModelError::EmptyGrid => f.write_str("grid has no cells"),
            ModelError::OutOfBounds { at, width, height } => {
                write!(f, "coordinate {at} outside {width}x{height} grid")
            }
            ModelError::UnreachableShelf { at } => {
                write!(f, "shelf at {at} has no traversable neighbour")
            }
            ModelError::NoStations => f.write_str("warehouse has no station vertices"),
            ModelError::NoShelfAccess => f.write_str("warehouse has no shelf-access vertices"),
            ModelError::UnknownProduct { index, catalog_len } => write!(
                f,
                "product index {index} outside catalog of {catalog_len} products"
            ),
            ModelError::NotShelfAccess { at } => {
                write!(f, "vertex at {at} is not a shelf-access vertex")
            }
            ModelError::MalformedPlan { detail } => write!(f, "malformed plan: {detail}"),
        }
    }
}

impl Error for ModelError {}
