//! The floorplan graph `G := (V, E)` induced by a grid map.

use std::collections::HashMap;
use std::fmt;

use crate::{Coord, GridMap};

/// Index of a vertex in a [`FloorplanGraph`].
///
/// Vertex ids are dense (`0..vertex_count`) so they can index into flat
/// per-vertex tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The undirected floorplan graph of §III: one vertex per traversable
/// one-agent-wide cell, with an edge between orthogonally adjacent cells.
///
/// # Examples
///
/// ```
/// use wsp_model::{Coord, FloorplanGraph, GridMap};
///
/// let grid = GridMap::from_ascii("..\n.#")?;
/// let graph = FloorplanGraph::from_grid(&grid);
/// assert_eq!(graph.vertex_count(), 3); // the shelf cell is not a vertex
/// let v = graph.vertex_at(Coord::new(0, 0)).unwrap();
/// assert_eq!(graph.neighbors(v).len(), 1);
/// # Ok::<(), wsp_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FloorplanGraph {
    coords: Vec<Coord>,
    by_coord: HashMap<Coord, VertexId>,
    adjacency: Vec<Vec<VertexId>>,
}

impl FloorplanGraph {
    /// Builds the floorplan graph of a grid: traversable cells become
    /// vertices; orthogonally adjacent traversable cells are connected.
    pub fn from_grid(grid: &GridMap) -> Self {
        let mut coords = Vec::new();
        let mut by_coord = HashMap::new();
        for (at, kind) in grid.iter() {
            if kind.is_traversable() {
                let id = VertexId(coords.len() as u32);
                coords.push(at);
                by_coord.insert(at, id);
            }
        }
        let adjacency = coords
            .iter()
            .map(|&at| {
                at.neighbors()
                    .filter_map(|n| by_coord.get(&n).copied())
                    .collect()
            })
            .collect();
        FloorplanGraph {
            coords,
            by_coord,
            adjacency,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.coords.len()
    }

    /// All vertex ids, in increasing order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.coords.len() as u32).map(VertexId)
    }

    /// The grid coordinate of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    pub fn coord(&self, v: VertexId) -> Coord {
        self.coords[v.index()]
    }

    /// The vertex at a coordinate, if that cell is traversable.
    pub fn vertex_at(&self, at: Coord) -> Option<VertexId> {
        self.by_coord.get(&at).copied()
    }

    /// The neighbours of `v` (adjacent traversable cells).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v.index()]
    }

    /// Whether `a` and `b` are connected by an edge.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.adjacency
            .get(a.index())
            .is_some_and(|adj| adj.contains(&b))
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Breadth-first distances (in timesteps) from `source` to every vertex;
    /// `u32::MAX` marks unreachable vertices.
    pub fn bfs_distances(&self, source: VertexId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.vertex_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for &n in self.neighbors(v) {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// Whether every vertex can reach every other vertex.
    pub fn is_connected(&self) -> bool {
        if self.coords.is_empty() {
            return true;
        }
        self.bfs_distances(VertexId(0))
            .iter()
            .all(|&d| d != u32::MAX)
    }

    /// A shortest path from `from` to `to` (inclusive of both endpoints), or
    /// `None` if unreachable.
    pub fn shortest_path(&self, from: VertexId, to: VertexId) -> Option<Vec<VertexId>> {
        let dist = self.bfs_distances(from);
        if dist[to.index()] == u32::MAX {
            return None;
        }
        // Walk back from `to` along strictly decreasing distances.
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            let d = dist[cur.index()];
            let prev = self
                .neighbors(cur)
                .iter()
                .copied()
                .find(|n| dist[n.index()] == d - 1)
                .expect("bfs predecessor exists");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridMap;

    fn open_grid(w: u32, h: u32) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::new(w, h).unwrap())
    }

    #[test]
    fn open_grid_counts() {
        let g = open_grid(3, 3);
        assert_eq!(g.vertex_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert!(g.is_connected());
    }

    #[test]
    fn obstacles_are_not_vertices() {
        let grid = GridMap::from_ascii(".x.\n...").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        assert_eq!(g.vertex_count(), 5);
        assert!(g.vertex_at(Coord::new(1, 1)).is_none());
    }

    #[test]
    fn bfs_distances_match_manhattan_on_open_grid() {
        let g = open_grid(4, 4);
        let s = g.vertex_at(Coord::new(0, 0)).unwrap();
        let dist = g.bfs_distances(s);
        for v in g.vertices() {
            assert_eq!(dist[v.index()], g.coord(v).manhattan(Coord::new(0, 0)));
        }
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let grid = GridMap::from_ascii("...\n.x.\n...").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        let a = g.vertex_at(Coord::new(0, 1)).unwrap();
        let b = g.vertex_at(Coord::new(2, 1)).unwrap();
        let path = g.shortest_path(a, b).unwrap();
        assert_eq!(path.first(), Some(&a));
        assert_eq!(path.last(), Some(&b));
        assert_eq!(path.len(), 5); // must detour around the obstacle
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn disconnected_grid_detected() {
        let grid = GridMap::from_ascii(".x.\nxx.\n..x").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        assert!(!g.is_connected());
        let a = g.vertex_at(Coord::new(0, 0)).unwrap();
        let b = g.vertex_at(Coord::new(2, 2)).unwrap();
        assert_eq!(g.shortest_path(a, b), None);
    }

    #[test]
    fn edges_are_symmetric() {
        let grid = GridMap::from_ascii("..#\n...\n#..").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        for v in g.vertices() {
            for &n in g.neighbors(v) {
                assert!(g.has_edge(n, v));
            }
        }
    }
}
