//! The floorplan graph `G := (V, E)` induced by a grid map.
//!
//! # Flat-graph invariants
//!
//! The graph is stored in flat, index-based form so the planning and
//! realization hot paths can use dense per-vertex tables instead of hash
//! maps:
//!
//! * **Dense ids** — [`VertexId`]s are `0..vertex_count()`, assigned in
//!   row-major grid order (`y` major, bottom row first, `x` minor), so any
//!   per-vertex attribute fits in a `Vec` indexed by [`VertexId::index`].
//! * **CSR adjacency** — neighbours live in one contiguous `targets`
//!   buffer sliced by an `offsets` array; each row is sorted ascending,
//!   which makes [`FloorplanGraph::has_edge`] a binary search and keeps
//!   [`FloorplanGraph::neighbors`] an allocation-free slice borrow.
//! * **Dense coord lookup** — [`FloorplanGraph::vertex_at`] indexes a
//!   `width × height` table; no hashing anywhere in the graph core.

use std::fmt;

use crate::{Coord, GridMap};

/// Index of a vertex in a [`FloorplanGraph`].
///
/// Vertex ids are dense (`0..vertex_count`) so they can index into flat
/// per-vertex tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Resume point of a bounded BFS (see
/// [`FloorplanGraph::bfs_bounded_begin`]): the index into the `touched`
/// list of the first visited-but-unexpanded vertex. Only meaningful with
/// the exact `dist`/`touched` buffers the begin call populated.
#[derive(Debug, Clone, Copy)]
pub struct BoundedBfsCursor {
    head: usize,
}

/// Sentinel marking an empty slot in the dense `u32` tables this
/// workspace's flat-graph convention indexes by vertex, agent, or
/// component id (see the module docs); no valid id reaches `u32::MAX`.
pub const NO_INDEX: u32 = u32::MAX;

/// The undirected floorplan graph of §III: one vertex per traversable
/// one-agent-wide cell, with an edge between orthogonally adjacent cells.
///
/// Stored as a CSR (compressed sparse row) adjacency over dense vertex ids
/// plus a dense grid-indexed coordinate lookup; see the module docs for the
/// invariants.
///
/// # Examples
///
/// ```
/// use wsp_model::{Coord, FloorplanGraph, GridMap};
///
/// let grid = GridMap::from_ascii("..\n.#")?;
/// let graph = FloorplanGraph::from_grid(&grid);
/// assert_eq!(graph.vertex_count(), 3); // the shelf cell is not a vertex
/// let v = graph.vertex_at(Coord::new(0, 0)).unwrap();
/// assert_eq!(graph.neighbors(v).len(), 1);
/// # Ok::<(), wsp_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FloorplanGraph {
    coords: Vec<Coord>,
    /// Grid dimensions backing `grid_to_vertex`.
    width: u32,
    height: u32,
    /// `grid_to_vertex[y * width + x]` is the vertex id at `(x, y)`, or
    /// [`NO_INDEX`].
    grid_to_vertex: Vec<u32>,
    /// CSR row starts: the neighbours of `v` are
    /// `targets[offsets[v] .. offsets[v + 1]]`, sorted ascending.
    offsets: Vec<u32>,
    /// CSR neighbour buffer (`VertexId` is `repr(transparent)` over `u32`).
    targets: Vec<VertexId>,
}

impl FloorplanGraph {
    /// Builds the floorplan graph of a grid: traversable cells become
    /// vertices; orthogonally adjacent traversable cells are connected.
    pub fn from_grid(grid: &GridMap) -> Self {
        let width = grid.width();
        let height = grid.height();
        let mut coords = Vec::new();
        let mut grid_to_vertex = vec![NO_INDEX; grid.cell_count()];
        for (at, kind) in grid.iter() {
            if kind.is_traversable() {
                grid_to_vertex[(at.y as usize) * width as usize + at.x as usize] =
                    coords.len() as u32;
                coords.push(at);
            }
        }

        let lookup = |at: Coord| -> Option<u32> {
            (at.x < width && at.y < height)
                .then(|| grid_to_vertex[(at.y as usize) * width as usize + at.x as usize])
                .filter(|&id| id != NO_INDEX)
        };

        // Two passes: count degrees, then fill rows (classic CSR build).
        let n = coords.len();
        let mut offsets = vec![0u32; n + 1];
        for (i, &at) in coords.iter().enumerate() {
            let degree = at.neighbors().filter_map(lookup).count() as u32;
            offsets[i + 1] = offsets[i] + degree;
        }
        let mut targets = vec![VertexId(NO_INDEX); offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (i, &at) in coords.iter().enumerate() {
            for neighbor in at.neighbors().filter_map(lookup) {
                targets[cursor[i] as usize] = VertexId(neighbor);
                cursor[i] += 1;
            }
            // Sorted rows enable binary-searched `has_edge`.
            targets[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }

        FloorplanGraph {
            coords,
            width,
            height,
            grid_to_vertex,
            offsets,
            targets,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.coords.len()
    }

    /// All vertex ids, in increasing order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.coords.len() as u32).map(VertexId)
    }

    /// The grid coordinate of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    pub fn coord(&self, v: VertexId) -> Coord {
        self.coords[v.index()]
    }

    /// The vertex at a coordinate, if that cell is traversable.
    pub fn vertex_at(&self, at: Coord) -> Option<VertexId> {
        if at.x >= self.width || at.y >= self.height {
            return None;
        }
        let id = self.grid_to_vertex[(at.y as usize) * self.width as usize + at.x as usize];
        (id != NO_INDEX).then_some(VertexId(id))
    }

    /// The neighbours of `v` (adjacent traversable cells), as a contiguous
    /// CSR slice sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether `a` and `b` are connected by an edge.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        a.index() < self.vertex_count() && self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Breadth-first distances (in timesteps) from `source` to every vertex;
    /// `u32::MAX` marks unreachable vertices.
    pub fn bfs_distances(&self, source: VertexId) -> Vec<u32> {
        let mut dist = Vec::new();
        self.bfs_distances_into(source, &mut dist);
        dist
    }

    /// [`bfs_distances`](Self::bfs_distances) into a caller-owned buffer,
    /// resized and overwritten in place — the allocation-light variant for
    /// callers that run many searches over the same graph (space-time A*
    /// recomputes a heuristic field per segment; reusing the buffer keeps
    /// repeated planning free of O(vertices) allocations).
    pub fn bfs_distances_into(&self, source: VertexId, dist: &mut Vec<u32>) {
        dist.clear();
        dist.resize(self.vertex_count(), u32::MAX);
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for &n in self.neighbors(v) {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = d + 1;
                    queue.push_back(n);
                }
            }
        }
    }

    /// Depth-bounded [`bfs_distances_into`](Self::bfs_distances_into):
    /// exact distances for vertices within `cap` steps of `source`,
    /// `u32::MAX` beyond, maintained through a touched-list so repeated
    /// shallow fields cost O(cells within `cap`) instead of O(vertices).
    ///
    /// `dist` and `touched` belong together: `dist` must either be empty
    /// (it is sized and filled with `u32::MAX` once) or hold the result of
    /// a previous call with the same `touched` list on this graph. The
    /// call resets exactly the previously touched entries, then reuses
    /// `touched` as the BFS queue (its final contents are the vertices
    /// reached this time, in visit order).
    pub fn bfs_distances_bounded_into(
        &self,
        source: VertexId,
        cap: u32,
        dist: &mut Vec<u32>,
        touched: &mut Vec<u32>,
    ) {
        let _ = self.bfs_bounded_begin(source, cap, dist, touched);
    }

    /// Starts a *resumable* bounded BFS: identical to
    /// [`bfs_distances_bounded_into`](Self::bfs_distances_bounded_into),
    /// but returns a cursor that
    /// [`bfs_bounded_resume`](Self::bfs_bounded_resume) can continue at a
    /// larger cap without re-expanding any visited vertex. Cap-escalation
    /// callers (the auction's 32 → 128 → 512 → ∞ neighbourhood probes)
    /// pay each BFS layer exactly once across the whole escalation.
    pub fn bfs_bounded_begin(
        &self,
        source: VertexId,
        cap: u32,
        dist: &mut Vec<u32>,
        touched: &mut Vec<u32>,
    ) -> BoundedBfsCursor {
        if dist.len() != self.vertex_count() {
            dist.clear();
            dist.resize(self.vertex_count(), u32::MAX);
            touched.clear();
        }
        for &i in touched.iter() {
            dist[i as usize] = u32::MAX;
        }
        touched.clear();
        dist[source.index()] = 0;
        touched.push(source.0);
        let mut cursor = BoundedBfsCursor { head: 0 };
        self.bfs_bounded_resume(&mut cursor, cap, dist, touched);
        cursor
    }

    /// Continues a bounded BFS started by
    /// [`bfs_bounded_begin`](Self::bfs_bounded_begin) up to a larger
    /// `cap`, with `dist`/`touched` exactly as that call left them. After
    /// the call the field is byte-identical to a fresh bounded run at
    /// `cap`: exact distances within `cap` steps, `u32::MAX` beyond.
    /// Caps must be non-decreasing across resumes; a smaller cap is a
    /// no-op (the already-expanded field is a superset).
    pub fn bfs_bounded_resume(
        &self,
        cursor: &mut BoundedBfsCursor,
        cap: u32,
        dist: &mut [u32],
        touched: &mut Vec<u32>,
    ) {
        let mut head = cursor.head;
        while head < touched.len() {
            let v = VertexId(touched[head]);
            let d = dist[v.index()];
            if d >= cap {
                // Visit order is by depth, so the unexpanded suffix
                // starts here; remember it for the next escalation.
                break;
            }
            head += 1;
            for &n in self.neighbors(v) {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = d + 1;
                    touched.push(n.0);
                }
            }
        }
        cursor.head = head;
    }

    /// Whether every vertex can reach every other vertex.
    pub fn is_connected(&self) -> bool {
        if self.coords.is_empty() {
            return true;
        }
        self.bfs_distances(VertexId(0))
            .iter()
            .all(|&d| d != u32::MAX)
    }

    /// A shortest path from `from` to `to` (inclusive of both endpoints), or
    /// `None` if unreachable.
    pub fn shortest_path(&self, from: VertexId, to: VertexId) -> Option<Vec<VertexId>> {
        let dist = self.bfs_distances(from);
        if dist[to.index()] == u32::MAX {
            return None;
        }
        // Walk back from `to` along strictly decreasing distances.
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            let d = dist[cur.index()];
            let prev = self
                .neighbors(cur)
                .iter()
                .copied()
                .find(|n| dist[n.index()] == d - 1)
                .expect("bfs predecessor exists");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridMap;

    fn open_grid(w: u32, h: u32) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::new(w, h).unwrap())
    }

    #[test]
    fn open_grid_counts() {
        let g = open_grid(3, 3);
        assert_eq!(g.vertex_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert!(g.is_connected());
    }

    #[test]
    fn obstacles_are_not_vertices() {
        let grid = GridMap::from_ascii(".x.\n...").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        assert_eq!(g.vertex_count(), 5);
        assert!(g.vertex_at(Coord::new(1, 1)).is_none());
    }

    #[test]
    fn out_of_bounds_lookup_is_none() {
        let g = open_grid(3, 2);
        assert!(g.vertex_at(Coord::new(3, 0)).is_none());
        assert!(g.vertex_at(Coord::new(0, 2)).is_none());
        assert!(g.vertex_at(Coord::new(99, 99)).is_none());
    }

    #[test]
    fn csr_rows_are_sorted() {
        let grid = GridMap::from_ascii("..#..\n.....\n..@..").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        for v in g.vertices() {
            let row = g.neighbors(v);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row of {v} not sorted");
        }
    }

    #[test]
    fn bfs_distances_match_manhattan_on_open_grid() {
        let g = open_grid(4, 4);
        let s = g.vertex_at(Coord::new(0, 0)).unwrap();
        let dist = g.bfs_distances(s);
        for v in g.vertices() {
            assert_eq!(dist[v.index()], g.coord(v).manhattan(Coord::new(0, 0)));
        }
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let grid = GridMap::from_ascii("...\n.x.\n...").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        let a = g.vertex_at(Coord::new(0, 1)).unwrap();
        let b = g.vertex_at(Coord::new(2, 1)).unwrap();
        let path = g.shortest_path(a, b).unwrap();
        assert_eq!(path.first(), Some(&a));
        assert_eq!(path.last(), Some(&b));
        assert_eq!(path.len(), 5); // must detour around the obstacle
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn disconnected_grid_detected() {
        let grid = GridMap::from_ascii(".x.\nxx.\n..x").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        assert!(!g.is_connected());
        let a = g.vertex_at(Coord::new(0, 0)).unwrap();
        let b = g.vertex_at(Coord::new(2, 2)).unwrap();
        assert_eq!(g.shortest_path(a, b), None);
    }

    #[test]
    fn edges_are_symmetric() {
        let grid = GridMap::from_ascii("..#\n...\n#..").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        for v in g.vertices() {
            for &n in g.neighbors(v) {
                assert!(g.has_edge(n, v));
            }
        }
    }

    #[test]
    fn bounded_bfs_resume_matches_fresh_runs_at_every_cap() {
        // An obstacle-riddled grid so BFS layers are irregular, swept from
        // every source: after each escalation step the resumed field must
        // be byte-identical to a from-scratch bounded run at that cap.
        let grid = GridMap::from_ascii("......\n.x.x..\n...x..\n.x....\n......").unwrap();
        let g = FloorplanGraph::from_grid(&grid);
        for source in g.vertices() {
            let (mut dist, mut touched) = (Vec::new(), Vec::new());
            let mut cursor = None;
            for cap in [1u32, 2, 3, 5, 9, u32::MAX] {
                match cursor.as_mut() {
                    None => {
                        cursor = Some(g.bfs_bounded_begin(source, cap, &mut dist, &mut touched))
                    }
                    Some(c) => g.bfs_bounded_resume(c, cap, &mut dist, &mut touched),
                }
                let (mut fresh, mut fresh_touched) = (Vec::new(), Vec::new());
                g.bfs_distances_bounded_into(source, cap, &mut fresh, &mut fresh_touched);
                assert_eq!(
                    dist, fresh,
                    "resumed field diverged at cap {cap} from {source}"
                );
            }
            assert_eq!(
                dist,
                g.bfs_distances(source),
                "uncapped resume is the full field"
            );
        }
    }
}
