//! Rectangular grid maps and their ASCII serialization.

use std::fmt;

use crate::{Coord, ModelError};

/// What occupies a single one-agent-wide cell of a warehouse floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellKind {
    /// Open floor an agent may traverse.
    #[default]
    Empty,
    /// A wall or other static obstacle; never traversable.
    Obstacle,
    /// A shelf holding products. Not traversable; products are picked from
    /// adjacent traversable cells (the *shelf-access* vertices).
    Shelf,
    /// A packing station. Traversable; agents drop products off here.
    Station,
}

impl CellKind {
    /// Whether an agent may occupy a cell of this kind.
    pub fn is_traversable(self) -> bool {
        matches!(self, CellKind::Empty | CellKind::Station)
    }

    /// The canonical ASCII character for this kind (see [`GridMap::from_ascii`]).
    pub fn to_char(self) -> char {
        match self {
            CellKind::Empty => '.',
            CellKind::Obstacle => 'x',
            CellKind::Shelf => '#',
            CellKind::Station => '@',
        }
    }

    /// Parses the canonical ASCII character for a cell kind.
    ///
    /// Recognised characters: `.` or ` ` (empty), `x` or `X` (obstacle),
    /// `#` (shelf), `@` (station).
    pub fn from_char(ch: char) -> Option<CellKind> {
        match ch {
            '.' | ' ' => Some(CellKind::Empty),
            'x' | 'X' => Some(CellKind::Obstacle),
            '#' => Some(CellKind::Shelf),
            '@' => Some(CellKind::Station),
            _ => None,
        }
    }
}

/// A rectangular warehouse floorplan of [`CellKind`]s.
///
/// Row `y = 0` is the *bottom* row; [`GridMap::from_ascii`] therefore reads
/// the last input line as `y = 0`, matching the paper's Fig. 1 where stations
/// sit on the bottom edge.
///
/// # Examples
///
/// ```
/// use wsp_model::{CellKind, Coord, GridMap};
///
/// let grid = GridMap::from_ascii(".#.\n.@.")?;
/// assert_eq!(grid.width(), 3);
/// assert_eq!(grid.height(), 2);
/// assert_eq!(grid.get(Coord::new(1, 1)), Some(CellKind::Shelf));
/// assert_eq!(grid.get(Coord::new(1, 0)), Some(CellKind::Station));
/// # Ok::<(), wsp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridMap {
    width: u32,
    height: u32,
    cells: Vec<CellKind>,
}

impl GridMap {
    /// Creates a grid of `width * height` [`CellKind::Empty`] cells.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyGrid`] if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Result<Self, ModelError> {
        if width == 0 || height == 0 {
            return Err(ModelError::EmptyGrid);
        }
        Ok(GridMap {
            width,
            height,
            cells: vec![CellKind::Empty; (width as usize) * (height as usize)],
        })
    }

    /// Parses a grid from ASCII art (see [`CellKind::from_char`] for the
    /// character set). The *last* line becomes row `y = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RaggedGrid`] if lines have unequal lengths,
    /// [`ModelError::UnknownCell`] on an unrecognised character, and
    /// [`ModelError::EmptyGrid`] on empty input.
    pub fn from_ascii(art: &str) -> Result<Self, ModelError> {
        let lines: Vec<&str> = art.lines().filter(|l| !l.is_empty()).collect();
        if lines.is_empty() {
            return Err(ModelError::EmptyGrid);
        }
        let width = lines[0].chars().count();
        let height = lines.len();
        let mut grid = GridMap::new(width as u32, height as u32)?;
        for (row, line) in lines.iter().enumerate() {
            let len = line.chars().count();
            if len != width {
                return Err(ModelError::RaggedGrid {
                    row,
                    len,
                    expected: width,
                });
            }
            // Input row 0 is the top of the map, i.e. y = height - 1.
            let y = (height - 1 - row) as u32;
            for (x, ch) in line.chars().enumerate() {
                let at = Coord::new(x as u32, y);
                let kind = CellKind::from_char(ch).ok_or(ModelError::UnknownCell { ch, at })?;
                grid.set(at, kind)?;
            }
        }
        Ok(grid)
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of cells (`width * height`).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Whether `at` lies within the grid bounds.
    pub fn contains(&self, at: Coord) -> bool {
        at.x < self.width && at.y < self.height
    }

    fn index(&self, at: Coord) -> Option<usize> {
        self.contains(at)
            .then(|| (at.y as usize) * (self.width as usize) + at.x as usize)
    }

    /// Returns the cell kind at `at`, or `None` if out of bounds.
    pub fn get(&self, at: Coord) -> Option<CellKind> {
        self.index(at).map(|i| self.cells[i])
    }

    /// Sets the cell kind at `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfBounds`] if `at` is outside the grid.
    pub fn set(&mut self, at: Coord, kind: CellKind) -> Result<(), ModelError> {
        let idx = self.index(at).ok_or(ModelError::OutOfBounds {
            at,
            width: self.width,
            height: self.height,
        })?;
        self.cells[idx] = kind;
        Ok(())
    }

    /// Iterates over all `(coordinate, kind)` pairs in row-major order
    /// starting from the bottom-left cell.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, CellKind)> + '_ {
        (0..self.height).flat_map(move |y| {
            (0..self.width).map(move |x| {
                let at = Coord::new(x, y);
                (at, self.get(at).expect("in-bounds by construction"))
            })
        })
    }

    /// Coordinates of all cells of the given kind.
    pub fn cells_of_kind(&self, kind: CellKind) -> Vec<Coord> {
        self.iter()
            .filter_map(|(at, k)| (k == kind).then_some(at))
            .collect()
    }

    /// Number of traversable cells.
    pub fn traversable_count(&self) -> usize {
        self.iter().filter(|(_, k)| k.is_traversable()).count()
    }

    /// Renders the grid back to ASCII art (top row first), the inverse of
    /// [`GridMap::from_ascii`].
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.width as usize + 1) * self.height as usize);
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                out.push(
                    self.get(Coord::new(x, y))
                        .expect("in-bounds by construction")
                        .to_char(),
                );
            }
            if y != 0 {
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for GridMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip() {
        let art = ".#.#.\n.....\n.@.@.";
        let grid = GridMap::from_ascii(art).unwrap();
        assert_eq!(grid.to_ascii(), art);
    }

    #[test]
    fn bottom_row_is_y_zero() {
        let grid = GridMap::from_ascii("#\n@").unwrap();
        assert_eq!(grid.get(Coord::new(0, 0)), Some(CellKind::Station));
        assert_eq!(grid.get(Coord::new(0, 1)), Some(CellKind::Shelf));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = GridMap::from_ascii("..\n...").unwrap_err();
        assert!(matches!(err, ModelError::RaggedGrid { row: 1, .. }));
    }

    #[test]
    fn unknown_cell_rejected() {
        let err = GridMap::from_ascii(".?").unwrap_err();
        assert!(matches!(err, ModelError::UnknownCell { ch: '?', .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(GridMap::from_ascii("").unwrap_err(), ModelError::EmptyGrid);
        assert_eq!(GridMap::new(0, 4).unwrap_err(), ModelError::EmptyGrid);
    }

    #[test]
    fn out_of_bounds_get_and_set() {
        let mut grid = GridMap::new(2, 2).unwrap();
        assert_eq!(grid.get(Coord::new(2, 0)), None);
        assert!(matches!(
            grid.set(Coord::new(0, 5), CellKind::Shelf),
            Err(ModelError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn traversability() {
        assert!(CellKind::Empty.is_traversable());
        assert!(CellKind::Station.is_traversable());
        assert!(!CellKind::Shelf.is_traversable());
        assert!(!CellKind::Obstacle.is_traversable());
    }

    #[test]
    fn cells_of_kind_finds_all() {
        let grid = GridMap::from_ascii(".#.\n#.#").unwrap();
        assert_eq!(grid.cells_of_kind(CellKind::Shelf).len(), 3);
        assert_eq!(grid.traversable_count(), 3);
    }
}
