//! Warehouse substrate: grids, floorplan graphs, products, workloads, plans,
//! and feasibility checkers.
//!
//! This crate implements the automated-warehouse model of §III of
//! *Co-Design of Topology, Scheduling, and Path Planning in Automated
//! Warehouses* (DATE 2023). A warehouse `W := (G, S, R, ρ, Λ)` consists of a
//! [`FloorplanGraph`] `G`, shelf-access vertices `S`, station vertices `R`, a
//! product catalog `ρ`, and a location matrix `Λ`. Teams of agents execute
//! [`Plan`]s, which this crate can check for feasibility (movement, collision,
//! and product-handling rules) and for whether they service a [`Workload`].
//!
//! # Examples
//!
//! ```
//! use wsp_model::{Direction, GridMap, Warehouse};
//!
//! // The Fig. 1 example warehouse: two shelves (#), two stations (@),
//! // shelves accessed from the east and west.
//! let grid = GridMap::from_ascii(
//!     ".#.#.\n\
//!      .....\n\
//!      .@.@.",
//! )?;
//! let warehouse =
//!     Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West])?;
//! assert_eq!(warehouse.shelf_access().len(), 3);
//! assert_eq!(warehouse.stations().len(), 2);
//! # Ok::<(), wsp_model::ModelError>(())
//! ```

#![warn(missing_docs)]

mod coord;
mod error;
mod graph;
mod grid;
mod inventory;
mod plan;
mod product;
mod warehouse;
mod workload;

pub use coord::{Coord, Direction};
pub use error::ModelError;
pub use graph::{BoundedBfsCursor, FloorplanGraph, VertexId, NO_INDEX};
pub use grid::{CellKind, GridMap};
pub use inventory::LocationMatrix;
pub use plan::{
    AgentState, Carry, CheckFailure, CheckScratch, Plan, PlanChecker, PlanStats, PlanViolation,
};
pub use product::{ProductCatalog, ProductId};
pub use warehouse::Warehouse;
pub use workload::Workload;
