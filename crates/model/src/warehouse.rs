//! The automated warehouse `W := (G, S, R, ρ, Λ)`.

use std::collections::BTreeSet;

use crate::{
    CellKind, Coord, FloorplanGraph, GridMap, LocationMatrix, ModelError, ProductCatalog,
    ProductId, VertexId,
};

/// An automated warehouse: the 5-tuple `W := (G, S, R, ρ, Λ)` of §III.
///
/// Construction derives `G` (floorplan graph), `S` (shelf-access vertices:
/// traversable cells adjacent to a shelf), and `R` (station vertices) from a
/// [`GridMap`]; the catalog `ρ` and location matrix `Λ` are attached with
/// [`Warehouse::set_catalog`] / [`Warehouse::stock`].
///
/// # Examples
///
/// ```
/// use wsp_model::{GridMap, ProductCatalog, ProductId, Warehouse};
///
/// let grid = GridMap::from_ascii(".#.#.\n.....\n.@.@.")?;
/// let mut warehouse = Warehouse::from_grid(&grid)?;
/// warehouse.set_catalog(ProductCatalog::with_len(2));
/// let s = warehouse.shelf_access()[0];
/// warehouse.stock(s, ProductId(0), 10)?;
/// assert_eq!(warehouse.location_matrix().total_units(ProductId(0)), 10);
/// # Ok::<(), wsp_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Warehouse {
    grid: GridMap,
    graph: FloorplanGraph,
    shelf_access: Vec<VertexId>,
    stations: Vec<VertexId>,
    catalog: ProductCatalog,
    location: LocationMatrix,
}

impl Warehouse {
    /// Builds a warehouse from a grid, deriving the floorplan graph, the
    /// shelf-access vertex set `S` (every traversable neighbour of a shelf),
    /// and the station vertex set `R`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnreachableShelf`] if a shelf cell has no
    /// traversable neighbour, [`ModelError::NoStations`] /
    /// [`ModelError::NoShelfAccess`] if either derived set is empty.
    pub fn from_grid(grid: &GridMap) -> Result<Self, ModelError> {
        Self::from_grid_with_access(grid, &crate::Direction::ALL)
    }

    /// Like [`Warehouse::from_grid`], but a shelf may only be accessed from
    /// the given directions (relative to the shelf cell). The paper's Fig. 1
    /// warehouse, for example, accesses shelves from the east and west only.
    ///
    /// # Errors
    ///
    /// Same as [`Warehouse::from_grid`].
    pub fn from_grid_with_access(
        grid: &GridMap,
        access: &[crate::Direction],
    ) -> Result<Self, ModelError> {
        let graph = FloorplanGraph::from_grid(grid);

        let mut shelf_access = BTreeSet::new();
        for at in grid.cells_of_kind(CellKind::Shelf) {
            let mut reachable = false;
            for &dir in access {
                let Some(n) = at.step(dir) else { continue };
                if let Some(v) = graph.vertex_at(n) {
                    shelf_access.insert(v);
                    reachable = true;
                }
            }
            if !reachable {
                return Err(ModelError::UnreachableShelf { at });
            }
        }
        if shelf_access.is_empty() {
            return Err(ModelError::NoShelfAccess);
        }

        let stations: Vec<VertexId> = grid
            .cells_of_kind(CellKind::Station)
            .into_iter()
            .map(|at| graph.vertex_at(at).expect("stations are traversable"))
            .collect();
        if stations.is_empty() {
            return Err(ModelError::NoStations);
        }

        Ok(Warehouse {
            grid: grid.clone(),
            graph,
            shelf_access: shelf_access.into_iter().collect(),
            stations,
            catalog: ProductCatalog::new(),
            location: LocationMatrix::new(),
        })
    }

    /// The underlying grid map.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// The floorplan graph `G`.
    pub fn graph(&self) -> &FloorplanGraph {
        &self.graph
    }

    /// The shelf-access vertices `S ⊂ V`, sorted by id.
    pub fn shelf_access(&self) -> &[VertexId] {
        &self.shelf_access
    }

    /// The station vertices `R ⊂ V`.
    pub fn stations(&self) -> &[VertexId] {
        &self.stations
    }

    /// Whether `v` is a shelf-access vertex.
    pub fn is_shelf_access(&self, v: VertexId) -> bool {
        self.shelf_access.binary_search(&v).is_ok()
    }

    /// Whether `v` is a station vertex.
    pub fn is_station(&self, v: VertexId) -> bool {
        self.stations.contains(&v)
    }

    /// The product catalog `ρ`.
    pub fn catalog(&self) -> &ProductCatalog {
        &self.catalog
    }

    /// Replaces the product catalog.
    ///
    /// Existing stock is kept; callers replacing the catalog with a smaller
    /// one should rebuild stock as well.
    pub fn set_catalog(&mut self, catalog: ProductCatalog) {
        self.catalog = catalog;
    }

    /// The location matrix `Λ`.
    pub fn location_matrix(&self) -> &LocationMatrix {
        &self.location
    }

    /// Stocks `count` units of `product` at shelf-access vertex `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotShelfAccess`] if `at` is not in `S`, and
    /// [`ModelError::UnknownProduct`] if `product` is outside the catalog.
    pub fn stock(
        &mut self,
        at: VertexId,
        product: ProductId,
        count: u64,
    ) -> Result<(), ModelError> {
        if !self.is_shelf_access(at) {
            return Err(ModelError::NotShelfAccess {
                at: self.graph.coord(at),
            });
        }
        if !self.catalog.contains(product) {
            return Err(ModelError::UnknownProduct {
                index: product.index(),
                catalog_len: self.catalog.len(),
            });
        }
        self.location.add_units(at, product, count);
        Ok(())
    }

    /// The products available at vertex `v` (the paper's `PRODUCTS_AT(v)`),
    /// empty when `v ∉ S`.
    pub fn products_at(&self, v: VertexId) -> Vec<ProductId> {
        self.location.products_at(v).map(|(p, _)| p).collect()
    }

    /// The coordinate of vertex `v` (convenience passthrough).
    pub fn coord(&self, v: VertexId) -> Coord {
        self.graph.coord(v)
    }

    /// Number of shelf cells on the grid (reported in the paper's map stats).
    pub fn shelf_count(&self) -> usize {
        self.grid.cells_of_kind(CellKind::Shelf).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::Direction;

    fn fig1() -> Warehouse {
        // Fig. 1: two shelves at (1,2) and (3,2), accessed from east and
        // west; stations at (1,0), (3,0).
        let grid = GridMap::from_ascii(".#.#.\n.....\n.@.@.").unwrap();
        Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap()
    }

    #[test]
    fn fig1_sets_match_paper() {
        let w = fig1();
        let coords: Vec<Coord> = w.shelf_access().iter().map(|&v| w.coord(v)).collect();
        // S = {v(0,2), v(2,2), v(4,2)}
        assert!(coords.contains(&Coord::new(0, 2)));
        assert!(coords.contains(&Coord::new(2, 2)));
        assert!(coords.contains(&Coord::new(4, 2)));
        assert_eq!(coords.len(), 3);
        // R = {v(1,0), v(3,0)}
        let stations: Vec<Coord> = w.stations().iter().map(|&v| w.coord(v)).collect();
        assert_eq!(stations, vec![Coord::new(1, 0), Coord::new(3, 0)]);
        assert_eq!(w.shelf_count(), 2);
    }

    #[test]
    fn fig1_location_matrix_matches_paper() {
        let mut w = fig1();
        w.set_catalog(ProductCatalog::with_len(2));
        // Shelf (1,2) holds 10 of ρ1: accessible from (0,2) and (2,2).
        // Shelf (3,2) holds 10 of ρ2: accessible from (2,2) and (4,2).
        let v02 = w.graph().vertex_at(Coord::new(0, 2)).unwrap();
        let v22 = w.graph().vertex_at(Coord::new(2, 2)).unwrap();
        let v42 = w.graph().vertex_at(Coord::new(4, 2)).unwrap();
        w.stock(v02, ProductId(0), 10).unwrap();
        w.stock(v22, ProductId(0), 10).unwrap();
        w.stock(v22, ProductId(1), 10).unwrap();
        w.stock(v42, ProductId(1), 10).unwrap();
        assert_eq!(w.location_matrix().units_at(v02, ProductId(0)), 10);
        assert_eq!(w.location_matrix().units_at(v02, ProductId(1)), 0);
        assert_eq!(w.products_at(v22).len(), 2);
    }

    #[test]
    fn stock_rejects_non_shelf_vertex() {
        let mut w = fig1();
        w.set_catalog(ProductCatalog::with_len(1));
        let station = w.stations()[0];
        assert!(matches!(
            w.stock(station, ProductId(0), 1),
            Err(ModelError::NotShelfAccess { .. })
        ));
    }

    #[test]
    fn stock_rejects_unknown_product() {
        let mut w = fig1();
        w.set_catalog(ProductCatalog::with_len(1));
        let s = w.shelf_access()[0];
        assert!(matches!(
            w.stock(s, ProductId(5), 1),
            Err(ModelError::UnknownProduct { .. })
        ));
    }

    #[test]
    fn walled_in_shelf_rejected() {
        let grid = GridMap::from_ascii("xxx\nx#x\nxxx").unwrap();
        assert!(matches!(
            Warehouse::from_grid(&grid),
            Err(ModelError::UnreachableShelf { .. })
        ));
    }

    #[test]
    fn missing_stations_rejected() {
        let grid = GridMap::from_ascii(".#.\n...").unwrap();
        assert!(matches!(
            Warehouse::from_grid(&grid),
            Err(ModelError::NoStations)
        ));
    }

    #[test]
    fn missing_shelves_rejected() {
        let grid = GridMap::from_ascii("...\n.@.").unwrap();
        assert!(matches!(
            Warehouse::from_grid(&grid),
            Err(ModelError::NoShelfAccess)
        ));
    }
}
