//! Grid coordinates and the four cardinal movement directions.

use std::fmt;

/// A cell coordinate on a [`GridMap`](crate::GridMap).
///
/// `x` grows to the east (right), `y` grows to the north (up), matching the
/// paper's Fig. 1 convention where stations sit at `y = 0`.
///
/// # Examples
///
/// ```
/// use wsp_model::{Coord, Direction};
///
/// let c = Coord::new(2, 1);
/// assert_eq!(c.step(Direction::North), Some(Coord::new(2, 2)));
/// assert_eq!(Coord::new(0, 0).step(Direction::West), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column index, growing eastward.
    pub x: u32,
    /// Row index, growing northward.
    pub y: u32,
}

impl Coord {
    /// Creates a coordinate at `(x, y)`.
    pub const fn new(x: u32, y: u32) -> Self {
        Coord { x, y }
    }

    /// Returns the neighbouring coordinate one step in `dir`, or `None` if
    /// the step would leave the non-negative quadrant.
    pub fn step(self, dir: Direction) -> Option<Coord> {
        match dir {
            Direction::North => Some(Coord::new(self.x, self.y.checked_add(1)?)),
            Direction::South => Some(Coord::new(self.x, self.y.checked_sub(1)?)),
            Direction::East => Some(Coord::new(self.x.checked_add(1)?, self.y)),
            Direction::West => Some(Coord::new(self.x.checked_sub(1)?, self.y)),
        }
    }

    /// The four cardinal neighbours that stay in the non-negative quadrant.
    pub fn neighbors(self) -> impl Iterator<Item = Coord> {
        Direction::ALL.into_iter().filter_map(move |d| self.step(d))
    }

    /// Manhattan distance between two coordinates.
    ///
    /// ```
    /// use wsp_model::Coord;
    /// assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
    /// ```
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u32, u32)> for Coord {
    fn from((x, y): (u32, u32)) -> Self {
        Coord::new(x, y)
    }
}

/// One of the four cardinal movement directions on a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger `y`.
    North,
    /// Toward smaller `y`.
    South,
    /// Toward larger `x`.
    East,
    /// Toward smaller `x`.
    West,
}

impl Direction {
    /// All four directions, in N/S/E/W order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The direction pointing the opposite way.
    ///
    /// ```
    /// use wsp_model::Direction;
    /// assert_eq!(Direction::North.opposite(), Direction::South);
    /// ```
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_roundtrip() {
        let c = Coord::new(5, 5);
        for d in Direction::ALL {
            let stepped = c.step(d).expect("interior coordinate");
            assert_eq!(stepped.step(d.opposite()), Some(c));
        }
    }

    #[test]
    fn step_clamps_at_origin() {
        assert_eq!(Coord::new(0, 3).step(Direction::West), None);
        assert_eq!(Coord::new(3, 0).step(Direction::South), None);
    }

    #[test]
    fn neighbors_of_origin_are_two() {
        let n: Vec<_> = Coord::new(0, 0).neighbors().collect();
        assert_eq!(n.len(), 2);
        assert!(n.contains(&Coord::new(1, 0)));
        assert!(n.contains(&Coord::new(0, 1)));
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Coord::new(2, 9);
        let b = Coord::new(7, 1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Coord::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Direction::East.to_string(), "east");
    }
}
