//! Product identities and the warehouse product catalog `ρ`.

use std::fmt;

/// Index of a product in a [`ProductCatalog`].
///
/// The paper writes products `ρ_1 … ρ_n`; here they are dense zero-based ids
/// so they can index flat tables. The sentinel "no product" `ρ_0` is
/// represented by [`Carry::Empty`](crate::Carry), not by a `ProductId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProductId(pub u32);

impl ProductId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProductId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ{}", self.0 + 1)
    }
}

/// The product vector `ρ := ⟨ρ_1, …, ρ_n⟩` of a warehouse.
///
/// # Examples
///
/// ```
/// use wsp_model::ProductCatalog;
///
/// let catalog = ProductCatalog::with_names(["widget", "gadget"]);
/// assert_eq!(catalog.len(), 2);
/// assert_eq!(catalog.name(catalog.ids().next().unwrap()), "widget");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProductCatalog {
    names: Vec<String>,
}

impl ProductCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog of `n` products named `p1 … pn`.
    pub fn with_len(n: usize) -> Self {
        ProductCatalog {
            names: (1..=n).map(|i| format!("p{i}")).collect(),
        }
    }

    /// Creates a catalog from explicit product names.
    pub fn with_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ProductCatalog {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Appends a product and returns its id.
    pub fn add(&mut self, name: impl Into<String>) -> ProductId {
        let id = ProductId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Number of products `|ρ|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a product.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the catalog.
    pub fn name(&self, id: ProductId) -> &str {
        &self.names[id.index()]
    }

    /// Whether `id` belongs to this catalog.
    pub fn contains(&self, id: ProductId) -> bool {
        id.index() < self.names.len()
    }

    /// All product ids, in increasing order.
    pub fn ids(&self) -> impl Iterator<Item = ProductId> + '_ {
        (0..self.names.len() as u32).map(ProductId)
    }
}

impl FromIterator<String> for ProductCatalog {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        ProductCatalog::with_names(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_len_names_products() {
        let c = ProductCatalog::with_len(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.name(ProductId(0)), "p1");
        assert_eq!(c.name(ProductId(2)), "p3");
    }

    #[test]
    fn add_returns_dense_ids() {
        let mut c = ProductCatalog::new();
        assert!(c.is_empty());
        let a = c.add("a");
        let b = c.add("b");
        assert_eq!(a, ProductId(0));
        assert_eq!(b, ProductId(1));
        assert!(c.contains(b));
        assert!(!c.contains(ProductId(2)));
    }

    #[test]
    fn ids_iterate_in_order() {
        let c = ProductCatalog::with_len(4);
        let ids: Vec<_> = c.ids().collect();
        assert_eq!(
            ids,
            vec![ProductId(0), ProductId(1), ProductId(2), ProductId(3)]
        );
    }

    #[test]
    fn display_is_one_based_like_the_paper() {
        assert_eq!(ProductId(0).to_string(), "ρ1");
    }
}
