//! The location matrix `Λ`: which products are stocked at which
//! shelf-access vertices, and in what quantity.

use std::collections::BTreeMap;

use crate::{ProductId, VertexId};

/// The `|ρ| × |S|` location matrix `Λ` of §III, stored sparsely.
///
/// `Λ_{k,l}` is the number of units of product `ρ_k` accessible from
/// shelf-access vertex `v_l`. The paper's sorting-center reduction needs
/// effectively unbounded stock, so quantities saturate at [`u64::MAX`].
///
/// # Examples
///
/// ```
/// use wsp_model::{LocationMatrix, ProductId, VertexId};
///
/// let mut inv = LocationMatrix::new();
/// inv.add_units(VertexId(3), ProductId(0), 10);
/// inv.add_units(VertexId(3), ProductId(0), 5);
/// assert_eq!(inv.units_at(VertexId(3), ProductId(0)), 15);
/// assert_eq!(inv.units_at(VertexId(4), ProductId(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocationMatrix {
    // BTreeMap keeps iteration deterministic, which keeps flow synthesis and
    // benchmarks reproducible run-to-run.
    units: BTreeMap<(VertexId, ProductId), u64>,
}

impl LocationMatrix {
    /// Creates an empty location matrix (no stock anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` units of `product` at shelf-access vertex `at`,
    /// saturating at [`u64::MAX`].
    pub fn add_units(&mut self, at: VertexId, product: ProductId, count: u64) {
        if count == 0 {
            return;
        }
        let entry = self.units.entry((at, product)).or_insert(0);
        *entry = entry.saturating_add(count);
    }

    /// Removes up to `count` units, returning how many were actually removed.
    pub fn remove_units(&mut self, at: VertexId, product: ProductId, count: u64) -> u64 {
        match self.units.get_mut(&(at, product)) {
            None => 0,
            Some(have) => {
                let taken = count.min(*have);
                *have -= taken;
                if *have == 0 {
                    self.units.remove(&(at, product));
                }
                taken
            }
        }
    }

    /// Units of `product` stocked at `at` (`Λ_{k,l}`).
    pub fn units_at(&self, at: VertexId, product: ProductId) -> u64 {
        self.units.get(&(at, product)).copied().unwrap_or(0)
    }

    /// Total units of `product` across all shelf-access vertices, saturating.
    pub fn total_units(&self, product: ProductId) -> u64 {
        self.units
            .iter()
            .filter(|((_, p), _)| *p == product)
            .fold(0u64, |acc, (_, &n)| acc.saturating_add(n))
    }

    /// The products stocked at `at` (the paper's `PRODUCTS_AT(v)`), with
    /// their quantities.
    pub fn products_at(&self, at: VertexId) -> impl Iterator<Item = (ProductId, u64)> + '_ {
        self.units
            .range((at, ProductId(0))..=(at, ProductId(u32::MAX)))
            .map(|(&(_, p), &n)| (p, n))
    }

    /// Whether any units of `product` are stocked at `at`.
    pub fn has_product(&self, at: VertexId, product: ProductId) -> bool {
        self.units_at(at, product) > 0
    }

    /// All `(vertex, product, units)` entries with non-zero stock.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, ProductId, u64)> + '_ {
        self.units.iter().map(|(&(v, p), &n)| (v, p, n))
    }

    /// The shelf-access vertices that stock `product`.
    pub fn vertices_with(&self, product: ProductId) -> Vec<VertexId> {
        self.units
            .iter()
            .filter_map(|(&(v, p), &n)| (p == product && n > 0).then_some(v))
            .collect()
    }

    /// Number of non-zero `(vertex, product)` entries.
    pub fn entry_count(&self) -> usize {
        self.units.len()
    }
}

impl FromIterator<(VertexId, ProductId, u64)> for LocationMatrix {
    fn from_iter<I: IntoIterator<Item = (VertexId, ProductId, u64)>>(iter: I) -> Self {
        let mut m = LocationMatrix::new();
        for (v, p, n) in iter {
            m.add_units(v, p, n);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_roundtrip() {
        let mut inv = LocationMatrix::new();
        inv.add_units(VertexId(1), ProductId(2), 7);
        assert_eq!(inv.remove_units(VertexId(1), ProductId(2), 3), 3);
        assert_eq!(inv.units_at(VertexId(1), ProductId(2)), 4);
        assert_eq!(inv.remove_units(VertexId(1), ProductId(2), 100), 4);
        assert_eq!(inv.units_at(VertexId(1), ProductId(2)), 0);
        assert_eq!(inv.entry_count(), 0);
    }

    #[test]
    fn remove_from_empty_is_zero() {
        let mut inv = LocationMatrix::new();
        assert_eq!(inv.remove_units(VertexId(0), ProductId(0), 5), 0);
    }

    #[test]
    fn totals_sum_across_vertices() {
        let inv: LocationMatrix = [
            (VertexId(0), ProductId(0), 10),
            (VertexId(1), ProductId(0), 10),
            (VertexId(1), ProductId(1), 10),
        ]
        .into_iter()
        .collect();
        assert_eq!(inv.total_units(ProductId(0)), 20);
        assert_eq!(inv.total_units(ProductId(1)), 10);
        assert_eq!(
            inv.vertices_with(ProductId(0)),
            vec![VertexId(0), VertexId(1)]
        );
    }

    #[test]
    fn products_at_lists_only_that_vertex() {
        let inv: LocationMatrix = [
            (VertexId(5), ProductId(0), 1),
            (VertexId(5), ProductId(3), 2),
            (VertexId(6), ProductId(1), 4),
        ]
        .into_iter()
        .collect();
        let at5: Vec<_> = inv.products_at(VertexId(5)).collect();
        assert_eq!(at5, vec![(ProductId(0), 1), (ProductId(3), 2)]);
    }

    #[test]
    fn saturating_addition() {
        let mut inv = LocationMatrix::new();
        inv.add_units(VertexId(0), ProductId(0), u64::MAX);
        inv.add_units(VertexId(0), ProductId(0), 10);
        assert_eq!(inv.units_at(VertexId(0), ProductId(0)), u64::MAX);
    }

    #[test]
    fn zero_add_is_noop() {
        let mut inv = LocationMatrix::new();
        inv.add_units(VertexId(0), ProductId(0), 0);
        assert_eq!(inv.entry_count(), 0);
    }
}
