//! Discrete agent plans `(π, φ)` and their feasibility/servicing checkers.

use std::collections::HashMap;
use std::fmt;

use crate::{ModelError, ProductId, VertexId, Warehouse, Workload};

/// What an agent is carrying: either nothing (the paper's `ρ_0`) or one unit
/// of a product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Carry {
    /// Unburdened (`φ = ρ_0`).
    #[default]
    Empty,
    /// Carrying one unit of the given product.
    Product(ProductId),
}

impl Carry {
    /// Whether the agent carries nothing.
    pub fn is_empty(self) -> bool {
        self == Carry::Empty
    }

    /// The carried product, if any.
    pub fn product(self) -> Option<ProductId> {
        match self {
            Carry::Empty => None,
            Carry::Product(p) => Some(p),
        }
    }
}

impl fmt::Display for Carry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Carry::Empty => f.write_str("ρ0"),
            Carry::Product(p) => write!(f, "{p}"),
        }
    }
}

/// The state `(π_{i,t}, φ_{i,t})` of one agent at one timestep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentState {
    /// The vertex the agent occupies.
    pub at: VertexId,
    /// What the agent is carrying.
    pub carry: Carry,
}

impl AgentState {
    /// An unburdened agent at `at`.
    pub fn idle(at: VertexId) -> Self {
        AgentState {
            at,
            carry: Carry::Empty,
        }
    }
}

/// A `T`-timestep plan for a team of agents: the pair of `c × (T+1)`
/// matrices `(π, φ)` of §III, stored agent-major.
///
/// State index `t ∈ [0, T]` holds the configuration *at* timestep `t`;
/// timestep `t → t+1` is one synchronous move of the whole team.
///
/// # Examples
///
/// ```
/// use wsp_model::{AgentState, Plan, VertexId};
///
/// let mut plan = Plan::new();
/// let agent = plan.add_agent(AgentState::idle(VertexId(0)));
/// plan.push_state(agent, AgentState::idle(VertexId(1)));
/// assert_eq!(plan.horizon(), 1);
/// assert_eq!(plan.agent_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan {
    /// Per-agent state trajectories; all must end up the same length.
    trajectories: Vec<Vec<AgentState>>,
}

impl Plan {
    /// Creates an empty plan with no agents.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Adds an agent with its initial (t = 0) state; returns its index.
    pub fn add_agent(&mut self, initial: AgentState) -> usize {
        self.trajectories.push(vec![initial]);
        self.trajectories.len() - 1
    }

    /// Appends the next-timestep state for an agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn push_state(&mut self, agent: usize, state: AgentState) {
        self.trajectories[agent].push(state);
    }

    /// Reserves room for `additional` further states in every trajectory, so a
    /// realization loop that appends one state per agent per tick does not pay
    /// for doubling reallocations across thousands of small vectors.
    pub fn reserve_states(&mut self, additional: usize) {
        for t in &mut self.trajectories {
            t.reserve(additional);
        }
    }

    /// Number of agents `c`.
    pub fn agent_count(&self) -> usize {
        self.trajectories.len()
    }

    /// The planning horizon `T` (number of timesteps, i.e. states minus one).
    /// Zero for an empty plan.
    pub fn horizon(&self) -> usize {
        self.trajectories
            .iter()
            .map(|t| t.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// The state of `agent` at time `t`, or `None` if out of range.
    pub fn state(&self, agent: usize, t: usize) -> Option<AgentState> {
        self.trajectories.get(agent)?.get(t).copied()
    }

    /// The full trajectory of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn trajectory(&self, agent: usize) -> &[AgentState] {
        &self.trajectories[agent]
    }

    /// Checks all trajectories have equal length (a well-formed matrix).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedPlan`] otherwise.
    pub fn validate_shape(&self) -> Result<(), ModelError> {
        if let Some(first) = self.trajectories.first() {
            let len = first.len();
            for (i, t) in self.trajectories.iter().enumerate() {
                if t.len() != len {
                    return Err(ModelError::MalformedPlan {
                        detail: format!("agent 0 has {len} states but agent {i} has {}", t.len()),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One way a plan can violate feasibility (§III, conditions (1)–(3)) or the
/// warehouse inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanViolation {
    /// Condition (1): an agent moved to a non-adjacent vertex.
    IllegalMove {
        /// Offending agent.
        agent: usize,
        /// Timestep of departure.
        t: usize,
        /// Vertex departed from.
        from: VertexId,
        /// Vertex arrived at.
        to: VertexId,
    },
    /// Condition (2): two agents occupy the same vertex.
    VertexCollision {
        /// First agent.
        a: usize,
        /// Second agent.
        b: usize,
        /// Timestep of the collision.
        t: usize,
        /// Shared vertex.
        at: VertexId,
    },
    /// Condition (2): two agents traverse the same edge in opposite
    /// directions in the same timestep.
    EdgeCollision {
        /// First agent.
        a: usize,
        /// Second agent.
        b: usize,
        /// Timestep the swap starts.
        t: usize,
    },
    /// Condition (3): a pickup happened away from a shelf-access vertex
    /// stocking the product, a drop-off happened away from a station, or a
    /// carried product mutated in transit.
    IllegalHandling {
        /// Offending agent.
        agent: usize,
        /// Timestep of the violation.
        t: usize,
        /// Human-readable description.
        detail: String,
    },
    /// An agent state references a vertex id outside the warehouse's
    /// floorplan graph (e.g. a plan built against a different warehouse).
    UnknownVertex {
        /// Offending agent.
        agent: usize,
        /// Timestep of the first occurrence.
        t: usize,
        /// The out-of-range vertex id.
        vertex: VertexId,
    },
    /// More units of a product were picked at a vertex than `Λ` stocks there.
    InventoryExceeded {
        /// The shelf-access vertex.
        at: VertexId,
        /// The over-picked product.
        product: ProductId,
        /// Units available per `Λ`.
        available: u64,
        /// Units the plan picked.
        picked: u64,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::IllegalMove { agent, t, from, to } => {
                write!(f, "agent {agent} made illegal move {from}->{to} at t={t}")
            }
            PlanViolation::VertexCollision { a, b, t, at } => {
                write!(f, "agents {a} and {b} collide at {at} at t={t}")
            }
            PlanViolation::EdgeCollision { a, b, t } => {
                write!(f, "agents {a} and {b} swap positions at t={t}")
            }
            PlanViolation::IllegalHandling { agent, t, detail } => {
                write!(
                    f,
                    "agent {agent} illegal product handling at t={t}: {detail}"
                )
            }
            PlanViolation::UnknownVertex { agent, t, vertex } => {
                write!(
                    f,
                    "agent {agent} references {vertex} at t={t}, outside the floorplan graph"
                )
            }
            PlanViolation::InventoryExceeded {
                at,
                product,
                available,
                picked,
            } => write!(
                f,
                "picked {picked} units of {product} at {at} but only {available} stocked"
            ),
        }
    }
}

/// Aggregate statistics of a checked plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Units of each product delivered to stations (indexed by product id).
    pub delivered: Vec<u64>,
    /// Number of agents in the plan.
    pub agents: usize,
    /// Plan horizon `T`.
    pub horizon: usize,
    /// Total vertex-to-vertex moves (excluding waits).
    pub moves: u64,
    /// Total wait steps.
    pub waits: u64,
    /// Timestep of the last delivery, if any (the effective makespan).
    pub last_delivery: Option<usize>,
}

impl PlanStats {
    /// Total units delivered across all products.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.iter().sum()
    }
}

/// Reusable scratch tables for [`PlanChecker`]: the dense per-vertex
/// occupancy and departure tables plus the inventory ledger, kept across
/// calls so repeated checks (batch evaluation of many candidate plans, or
/// the staged pipeline verifying one realization per design candidate)
/// allocate nothing after the first use.
///
/// Invariant between calls: every dense entry is reset to its sentinel
/// (the touched lists are drained at the end of each check), so a scratch
/// can be handed to a checker bound to a *different* warehouse — the
/// tables are resized and the ledger cleared on entry.
#[derive(Debug, Default)]
pub struct CheckScratch {
    occupied: Vec<u32>,
    occupied_cells: Vec<u32>,
    depart_to: Vec<u32>,
    depart_agent: Vec<u32>,
    depart_cells: Vec<u32>,
    depart_overflow: Vec<(VertexId, VertexId, usize)>,
    picked: HashMap<(VertexId, ProductId), u64>,
}

impl CheckScratch {
    /// A fresh, empty scratch (tables grow on first use).
    pub fn new() -> Self {
        CheckScratch::default()
    }

    /// Resets the ledger and sizes every dense table for `n_vertices`,
    /// draining any marks a previous (possibly panicked-over) call left.
    ///
    /// In debug builds this first *asserts* the clean-tables invariant —
    /// both touched lists drained — so a scratch that leaked marks (a
    /// checker that panicked mid-check, or a future clearing bug) fails
    /// loudly on its next reuse instead of silently misreporting when
    /// handed to a checker bound to a differently-sized warehouse. Release
    /// builds keep the defensive drain.
    fn prepare(&mut self, n_vertices: usize) {
        const NONE: u32 = crate::NO_INDEX;
        debug_assert!(
            self.occupied_cells.is_empty() && self.depart_cells.is_empty(),
            "CheckScratch reused with undrained touched lists \
             ({} occupancy, {} departure marks): a previous check did not \
             restore the clean-tables invariant",
            self.occupied_cells.len(),
            self.depart_cells.len(),
        );
        for cell in self.occupied_cells.drain(..) {
            self.occupied[cell as usize] = NONE;
        }
        for cell in self.depart_cells.drain(..) {
            self.depart_to[cell as usize] = NONE;
            self.depart_agent[cell as usize] = NONE;
        }
        self.occupied.resize(n_vertices, NONE);
        self.depart_to.resize(n_vertices, NONE);
        self.depart_agent.resize(n_vertices, NONE);
        self.depart_overflow.clear();
        self.picked.clear();
    }
}

/// Checks plans against a warehouse: feasibility conditions (1)–(3) of §III,
/// inventory accounting, and workload servicing.
///
/// # Examples
///
/// ```
/// use wsp_model::{AgentState, GridMap, Plan, PlanChecker, Warehouse};
///
/// let grid = GridMap::from_ascii(".#.\n...\n.@.")?;
/// let warehouse = Warehouse::from_grid(&grid)?;
/// let checker = PlanChecker::new(&warehouse);
/// let mut plan = Plan::new();
/// let v = warehouse.stations()[0];
/// plan.add_agent(AgentState::idle(v));
/// let stats = checker.check(&plan)?;
/// assert_eq!(stats.agents, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PlanChecker<'w> {
    warehouse: &'w Warehouse,
}

impl<'w> PlanChecker<'w> {
    /// Creates a checker bound to a warehouse.
    pub fn new(warehouse: &'w Warehouse) -> Self {
        PlanChecker { warehouse }
    }

    /// Checks feasibility conditions (1)–(3) plus inventory accounting and
    /// returns plan statistics.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanViolation`] encountered (wrapped in a vector
    /// of all violations found) or a [`ModelError`] if the plan matrix is
    /// malformed.
    pub fn check(&self, plan: &Plan) -> Result<PlanStats, Box<CheckFailure>> {
        self.check_with_scratch(plan, &mut CheckScratch::new())
    }

    /// [`check`](Self::check) reusing caller-owned [`CheckScratch`] tables,
    /// so batch verification over many plans is allocation-light.
    ///
    /// # Errors
    ///
    /// As for [`check`](Self::check).
    pub fn check_with_scratch(
        &self,
        plan: &Plan,
        scratch: &mut CheckScratch,
    ) -> Result<PlanStats, Box<CheckFailure>> {
        plan.validate_shape().map_err(|e| {
            Box::new(CheckFailure {
                violations: Vec::new(),
                malformed: Some(e),
            })
        })?;

        let mut violations = Vec::new();
        let graph = self.warehouse.graph();
        let horizon = plan.horizon();
        let agents = plan.agent_count();

        // Range guard: the dense per-vertex tables below index by vertex
        // id, so out-of-range ids (a plan built against another warehouse)
        // must be rejected up front rather than panic.
        for a in 0..agents {
            for t in 0..=horizon {
                let s = plan.state(a, t).expect("validated shape");
                if s.at.index() >= graph.vertex_count() {
                    violations.push(PlanViolation::UnknownVertex {
                        agent: a,
                        t,
                        vertex: s.at,
                    });
                    break; // report each agent's first occurrence only
                }
            }
        }
        if !violations.is_empty() {
            return Err(Box::new(CheckFailure {
                violations,
                malformed: None,
            }));
        }

        let mut stats = PlanStats {
            delivered: vec![0; self.warehouse.catalog().len()],
            agents,
            horizon,
            ..PlanStats::default()
        };
        // Dense per-vertex scratch tables, owned by the caller-reusable
        // `CheckScratch` and cleared per timestep through occupancy-sized
        // touched lists (only the ≤ agents entries written last step are
        // reset, so the per-timestep cost is O(agents), independent of the
        // vertex count), matching the flat-graph storage invariants.
        // Destructure so the loop body below reads like local state.
        const NONE: u32 = crate::NO_INDEX;
        scratch.prepare(graph.vertex_count());
        let CheckScratch {
            occupied,
            occupied_cells,
            depart_to,
            depart_agent,
            depart_cells,
            depart_overflow,
            picked,
        } = scratch;
        // Departure table: at most one agent legally departs a vertex per
        // step, so a (destination, agent) pair per source vertex suffices
        // for the swap check. Invalid plans can double-depart a vertex
        // (which is itself a vertex collision); those spill into the
        // overflow list so every swap is still found.

        for t in 0..=horizon {
            // Condition (2a): vertex collisions at time t.
            for cell in occupied_cells.drain(..) {
                occupied[cell as usize] = NONE;
            }
            for a in 0..agents {
                let s = plan.state(a, t).expect("validated shape");
                let slot = &mut occupied[s.at.index()];
                if *slot != NONE {
                    violations.push(PlanViolation::VertexCollision {
                        a: *slot as usize,
                        b: a,
                        t,
                        at: s.at,
                    });
                } else {
                    *slot = a as u32;
                    occupied_cells.push(s.at.0);
                }
            }
            if t == horizon {
                break;
            }
            // Per-agent transition t -> t+1.
            for cell in depart_cells.drain(..) {
                depart_to[cell as usize] = NONE;
                depart_agent[cell as usize] = NONE;
            }
            depart_overflow.clear();
            for a in 0..agents {
                let cur = plan.state(a, t).expect("validated shape");
                let nxt = plan.state(a, t + 1).expect("validated shape");

                // Condition (1): move by 0 or 1 vertices along an edge.
                if cur.at != nxt.at {
                    if !graph.has_edge(cur.at, nxt.at) {
                        violations.push(PlanViolation::IllegalMove {
                            agent: a,
                            t,
                            from: cur.at,
                            to: nxt.at,
                        });
                    }
                    stats.moves += 1;
                    // Condition (2b): edge swap — an earlier agent departed
                    // our destination toward our source.
                    if depart_to[nxt.at.index()] == cur.at.0 {
                        violations.push(PlanViolation::EdgeCollision {
                            a: depart_agent[nxt.at.index()] as usize,
                            b: a,
                            t,
                        });
                    }
                    for &(from, to, b) in depart_overflow.iter() {
                        if from == nxt.at && to == cur.at {
                            violations.push(PlanViolation::EdgeCollision { a: b, b: a, t });
                        }
                    }
                    if depart_to[cur.at.index()] == NONE {
                        depart_to[cur.at.index()] = nxt.at.0;
                        depart_agent[cur.at.index()] = a as u32;
                        depart_cells.push(cur.at.0);
                    } else {
                        depart_overflow.push((cur.at, nxt.at, a));
                    }
                } else {
                    stats.waits += 1;
                }

                // Condition (3): product handling.
                match (cur.carry, nxt.carry) {
                    (Carry::Empty, Carry::Empty) => {}
                    (Carry::Empty, Carry::Product(p)) => {
                        // Pickup must happen at the *current* vertex, which
                        // must be a shelf-access vertex stocking p.
                        if !self.warehouse.location_matrix().has_product(cur.at, p) {
                            violations.push(PlanViolation::IllegalHandling {
                                agent: a,
                                t,
                                detail: format!("picked {p} at {} which does not stock it", cur.at),
                            });
                        } else {
                            *picked.entry((cur.at, p)).or_insert(0) += 1;
                        }
                    }
                    (Carry::Product(p), Carry::Empty) => {
                        // Drop-off must happen at a station.
                        if !self.warehouse.is_station(cur.at) {
                            violations.push(PlanViolation::IllegalHandling {
                                agent: a,
                                t,
                                detail: format!("dropped {p} away from a station"),
                            });
                        } else {
                            if p.index() < stats.delivered.len() {
                                stats.delivered[p.index()] += 1;
                            }
                            stats.last_delivery = Some(t + 1);
                        }
                    }
                    (Carry::Product(p), Carry::Product(q)) => {
                        if p != q {
                            violations.push(PlanViolation::IllegalHandling {
                                agent: a,
                                t,
                                detail: format!("carried product mutated {p} -> {q}"),
                            });
                        }
                    }
                }
            }
        }

        // Restore the clean-tables invariant for the next reuse of the
        // scratch (the loop leaves the final timestep's marks behind).
        for cell in occupied_cells.drain(..) {
            occupied[cell as usize] = NONE;
        }
        for cell in depart_cells.drain(..) {
            depart_to[cell as usize] = NONE;
            depart_agent[cell as usize] = NONE;
        }

        // Inventory accounting: total picks per (vertex, product) within Λ.
        for ((v, p), &n) in picked.iter() {
            let available = self.warehouse.location_matrix().units_at(*v, *p);
            if n > available {
                violations.push(PlanViolation::InventoryExceeded {
                    at: *v,
                    product: *p,
                    available,
                    picked: n,
                });
            }
        }

        if violations.is_empty() {
            Ok(stats)
        } else {
            Err(Box::new(CheckFailure {
                violations,
                malformed: None,
            }))
        }
    }

    /// Checks the plan is feasible *and* services `workload` (§III,
    /// Problem 3.1): every demand is met by deliveries to stations.
    ///
    /// # Errors
    ///
    /// Returns the feasibility violations found by [`PlanChecker::check`],
    /// if any. If the plan is feasible but leaves demand unserviced, the
    /// returned [`CheckFailure`] has an empty `violations` list and a
    /// [`ModelError::MalformedPlan`] in `malformed` describing the
    /// per-product shortfall.
    pub fn check_services(
        &self,
        plan: &Plan,
        workload: &Workload,
    ) -> Result<PlanStats, Box<CheckFailure>> {
        self.check_services_with_scratch(plan, workload, &mut CheckScratch::new())
    }

    /// [`check_services`](Self::check_services) reusing caller-owned
    /// [`CheckScratch`] tables.
    ///
    /// # Errors
    ///
    /// As for [`check_services`](Self::check_services).
    pub fn check_services_with_scratch(
        &self,
        plan: &Plan,
        workload: &Workload,
        scratch: &mut CheckScratch,
    ) -> Result<PlanStats, Box<CheckFailure>> {
        let stats = self.check_with_scratch(plan, scratch)?;
        if !workload.is_satisfied_by(&stats.delivered) {
            let shortfall: Vec<(ProductId, u64, u64)> = workload
                .iter()
                .filter_map(|(p, d)| {
                    let got = stats.delivered.get(p.index()).copied().unwrap_or(0);
                    (got < d).then_some((p, d, got))
                })
                .collect();
            return Err(Box::new(CheckFailure {
                violations: Vec::new(),
                malformed: Some(ModelError::MalformedPlan {
                    detail: format!(
                        "workload not serviced; shortfall on {} products: {:?}",
                        shortfall.len(),
                        shortfall
                            .iter()
                            .map(|(p, d, got)| format!("{p}: {got}/{d}"))
                            .collect::<Vec<_>>()
                    ),
                }),
            }));
        }
        Ok(stats)
    }
}

/// The detailed outcome of a failed plan check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckFailure {
    /// All feasibility violations found.
    pub violations: Vec<PlanViolation>,
    /// Shape or servicing failure, if any.
    pub malformed: Option<ModelError>,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(m) = &self.malformed {
            write!(f, "{m}")?;
        }
        for v in self.violations.iter().take(5) {
            write!(f, "; {v}")?;
        }
        if self.violations.len() > 5 {
            write!(f, "; … {} more violations", self.violations.len() - 5)?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coord, GridMap, ProductCatalog};

    fn small_warehouse() -> Warehouse {
        // Shelf on top, station on bottom, 3-wide corridor.
        let grid = GridMap::from_ascii(".#.\n...\n.@.").unwrap();
        let mut w = Warehouse::from_grid(&grid).unwrap();
        w.set_catalog(ProductCatalog::with_len(1));
        let access = w.graph().vertex_at(Coord::new(0, 2)).unwrap();
        w.stock(access, ProductId(0), 10).unwrap();
        w
    }

    fn v(w: &Warehouse, x: u32, y: u32) -> VertexId {
        w.graph().vertex_at(Coord::new(x, y)).unwrap()
    }

    #[test]
    fn legal_delivery_roundtrip() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 2)));
        // Pick up at (0,2), walk to station (1,0), drop.
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Product(ProductId(0)),
            },
        );
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 0, 1),
                carry: Carry::Product(ProductId(0)),
            },
        );
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 1, 1),
                carry: Carry::Product(ProductId(0)),
            },
        );
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 1, 0),
                carry: Carry::Product(ProductId(0)),
            },
        );
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 1, 0),
                carry: Carry::Empty,
            },
        );
        let stats = checker.check(&plan).unwrap();
        assert_eq!(stats.delivered, vec![1]);
        assert_eq!(stats.moves, 3);
        assert_eq!(stats.waits, 2);
        assert_eq!(stats.last_delivery, Some(5));

        let workload = Workload::from_demands(vec![1]);
        assert!(checker.check_services(&plan, &workload).is_ok());
        let too_much = Workload::from_demands(vec![2]);
        assert!(checker.check_services(&plan, &too_much).is_err());
    }

    #[test]
    fn scratch_reuse_matches_fresh_checks() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut scratch = CheckScratch::new();
        // A legal plan, a colliding plan, then the legal plan again — the
        // reused scratch must never leak state between checks.
        let mut legal = Plan::new();
        let a = legal.add_agent(AgentState::idle(v(&w, 0, 0)));
        legal.push_state(a, AgentState::idle(v(&w, 0, 1)));
        let mut colliding = Plan::new();
        colliding.add_agent(AgentState::idle(v(&w, 0, 0)));
        colliding.add_agent(AgentState::idle(v(&w, 0, 0)));

        let fresh = checker.check(&legal).unwrap();
        assert_eq!(
            checker.check_with_scratch(&legal, &mut scratch).unwrap(),
            fresh
        );
        assert!(checker
            .check_with_scratch(&colliding, &mut scratch)
            .is_err());
        assert_eq!(
            checker.check_with_scratch(&legal, &mut scratch).unwrap(),
            fresh
        );

        // The same scratch serves a checker bound to a different warehouse.
        let grid = GridMap::from_ascii("#...\n..@.").unwrap();
        let w2 = Warehouse::from_grid(&grid).unwrap();
        let checker2 = PlanChecker::new(&w2);
        let mut p2 = Plan::new();
        let b = p2.add_agent(AgentState::idle(v(&w2, 0, 0)));
        p2.push_state(b, AgentState::idle(v(&w2, 1, 0)));
        let s2 = checker2.check_with_scratch(&p2, &mut scratch).unwrap();
        assert_eq!(s2.moves, 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "undrained touched lists"))]
    fn dirty_scratch_fails_loudly_in_debug() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut scratch = CheckScratch::new();
        // Simulate a mark leaked by a panicked-over check: the dense entry
        // is stale but its touched list was never drained.
        scratch.occupied.resize(4, crate::NO_INDEX);
        scratch.occupied[2] = 0;
        scratch.occupied_cells.push(2);
        let mut plan = Plan::new();
        plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        // Debug builds panic on entry; release builds drain defensively
        // and the check proceeds normally.
        let result = checker.check_with_scratch(&plan, &mut scratch);
        assert!(result.is_ok());
    }

    #[test]
    fn teleport_is_illegal() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        plan.push_state(a, AgentState::idle(v(&w, 2, 2)));
        let err = checker.check(&plan).unwrap_err();
        assert!(matches!(
            err.violations[0],
            PlanViolation::IllegalMove { .. }
        ));
    }

    #[test]
    fn vertex_collision_detected() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        let err = checker.check(&plan).unwrap_err();
        assert!(matches!(
            err.violations[0],
            PlanViolation::VertexCollision { .. }
        ));
    }

    #[test]
    fn edge_swap_detected() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        let b = plan.add_agent(AgentState::idle(v(&w, 1, 0)));
        plan.push_state(a, AgentState::idle(v(&w, 1, 0)));
        plan.push_state(b, AgentState::idle(v(&w, 0, 0)));
        let err = checker.check(&plan).unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::EdgeCollision { .. })));
    }

    #[test]
    fn edge_swap_found_behind_a_double_departure() {
        // Agents 0 and 1 both stand on (0,0) (a vertex collision) and
        // depart to different cells; agent 2 swaps with agent 0. The dense
        // departure table keeps one slot per vertex — the overflow list
        // must still surface the swap.
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        let b = plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        let c = plan.add_agent(AgentState::idle(v(&w, 1, 0)));
        plan.push_state(a, AgentState::idle(v(&w, 1, 0)));
        plan.push_state(b, AgentState::idle(v(&w, 0, 1)));
        plan.push_state(c, AgentState::idle(v(&w, 0, 0)));
        let err = checker.check(&plan).unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::EdgeCollision { a: 0, b: 2, .. })));
        // Swap order (1 before 0 in the table) must also be caught: here
        // agent 0's slot lands in overflow instead.
        let mut plan2 = Plan::new();
        let d = plan2.add_agent(AgentState::idle(v(&w, 0, 0)));
        let e = plan2.add_agent(AgentState::idle(v(&w, 0, 0)));
        let f = plan2.add_agent(AgentState::idle(v(&w, 0, 1)));
        plan2.push_state(d, AgentState::idle(v(&w, 1, 0)));
        plan2.push_state(e, AgentState::idle(v(&w, 0, 1)));
        plan2.push_state(f, AgentState::idle(v(&w, 0, 0)));
        let err2 = checker.check(&plan2).unwrap_err();
        assert!(err2
            .violations
            .iter()
            .any(|v| matches!(v, PlanViolation::EdgeCollision { a: 1, b: 2, .. })));
    }

    #[test]
    fn out_of_range_vertex_reported_not_panicking() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        plan.add_agent(AgentState::idle(VertexId(9_999)));
        let err = checker.check(&plan).unwrap_err();
        assert!(matches!(
            err.violations[0],
            PlanViolation::UnknownVertex { agent: 0, .. }
        ));
    }

    #[test]
    fn pickup_away_from_shelf_is_illegal() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 1, 1)));
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 1, 1),
                carry: Carry::Product(ProductId(0)),
            },
        );
        let err = checker.check(&plan).unwrap_err();
        assert!(matches!(
            err.violations[0],
            PlanViolation::IllegalHandling { .. }
        ));
    }

    #[test]
    fn dropoff_away_from_station_is_illegal() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 2)));
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Product(ProductId(0)),
            },
        );
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Empty,
            },
        );
        let err = checker.check(&plan).unwrap_err();
        assert!(matches!(
            err.violations[0],
            PlanViolation::IllegalHandling { .. }
        ));
    }

    #[test]
    fn product_mutation_is_illegal() {
        let w = {
            let grid = GridMap::from_ascii(".#.\n...\n.@.").unwrap();
            let mut w = Warehouse::from_grid(&grid).unwrap();
            w.set_catalog(ProductCatalog::with_len(2));
            let access = w.graph().vertex_at(Coord::new(0, 2)).unwrap();
            w.stock(access, ProductId(0), 1).unwrap();
            w.stock(access, ProductId(1), 1).unwrap();
            w
        };
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 2)));
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Product(ProductId(0)),
            },
        );
        plan.push_state(
            a,
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Product(ProductId(1)),
            },
        );
        let err = checker.check(&plan).unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|vi| matches!(vi, PlanViolation::IllegalHandling { .. })));
    }

    #[test]
    fn inventory_overdraw_detected() {
        let w = {
            let grid = GridMap::from_ascii(".#.\n...\n.@.").unwrap();
            let mut w = Warehouse::from_grid(&grid).unwrap();
            w.set_catalog(ProductCatalog::with_len(1));
            let access = w.graph().vertex_at(Coord::new(0, 2)).unwrap();
            w.stock(access, ProductId(0), 1).unwrap();
            w
        };
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 2)));
        // Pick, drop at station, come back, pick again: 2 picks > 1 stocked.
        let station = v(&w, 1, 0);
        let path = [
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Product(ProductId(0)),
            },
            AgentState {
                at: v(&w, 0, 1),
                carry: Carry::Product(ProductId(0)),
            },
            AgentState {
                at: v(&w, 1, 1),
                carry: Carry::Product(ProductId(0)),
            },
            AgentState {
                at: station,
                carry: Carry::Product(ProductId(0)),
            },
            AgentState {
                at: station,
                carry: Carry::Empty,
            },
            AgentState {
                at: v(&w, 1, 1),
                carry: Carry::Empty,
            },
            AgentState {
                at: v(&w, 0, 1),
                carry: Carry::Empty,
            },
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Empty,
            },
            AgentState {
                at: v(&w, 0, 2),
                carry: Carry::Product(ProductId(0)),
            },
        ];
        for s in path {
            plan.push_state(a, s);
        }
        let err = checker.check(&plan).unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|vi| matches!(vi, PlanViolation::InventoryExceeded { .. })));
    }

    #[test]
    fn ragged_plan_rejected() {
        let w = small_warehouse();
        let checker = PlanChecker::new(&w);
        let mut plan = Plan::new();
        let a = plan.add_agent(AgentState::idle(v(&w, 0, 0)));
        plan.add_agent(AgentState::idle(v(&w, 2, 0)));
        plan.push_state(a, AgentState::idle(v(&w, 0, 0)));
        let err = checker.check(&plan).unwrap_err();
        assert!(err.malformed.is_some());
    }
}
