//! Property test: the CSR adjacency of [`FloorplanGraph`] is set-equal to
//! a naive grid-adjacency oracle on random grids, and the dense coordinate
//! lookup agrees with a linear scan.

use std::collections::{HashMap, HashSet};

use wsp_model::{CellKind, Coord, FloorplanGraph, GridMap};

/// Deterministic SplitMix64 so failures reproduce from the case index.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_grid(rng: &mut Rng) -> GridMap {
    let width = 1 + rng.below(12) as u32;
    let height = 1 + rng.below(12) as u32;
    let mut grid = GridMap::new(width, height).unwrap();
    for y in 0..height {
        for x in 0..width {
            let kind = match rng.below(10) {
                0..=5 => CellKind::Empty,
                6 | 7 => CellKind::Shelf,
                8 => CellKind::Obstacle,
                _ => CellKind::Station,
            };
            grid.set(Coord::new(x, y), kind).unwrap();
        }
    }
    grid
}

/// The obvious O(cells) oracle: hash-map coord lookup, neighbour sets from
/// `Coord::neighbors` filtered by traversability.
fn oracle_adjacency(grid: &GridMap) -> (HashMap<Coord, u32>, Vec<HashSet<Coord>>) {
    let mut by_coord = HashMap::new();
    let mut coords = Vec::new();
    for (at, kind) in grid.iter() {
        if kind.is_traversable() {
            by_coord.insert(at, coords.len() as u32);
            coords.push(at);
        }
    }
    let adjacency = coords
        .iter()
        .map(|&at| {
            at.neighbors()
                .filter(|n| by_coord.contains_key(n))
                .collect()
        })
        .collect();
    (by_coord, adjacency)
}

#[test]
fn csr_neighbors_match_oracle_on_random_grids() {
    let mut rng = Rng(0xc0ffee);
    for case in 0..300 {
        let grid = random_grid(&mut rng);
        let graph = FloorplanGraph::from_grid(&grid);
        let (by_coord, oracle) = oracle_adjacency(&grid);

        assert_eq!(graph.vertex_count(), by_coord.len(), "case {case}");
        for v in graph.vertices() {
            let at = graph.coord(v);
            // Dense lookup agrees both ways.
            assert_eq!(graph.vertex_at(at), Some(v), "case {case}: lookup {at}");
            let expected = &oracle[by_coord[&at] as usize];
            let got: HashSet<Coord> = graph.neighbors(v).iter().map(|&n| graph.coord(n)).collect();
            assert_eq!(&got, expected, "case {case}: neighbours of {at}");
            // CSR rows are sorted and duplicate-free.
            assert!(
                graph.neighbors(v).windows(2).all(|w| w[0] < w[1]),
                "case {case}: row of {at} unsorted"
            );
        }
        // Non-vertices report None.
        for (at, kind) in grid.iter() {
            if !kind.is_traversable() {
                assert_eq!(graph.vertex_at(at), None, "case {case}: phantom at {at}");
            }
        }
        // Edge count is half the (symmetric) adjacency mass.
        let mass: usize = oracle.iter().map(HashSet::len).sum();
        assert_eq!(graph.edge_count(), mass / 2, "case {case}");
    }
}
