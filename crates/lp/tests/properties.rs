//! Property-based tests for the LP/ILP substrate: field axioms for
//! `Rational`, agreement between the `f64` sparse revised simplex and the
//! exact `Rational` dense-tableau oracle (including on flow-shaped
//! programs with sparse conservation-style rows), warm-started vs
//! cold-started branch-and-bound equivalence, and branch-and-bound
//! cross-checked against brute force.

use proptest::prelude::*;
use wsp_lp::{
    solve_ilp, solve_lp, solve_lp_with_scratch, BoundOverrides, IlpOptions, IlpOutcome, LinExpr,
    LpOutcome, LpScratch, Problem, Rational, Relation, SimplexOptions, VarId,
};

fn small_rational() -> impl Strategy<Value = Rational> {
    (-50i128..=50, 1i128..=10).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn rational_add_commutes(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_mul_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_add_associates(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_sub_is_add_neg(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn rational_recip_inverts(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rational::ONE);
    }

    #[test]
    fn rational_floor_ceil_sandwich(a in small_rational()) {
        let f = Rational::from(a.floor());
        let c = Rational::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!((c - f) <= Rational::ONE);
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in small_rational(), b in small_rational()) {
        // Small rationals convert exactly enough for strict comparisons.
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }
}

/// A random small LP: maximize a non-negative objective over `<=`
/// constraints with non-negative coefficients — always feasible (origin)
/// and always bounded (every variable capped).
fn random_bounded_lp() -> impl Strategy<Value = Problem> {
    let dims = (1usize..=4, 1usize..=4);
    dims.prop_flat_map(|(nv, nc)| {
        let coeffs = proptest::collection::vec(0i128..=5, nv * nc);
        let rhs = proptest::collection::vec(1i128..=20, nc);
        let obj = proptest::collection::vec(0i128..=5, nv);
        let caps = proptest::collection::vec(1i128..=10, nv);
        (Just(nv), Just(nc), coeffs, rhs, obj, caps).prop_map(|(nv, nc, coeffs, rhs, obj, caps)| {
            let mut p = Problem::new();
            let vars: Vec<VarId> = (0..nv).map(|i| p.add_var(format!("x{i}"))).collect();
            for (i, &v) in vars.iter().enumerate() {
                p.set_upper(v, Rational::from(caps[i]));
            }
            for c in 0..nc {
                let mut e = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    e.add_term(v, Rational::from(coeffs[c * nv + i]));
                }
                p.add_constraint(e, Relation::Le, Rational::from(rhs[c]), format!("c{c}"));
            }
            let mut o = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                o.add_term(v, Rational::from(obj[i]));
            }
            p.maximize(o);
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f64_and_exact_simplex_agree(p in random_bounded_lp()) {
        let opts = SimplexOptions::default();
        let fast = solve_lp::<f64>(&p, &BoundOverrides::none(), &opts).unwrap();
        let exact = solve_lp::<Rational>(&p, &BoundOverrides::none(), &opts).unwrap();
        match (fast, exact) {
            (LpOutcome::Optimal(f), LpOutcome::Optimal(e)) => {
                prop_assert!((f.objective - e.objective.to_f64()).abs() < 1e-6,
                    "fast {} vs exact {}", f.objective, e.objective);
            }
            (a, b) => prop_assert!(false, "status mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn exact_lp_solution_is_exactly_feasible(p in random_bounded_lp()) {
        let opts = SimplexOptions::default();
        if let LpOutcome::Optimal(sol) =
            solve_lp::<Rational>(&p, &BoundOverrides::none(), &opts).unwrap()
        {
            prop_assert!(p.violations(&sol.values).is_empty(),
                "exact solution violates: {:?}", p.violations(&sol.values));
        }
    }
}

/// A random *flow-shaped* LP: sparse rows with at most 4 nonzeros and
/// mixed signs (the shape of loaded/unloaded conservation rows), a mix of
/// `=`/`≤`/`≥` relations, small integer data, scattered upper bounds, and
/// a non-negative minimization objective (always bounded; feasibility is
/// whatever the rows say — both solvers must agree on the verdict, which
/// small integer data keeps far from the tolerance boundary).
fn random_flow_shaped_lp() -> impl Strategy<Value = Problem> {
    let dims = (2usize..=8, 1usize..=8);
    dims.prop_flat_map(|(nv, nc)| {
        let row_vars = proptest::collection::vec(
            proptest::collection::vec(0usize..nv, 1..=4usize.min(nv)),
            nc,
        );
        // Nonzero coefficients in {-3..-1, 1..3}, encoded as 0..=5.
        let row_coeffs = proptest::collection::vec(proptest::collection::vec(0i128..=5, 4), nc);
        let relations = proptest::collection::vec(0u8..3u8, nc);
        let rhs = proptest::collection::vec(-6i128..=6, nc);
        // Optional upper bounds, encoded with -1 = none.
        let uppers = proptest::collection::vec(-1i128..=8, nv);
        let obj = proptest::collection::vec(0i128..=5, nv);
        (row_vars, row_coeffs, relations, rhs, uppers, obj).prop_map(
            move |(row_vars, row_coeffs, relations, rhs, uppers, obj)| {
                let mut p = Problem::new();
                let vars: Vec<VarId> = (0..nv).map(|i| p.add_var(format!("x{i}"))).collect();
                for (i, &u) in uppers.iter().enumerate() {
                    if u >= 0 {
                        p.set_upper(vars[i], Rational::from(u));
                    }
                }
                for c in 0..row_vars.len() {
                    let mut e = LinExpr::new();
                    for (k, &vi) in row_vars[c].iter().enumerate() {
                        let enc = row_coeffs[c][k];
                        let coeff = if enc < 3 { enc - 3 } else { enc - 2 };
                        e.add_term(vars[vi], Rational::from(coeff));
                    }
                    if e.is_zero() {
                        continue;
                    }
                    let rel = match relations[c] {
                        0 => Relation::Le,
                        1 => Relation::Ge,
                        _ => Relation::Eq,
                    };
                    p.add_constraint(e, rel, Rational::from(rhs[c]), format!("c{c}"));
                }
                let mut o = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    o.add_term(v, Rational::from(obj[i]));
                }
                p.minimize(o);
                p
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The sparse `f64` revised simplex agrees with the exact `Rational`
    /// oracle on flow-shaped programs: same feasibility verdict, and on
    /// optimal instances the same objective within tolerance, with the
    /// `f64` point feasible under the exact constraint check.
    #[test]
    fn sparse_f64_matches_rational_oracle_on_flow_shapes(p in random_flow_shaped_lp()) {
        let opts = SimplexOptions::default();
        let fast = solve_lp::<f64>(&p, &BoundOverrides::none(), &opts).unwrap();
        let exact = solve_lp::<Rational>(&p, &BoundOverrides::none(), &opts).unwrap();
        match (fast, exact) {
            (LpOutcome::Optimal(f), LpOutcome::Optimal(e)) => {
                prop_assert!(
                    (f.objective - e.objective.to_f64()).abs() < 1e-6,
                    "fast {} vs exact {}", f.objective, e.objective
                );
            }
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (a, b) => prop_assert!(false, "status mismatch: {a:?} vs {b:?}"),
        }
    }

    /// Scratch reuse across a sequence of different problems never
    /// changes any solve's outcome (the warm state is fingerprint-gated).
    #[test]
    fn scratch_reuse_is_pure(problems in proptest::collection::vec(random_flow_shaped_lp(), 1..4)) {
        let opts = SimplexOptions::default();
        let mut scratch = LpScratch::new();
        for p in &problems {
            // Twice through the shared scratch (second solve takes the
            // fingerprint warm path), once through a fresh one.
            let a = solve_lp_with_scratch::<f64>(p, &BoundOverrides::none(), &opts, &mut scratch)
                .unwrap();
            let b = solve_lp_with_scratch::<f64>(p, &BoundOverrides::none(), &opts, &mut scratch)
                .unwrap();
            let fresh = solve_lp::<f64>(p, &BoundOverrides::none(), &opts).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &fresh);
        }
    }
}

/// Brute force a pure-integer maximization by enumerating the box of upper
/// bounds.
fn brute_force_max(p: &Problem) -> Option<Rational> {
    let caps: Vec<i128> = p
        .vars()
        .iter()
        .map(|v| v.upper.expect("bounded").floor())
        .collect();
    let n = caps.len();
    let mut best: Option<Rational> = None;
    let mut point = vec![0i128; n];
    loop {
        let values: Vec<Rational> = point.iter().map(|&x| Rational::from(x)).collect();
        if p.violations(&values).is_empty() {
            let obj = p.objective().eval(&values);
            if best.is_none_or(|b| obj > b) {
                best = Some(obj);
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            point[i] += 1;
            if point[i] <= caps[i] {
                break;
            }
            point[i] = 0;
            i += 1;
        }
    }
}

fn random_small_ilp() -> impl Strategy<Value = Problem> {
    let dims = (1usize..=3, 1usize..=3);
    dims.prop_flat_map(|(nv, nc)| {
        let coeffs = proptest::collection::vec(0i128..=4, nv * nc);
        let rhs = proptest::collection::vec(1i128..=12, nc);
        let obj = proptest::collection::vec(0i128..=5, nv);
        (Just(nv), Just(nc), coeffs, rhs, obj).prop_map(|(nv, nc, coeffs, rhs, obj)| {
            let mut p = Problem::new();
            let vars: Vec<VarId> = (0..nv).map(|i| p.add_int_var(format!("x{i}"))).collect();
            for &v in &vars {
                p.set_upper(v, Rational::from(4));
            }
            for c in 0..nc {
                let mut e = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    e.add_term(v, Rational::from(coeffs[c * nv + i]));
                }
                p.add_constraint(e, Relation::Le, Rational::from(rhs[c]), format!("c{c}"));
            }
            let mut o = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                o.add_term(v, Rational::from(obj[i]));
            }
            p.maximize(o);
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn branch_and_bound_matches_brute_force(p in random_small_ilp()) {
        let expected = brute_force_max(&p).expect("origin always feasible");
        match solve_ilp(&p, &IlpOptions::default()).unwrap() {
            IlpOutcome::Optimal(sol) => {
                prop_assert_eq!(sol.objective, expected);
                prop_assert!(p.violations(&sol.values).is_empty());
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn exact_and_fast_ilp_agree(p in random_small_ilp()) {
        let fast = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let exact = solve_ilp(&p, &IlpOptions { exact_lp: true, ..IlpOptions::default() }).unwrap();
        let f = fast.solution().expect("feasible").objective;
        let e = exact.solution().expect("feasible").objective;
        prop_assert_eq!(f, e);
    }

    /// Warm-started branch-and-bound (children reuse the parent's basis
    /// via the dual simplex) reaches exactly the same optimal objective
    /// as cold-started branch-and-bound.
    #[test]
    fn warm_and_cold_branch_and_bound_agree(p in random_small_ilp()) {
        let warm = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let cold = solve_ilp(
            &p,
            &IlpOptions { warm_start: false, ..IlpOptions::default() },
        )
        .unwrap();
        let w = warm.solution().expect("feasible").objective;
        let c = cold.solution().expect("feasible").objective;
        prop_assert_eq!(w, c);
    }
}
