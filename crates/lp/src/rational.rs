//! Exact rational arithmetic over `i128`.
//!
//! The flow-synthesis constraint systems have small integer data, so an
//! `i128` numerator/denominator pair with aggressive GCD reduction is enough
//! for an exact simplex on the instance sizes where exactness is requested.
//! Overflow is detected and reported by panicking with a clear message (the
//! fast `f64` path plus exact *verification* of integer candidates is the
//! default pipeline; see the crate docs).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0`, always reduced.
///
/// # Examples
///
/// ```
/// use wsp_lp::Rational;
///
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// assert_eq!((a / b), Rational::from(2));
/// assert!(a > b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128, // invariant: den > 0, gcd(num, den) == 1
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational 0.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates the reduced rational `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rational::ZERO;
        }
        Rational {
            num: sign * num / g,
            den: (den / g).abs(),
        }
    }

    /// The numerator (sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether this is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether this is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// The largest integer `≤ self`.
    ///
    /// ```
    /// use wsp_lp::Rational;
    /// assert_eq!(Rational::new(-3, 2).floor(), -2);
    /// assert_eq!(Rational::new(3, 2).floor(), 1);
    /// ```
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer `≥ self`.
    pub fn ceil(self) -> i128 {
        -(-self).floor()
    }

    /// The fractional part `self - floor(self)`, in `[0, 1)`.
    pub fn fract(self) -> Rational {
        self - Rational::from(self.floor())
    }

    /// Nearest-integer rounding (half away from zero).
    pub fn round(self) -> i128 {
        let two = Rational::from(2);
        if self.is_negative() {
            -(-self).round()
        } else {
            (self * two + Rational::ONE).floor() / 2
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// The reciprocal `1 / self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked(num: Option<i128>, den: Option<i128>, op: &str) -> Rational {
        match (num, den) {
            (Some(n), Some(d)) => Rational::new(n, d),
            _ => panic!("rational overflow in {op}"),
        }
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<u64> for Rational {
    fn from(v: u64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Reduce cross terms first to delay overflow.
        let g = gcd(self.den, rhs.den);
        let lden = self.den / g;
        let rden = rhs.den / g;
        let num = self
            .num
            .checked_mul(rden)
            .and_then(|a| rhs.num.checked_mul(lden).and_then(|b| a.checked_add(b)));
        let den = self.den.checked_mul(rden);
        Rational::checked(num, den, "addition")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        Rational::checked(num, den, "multiplication")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a / b == a * b^-1 by definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d via ad vs cb (b, d > 0). Use checked math and
        // fall back to f64 only on overflow (astronomically unlikely with
        // reduced fractions from our problem data).
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .expect("finite rationals"),
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(3, 4);
        let b = Rational::new(1, 4);
        assert_eq!(a + b, Rational::ONE);
        assert_eq!(a - b, Rational::new(1, 2));
        assert_eq!(a * b, Rational::new(3, 16));
        assert_eq!(a / b, Rational::from(3));
        assert_eq!(-a, Rational::new(-3, 4));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(
            Rational::new(2, 6).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(7, 2).round(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(5, 1).floor(), 5);
        assert_eq!(Rational::new(1, 3).fract(), Rational::new(1, 3));
        assert_eq!(Rational::new(-1, 3).fract(), Rational::new(2, 3));
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
        assert_eq!(Rational::new(-2, 3).abs(), Rational::new(2, 3));
    }

    #[test]
    fn sum_iterator() {
        let total: Rational = (1..=4).map(|i| Rational::new(1, i)).sum();
        assert_eq!(total, Rational::new(25, 12));
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 2).to_string(), "3/2");
        assert_eq!(Rational::from(5).to_string(), "5");
    }
}
