//! Exact-rational LP/ILP solving: the constraint engine behind agent-flow
//! synthesis.
//!
//! The paper discharges its contract conjunction with the Z3 SMT solver. The
//! generated formula is a pure conjunction of linear constraints over
//! non-negative integers, so an ILP solver is a faithful decision procedure
//! for the same formula class. This crate provides one, built from scratch:
//!
//! * [`Rational`] — exact `i128`-backed rational arithmetic;
//! * [`Problem`] / [`LinExpr`] / [`Constraint`] — model building;
//! * [`solve_lp`] — a two-phase dense simplex, generic over the scalar
//!   ([`f64`] fast path, [`Rational`] exact path);
//! * [`solve_ilp`] — branch-and-bound with exact verification of every
//!   integer candidate, so the fast path can never return an invalid model.
//!
//! # Examples
//!
//! ```
//! use wsp_lp::{solve_ilp, IlpOptions, IlpOutcome, LinExpr, Problem, Rational, Relation};
//!
//! // min x + y  s.t.  x + y >= 3, x,y integer.
//! let mut p = Problem::new();
//! let x = p.add_int_var("x");
//! let y = p.add_int_var("y");
//! let mut c = LinExpr::new();
//! c.add_term(x, Rational::ONE).add_term(y, Rational::ONE);
//! p.add_constraint(c.clone(), Relation::Ge, Rational::from(3), "demand");
//! p.minimize(c);
//! let outcome = solve_ilp(&p, &IlpOptions::default())?;
//! assert!(matches!(outcome, IlpOutcome::Optimal(s) if s.objective == Rational::from(3)));
//! # Ok::<(), wsp_lp::IlpError>(())
//! ```

#![warn(missing_docs)]

mod ilp;
mod problem;
mod rational;
mod scalar;
mod simplex;

pub use ilp::{solve_ilp, IlpError, IlpOptions, IlpOutcome, IlpSolution};
pub use problem::{Constraint, LinExpr, Problem, Relation, Sense, VarId, VarInfo};
pub use rational::Rational;
pub use scalar::{Scalar, F64_TOL};
pub use simplex::{solve_lp, BoundOverrides, LpError, LpOutcome, LpSolution, SimplexOptions};
