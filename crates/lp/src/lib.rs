//! Exact-rational LP/ILP solving: the constraint engine behind agent-flow
//! synthesis.
//!
//! The paper discharges its contract conjunction with the Z3 SMT solver. The
//! generated formula is a pure conjunction of linear constraints over
//! non-negative integers, so an ILP solver is a faithful decision procedure
//! for the same formula class. This crate provides one, built from scratch:
//!
//! * [`Rational`] — exact `i128`-backed rational arithmetic;
//! * [`Problem`] / [`LinExpr`] / [`Constraint`] — model building, with a
//!   cached CSR/CSC view of the constraint matrix;
//! * [`solve_lp`] — generic over the scalar: the [`f64`] instantiation is
//!   a sparse revised simplex (factorized basis with eta-file updates,
//!   pricing over nonzeros, bounded variables), while [`Rational`] runs
//!   the exact dense tableau that serves as its cross-validation oracle;
//! * [`solve_ilp`] — branch-and-bound whose child nodes warm-start from
//!   the parent's basis via a dual-simplex cleanup, with exact
//!   verification of every integer candidate, so the fast path can never
//!   return an invalid model;
//! * [`LpScratch`] / [`IlpScratch`] — preallocated, reusable solver
//!   workspaces for back-to-back solves
//!   ([`solve_lp_with_scratch`] / [`solve_ilp_with_scratch`]).
//!
//! # Examples
//!
//! ```
//! use wsp_lp::{solve_ilp, IlpOptions, IlpOutcome, LinExpr, Problem, Rational, Relation};
//!
//! // min x + y  s.t.  x + y >= 3, x,y integer.
//! let mut p = Problem::new();
//! let x = p.add_int_var("x");
//! let y = p.add_int_var("y");
//! let mut c = LinExpr::new();
//! c.add_term(x, Rational::ONE).add_term(y, Rational::ONE);
//! p.add_constraint(c.clone(), Relation::Ge, Rational::from(3), "demand");
//! p.minimize(c);
//! let outcome = solve_ilp(&p, &IlpOptions::default())?;
//! assert!(matches!(outcome, IlpOutcome::Optimal(s) if s.objective == Rational::from(3)));
//! # Ok::<(), wsp_lp::IlpError>(())
//! ```

#![warn(missing_docs)]

mod ilp;
mod problem;
mod rational;
mod revised;
mod scalar;
mod simplex;

pub use ilp::{
    solve_ilp, solve_ilp_with_scratch, IlpError, IlpOptions, IlpOutcome, IlpScratch, IlpSolution,
};
pub use problem::{Constraint, LinExpr, Problem, Relation, Sense, VarId, VarInfo};
pub use rational::Rational;
pub use revised::LpScratch;
pub use scalar::{Scalar, DEFAULT_INTEGRALITY_TOL, F64_FEAS_TOL, F64_PIVOT_TOL, F64_TOL};
pub use simplex::{
    solve_lp, solve_lp_with_scratch, BoundOverrides, LpError, LpOutcome, LpSolution, SimplexOptions,
};
