//! The LP entry points and the two-phase dense tableau simplex.
//!
//! [`solve_lp`] is generic over the scalar field and dispatches to the
//! instantiation's solver: `f64` runs the sparse revised simplex
//! ([`crate::revised`], the fast path behind flow synthesis), while
//! [`Rational`](crate::Rational) runs the dense tableau in this module —
//! exact arithmetic on small instances, and the cross-validation oracle the
//! fast path is property-tested against. Anti-cycling in the tableau is
//! handled by switching from Dantzig to Bland's rule after a stall is
//! detected.

use crate::problem::{Problem, Relation, Sense, VarId};
use crate::revised::LpScratch;
use crate::scalar::{Scalar, F64_FEAS_TOL};
use crate::Rational;

/// Configuration for the simplex kernel.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on pivot iterations per phase.
    pub max_iterations: usize,
    /// Switch to Bland's rule after this many non-improving pivots.
    pub bland_after_stalls: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 200_000,
            bland_after_stalls: 64,
        }
    }
}

/// Additional per-variable bound tightenings layered on top of a
/// [`Problem`], used by branch-and-bound without mutating the base problem.
///
/// Storage is dense and [`VarId`]-indexed (the repo's flat-index
/// invariant): branch-and-bound touches these once per node, and the `f64`
/// solver reads every variable's bounds when standardizing, so `Vec`
/// lookups beat hashing on both sides. Vectors grow on demand — an
/// override set built before all variables exist stays valid.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundOverrides {
    lower: Vec<Option<Rational>>,
    upper: Vec<Option<Rational>>,
}

impl BoundOverrides {
    /// No overrides.
    pub fn none() -> Self {
        BoundOverrides::default()
    }

    /// The overridden lower bound of `var`, if any (the base lower bound is
    /// always 0).
    pub fn lower(&self, var: VarId) -> Option<Rational> {
        self.lower.get(var.index()).copied().flatten()
    }

    /// The overridden upper bound of `var`, if any (intersected with the
    /// base upper bound by the solvers).
    pub fn upper(&self, var: VarId) -> Option<Rational> {
        self.upper.get(var.index()).copied().flatten()
    }

    /// Tightens the lower bound of `var` to at least `bound` (keeps the
    /// larger of the existing override and `bound`).
    pub fn tighten_lower(&mut self, var: VarId, bound: Rational) {
        if self.lower.len() <= var.index() {
            self.lower.resize(var.index() + 1, None);
        }
        let slot = &mut self.lower[var.index()];
        *slot = Some(match *slot {
            Some(l) => l.max(bound),
            None => bound,
        });
    }

    /// Tightens the upper bound of `var` to at most `bound` (keeps the
    /// smaller of the existing override and `bound`).
    pub fn tighten_upper(&mut self, var: VarId, bound: Rational) {
        if self.upper.len() <= var.index() {
            self.upper.resize(var.index() + 1, None);
        }
        let slot = &mut self.upper[var.index()];
        *slot = Some(match *slot {
            Some(u) => u.min(bound),
            None => bound,
        });
    }

    /// The effective `(lower, upper)` bounds of `var`: the implicit base
    /// lower bound 0 raised by any override, and `base_upper` intersected
    /// with any override. The single source of truth every consumer
    /// shares — the sparse solver's bound arrays, the warm-start
    /// fingerprint, the ILP presolve's contradiction check, and the dense
    /// tableau's bound rows all go through here, so they can never
    /// disagree about what a bound means.
    pub fn effective(
        &self,
        var: VarId,
        base_upper: Option<Rational>,
    ) -> (Rational, Option<Rational>) {
        let lo = self
            .lower(var)
            .map_or(Rational::ZERO, |l| l.max(Rational::ZERO));
        let up = match (base_upper, self.upper(var)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        (lo, up)
    }

    /// Whether no bound is overridden.
    pub fn is_empty(&self) -> bool {
        self.lower.iter().all(Option::is_none) && self.upper.iter().all(Option::is_none)
    }
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome<S> {
    /// An optimal solution was found.
    Optimal(LpSolution<S>),
    /// The constraint system is infeasible.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution<S> {
    /// One value per problem variable, in [`VarId`] order.
    pub values: Vec<S>,
    /// Objective value in the problem's original sense.
    pub objective: S,
}

/// Errors from the simplex kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// The pivot iteration cap was reached (possible numerical cycling).
    IterationLimit {
        /// The configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} iterations")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Solves the LP relaxation of `problem` (integrality flags are ignored)
/// under the given bound overrides.
///
/// # Errors
///
/// Returns [`LpError::IterationLimit`] if the pivot cap is exceeded.
///
/// # Examples
///
/// ```
/// use wsp_lp::{solve_lp, BoundOverrides, LinExpr, LpOutcome, Problem, Rational, Relation, SimplexOptions};
///
/// // max x + y s.t. x + 2y <= 4, 3x + y <= 6  ->  opt at (1.6, 1.2) = 2.8
/// let mut p = Problem::new();
/// let x = p.add_var("x");
/// let y = p.add_var("y");
/// let mut c1 = LinExpr::new();
/// c1.add_term(x, Rational::ONE).add_term(y, Rational::from(2));
/// p.add_constraint(c1, Relation::Le, Rational::from(4), "c1");
/// let mut c2 = LinExpr::new();
/// c2.add_term(x, Rational::from(3)).add_term(y, Rational::ONE);
/// p.add_constraint(c2, Relation::Le, Rational::from(6), "c2");
/// let mut obj = LinExpr::new();
/// obj.add_term(x, Rational::ONE).add_term(y, Rational::ONE);
/// p.maximize(obj);
///
/// let out = solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default())?;
/// match out {
///     LpOutcome::Optimal(sol) => assert_eq!(sol.objective, Rational::new(14, 5)),
///     _ => panic!("expected optimal"),
/// }
/// # Ok::<(), wsp_lp::LpError>(())
/// ```
pub fn solve_lp<S: Scalar>(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &SimplexOptions,
) -> Result<LpOutcome<S>, LpError> {
    S::solve_with_scratch(problem, bounds, options, &mut LpScratch::default())
}

/// [`solve_lp`] with a caller-owned [`LpScratch`], so back-to-back `f64`
/// solves reuse the basis factors, pricing workspace, and (for repeats of
/// an identical problem) the converged basis itself. The `Rational`
/// instantiation ignores the scratch (the exact dense tableau allocates its
/// own working set).
///
/// # Errors
///
/// Returns [`LpError::IterationLimit`] if the pivot cap is exceeded.
pub fn solve_lp_with_scratch<S: Scalar>(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &SimplexOptions,
    scratch: &mut LpScratch,
) -> Result<LpOutcome<S>, LpError> {
    S::solve_with_scratch(problem, bounds, options, scratch)
}

/// The dense tableau path, kept as the exact solver for `Rational` and as
/// the numerical fallback the sparse `f64` path retreats to on breakdown.
pub(crate) fn solve_dense<S: Scalar>(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &SimplexOptions,
) -> Result<LpOutcome<S>, LpError> {
    Tableau::<S>::build(problem, bounds).solve(problem, options)
}

/// One row of the standardized system `a · x = rhs` with `rhs ≥ 0`.
struct Row<S> {
    coeffs: Vec<S>,
    rhs: S,
}

struct Tableau<S> {
    /// Constraint rows, length `m`.
    rows: Vec<Row<S>>,
    /// Index of the basic variable (column) of each row.
    basis: Vec<usize>,
    /// Number of structural variables (problem variables).
    n_struct: usize,
    /// First artificial column index; columns `>= art_start` are artificial.
    art_start: usize,
    /// Total number of columns.
    n_cols: usize,
}

impl<S: Scalar> Tableau<S> {
    /// Standardizes the problem: collects constraint rows (including bound
    /// rows), normalizes `rhs ≥ 0`, and adds slack/surplus/artificial
    /// columns with an all-basic starting basis.
    fn build(problem: &Problem, bounds: &BoundOverrides) -> Self {
        let n_struct = problem.var_count();

        // Gather (coeffs over structural vars, relation, rhs).
        let mut raw: Vec<(Vec<S>, Relation, S)> = Vec::new();
        for c in problem.constraints() {
            let mut coeffs = vec![S::zero(); n_struct];
            for (v, q) in c.expr.terms() {
                coeffs[v.index()] = S::from_rational(q);
            }
            raw.push((coeffs, c.relation, S::from_rational(c.rhs)));
        }
        // Effective bounds become rows: upper bounds always, lower
        // bounds only when they tighten past the implicit 0.
        for (i, info) in problem.vars().iter().enumerate() {
            let var = VarId(i as u32);
            let (lb, ub) = bounds.effective(var, info.upper);
            if let Some(u) = ub {
                let mut coeffs = vec![S::zero(); n_struct];
                coeffs[i] = S::one();
                raw.push((coeffs, Relation::Le, S::from_rational(u)));
            }
            if lb.is_positive() {
                let mut coeffs = vec![S::zero(); n_struct];
                coeffs[i] = S::one();
                raw.push((coeffs, Relation::Ge, S::from_rational(lb)));
            }
        }

        // Normalize rhs >= 0.
        for (coeffs, rel, rhs) in &mut raw {
            if rhs.is_neg_tol() {
                for c in coeffs.iter_mut() {
                    *c = -c.clone();
                }
                *rhs = -rhs.clone();
                *rel = match *rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }

        // Count slack and artificial columns.
        let m = raw.len();
        let n_slack = raw
            .iter()
            .filter(|(_, rel, _)| !matches!(rel, Relation::Eq))
            .count();
        let art_start = n_struct + n_slack;
        // Every Ge and Eq row needs an artificial; Le rows start basic on
        // their slack.
        let n_art = raw
            .iter()
            .filter(|(_, rel, _)| !matches!(rel, Relation::Le))
            .count();
        let n_cols = art_start + n_art;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut slack_idx = n_struct;
        let mut art_idx = art_start;
        for (coeffs, rel, rhs) in raw {
            let mut full = vec![S::zero(); n_cols];
            full[..n_struct].clone_from_slice(&coeffs);
            match rel {
                Relation::Le => {
                    full[slack_idx] = S::one();
                    basis.push(slack_idx);
                    slack_idx += 1;
                }
                Relation::Ge => {
                    full[slack_idx] = -S::one();
                    slack_idx += 1;
                    full[art_idx] = S::one();
                    basis.push(art_idx);
                    art_idx += 1;
                }
                Relation::Eq => {
                    full[art_idx] = S::one();
                    basis.push(art_idx);
                    art_idx += 1;
                }
            }
            rows.push(Row { coeffs: full, rhs });
        }

        Tableau {
            rows,
            basis,
            n_struct,
            art_start,
            n_cols,
        }
    }

    /// Runs phases 1 and 2 and extracts the solution.
    fn solve(
        mut self,
        problem: &Problem,
        options: &SimplexOptions,
    ) -> Result<LpOutcome<S>, LpError> {
        // ---- Phase 1: minimize the sum of artificials. ----
        if self.art_start < self.n_cols {
            let mut cost = vec![S::zero(); self.n_cols];
            for c in cost.iter_mut().skip(self.art_start) {
                *c = S::one();
            }
            let mut cost_rhs = S::zero();
            self.reduce_cost_row(&mut cost, &mut cost_rhs);
            let outcome = self.iterate(&mut cost, &mut cost_rhs, self.n_cols, options)?;
            debug_assert!(
                !matches!(outcome, IterateOutcome::Unbounded),
                "phase-1 objective is bounded below by zero"
            );
            // Phase-1 optimum is -cost_rhs.
            let p1 = -cost_rhs;
            if p1.is_pos_tol() {
                return Ok(LpOutcome::Infeasible);
            }
            self.drive_out_artificials();
        }

        // ---- Phase 2: minimize the (sense-normalized) objective. ----
        let flip = matches!(problem.sense(), Sense::Maximize);
        let mut cost = vec![S::zero(); self.n_cols];
        for (v, q) in problem.objective().terms() {
            let c = S::from_rational(q);
            cost[v.index()] = if flip { -c } else { c };
        }
        let mut cost_rhs = S::zero();
        self.reduce_cost_row(&mut cost, &mut cost_rhs);
        // Artificials may not re-enter the basis.
        let outcome = self.iterate(&mut cost, &mut cost_rhs, self.art_start, options)?;
        if matches!(outcome, IterateOutcome::Unbounded) {
            return Ok(LpOutcome::Unbounded);
        }

        // Extract structural values.
        let mut values = vec![S::zero(); self.n_struct];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                values[b] = self.rows[i].rhs.clone();
            }
        }
        // Minimized value is -cost_rhs; flip back for maximization.
        let minimized = -cost_rhs;
        let objective = if flip { -minimized } else { minimized };
        Ok(LpOutcome::Optimal(LpSolution { values, objective }))
    }

    /// Makes the reduced costs of basic columns zero.
    fn reduce_cost_row(&self, cost: &mut [S], cost_rhs: &mut S) {
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = cost[b].clone();
            if cb.is_zero_tol() {
                continue;
            }
            for (cj, rij) in cost.iter_mut().zip(&self.rows[i].coeffs).take(self.n_cols) {
                *cj = cj.clone() - cb.clone() * rij.clone();
            }
            *cost_rhs = cost_rhs.clone() - cb * self.rows[i].rhs.clone();
        }
    }

    /// Pivots until optimal or unbounded. `col_limit` restricts entering
    /// columns (used to ban artificials in phase 2).
    fn iterate(
        &mut self,
        cost: &mut [S],
        cost_rhs: &mut S,
        col_limit: usize,
        options: &SimplexOptions,
    ) -> Result<IterateOutcome, LpError> {
        let mut stalls = 0usize;
        for _iter in 0..options.max_iterations {
            let bland = stalls >= options.bland_after_stalls;
            // Entering column: reduced cost < 0.
            let entering = if bland {
                (0..col_limit).find(|&j| cost[j].is_neg_tol())
            } else {
                let mut best: Option<(usize, S)> = None;
                for (j, cj) in cost.iter().enumerate().take(col_limit) {
                    if cj.is_neg_tol() {
                        match &best {
                            Some((_, bc)) if *cj >= *bc => {}
                            _ => best = Some((j, cj.clone())),
                        }
                    }
                }
                best.map(|(j, _)| j)
            };
            let Some(j) = entering else {
                return Ok(IterateOutcome::Optimal);
            };

            // Ratio test.
            let mut leave: Option<(usize, S)> = None;
            for (i, row) in self.rows.iter().enumerate() {
                let aij = &row.coeffs[j];
                if aij.is_pos_tol() {
                    let ratio = row.rhs.clone() / aij.clone();
                    let better = match &leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < *lr
                                // Bland tie-break: smaller basic index leaves.
                                || (!(ratio.clone() - lr.clone()).is_pos_tol()
                                    && !(lr.clone() - ratio.clone()).is_pos_tol()
                                    && bland
                                    && self.basis[i] < self.basis[*li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((i, ratio)) = leave else {
                return Ok(IterateOutcome::Unbounded);
            };
            if !ratio.is_pos_tol() {
                stalls += 1;
            } else {
                stalls = 0;
            }
            self.pivot(i, j, cost, cost_rhs);
        }
        Err(LpError::IterationLimit {
            limit: options.max_iterations,
        })
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, pr: usize, pc: usize, cost: &mut [S], cost_rhs: &mut S) {
        let pivot_val = self.rows[pr].coeffs[pc].clone();
        let row = &mut self.rows[pr];
        for c in row.coeffs.iter_mut() {
            *c = c.clone() / pivot_val.clone();
        }
        row.rhs = row.rhs.clone() / pivot_val;

        let pivot_row_coeffs = self.rows[pr].coeffs.clone();
        let pivot_row_rhs = self.rows[pr].rhs.clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == pr {
                continue;
            }
            let factor = row.coeffs[pc].clone();
            if factor.is_zero_tol() {
                // Keep exact zeros exact for the rational instantiation.
                row.coeffs[pc] = S::zero();
                continue;
            }
            for (c, p) in row.coeffs.iter_mut().zip(pivot_row_coeffs.iter()) {
                *c = c.clone() - factor.clone() * p.clone();
            }
            row.coeffs[pc] = S::zero();
            row.rhs = row.rhs.clone() - factor * pivot_row_rhs.clone();
            if row.rhs.is_neg_tol() {
                // Numerical dust: clamp tiny negatives. Exact scalars never
                // take this (for Rational, is_neg_tol means strictly
                // negative, which would be a real pivot-selection bug
                // upstream rather than dust to sweep).
                if !S::EXACT && row.rhs.to_f64() > -F64_FEAS_TOL {
                    row.rhs = S::zero();
                }
            }
        }
        let factor = cost[pc].clone();
        if !factor.is_zero_tol() {
            for (c, p) in cost.iter_mut().zip(pivot_row_coeffs.iter()) {
                *c = c.clone() - factor.clone() * p.clone();
            }
            cost[pc] = S::zero();
            *cost_rhs = cost_rhs.clone() - factor * pivot_row_rhs;
        }
        self.basis[pr] = pc;
    }

    /// After phase 1, pivots basic artificials out of the basis (or drops
    /// redundant rows where that is impossible).
    fn drive_out_artificials(&mut self) {
        let mut i = 0;
        while i < self.rows.len() {
            if self.basis[i] >= self.art_start {
                // Find a non-artificial column with a non-zero entry.
                let pivot_col =
                    (0..self.art_start).find(|&j| !self.rows[i].coeffs[j].is_zero_tol());
                match pivot_col {
                    Some(j) => {
                        let mut dummy_cost = vec![S::zero(); self.n_cols];
                        let mut dummy_rhs = S::zero();
                        self.pivot(i, j, &mut dummy_cost, &mut dummy_rhs);
                        i += 1;
                    }
                    None => {
                        // Redundant row (all structural coefficients zero,
                        // rhs ~ 0 after a successful phase 1): drop it.
                        self.rows.swap_remove(i);
                        self.basis.swap_remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
    }
}

enum IterateOutcome {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LinExpr;

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    /// max x + y s.t. x + 2y <= 4, 3x + y <= 6.
    fn two_var_max() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut c1 = LinExpr::new();
        c1.add_term(x, r(1)).add_term(y, r(2));
        p.add_constraint(c1, Relation::Le, r(4), "c1");
        let mut c2 = LinExpr::new();
        c2.add_term(x, r(3)).add_term(y, r(1));
        p.add_constraint(c2, Relation::Le, r(6), "c2");
        let mut obj = LinExpr::new();
        obj.add_term(x, r(1)).add_term(y, r(1));
        p.maximize(obj);
        p
    }

    #[test]
    fn optimal_rational_exact() {
        let p = two_var_max();
        let out =
            solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap();
        match out {
            LpOutcome::Optimal(sol) => {
                assert_eq!(sol.objective, Rational::new(14, 5));
                assert_eq!(sol.values[0], Rational::new(8, 5));
                assert_eq!(sol.values[1], Rational::new(6, 5));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn optimal_f64_matches_exact() {
        let p = two_var_max();
        let out = solve_lp::<f64>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap();
        match out {
            LpOutcome::Optimal(sol) => {
                assert!((sol.objective - 2.8).abs() < 1e-7);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.add_constraint(LinExpr::var(x), Relation::Ge, r(5), "ge");
        p.add_constraint(LinExpr::var(x), Relation::Le, r(3), "le");
        let out =
            solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap();
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.maximize(LinExpr::var(x));
        let out =
            solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap();
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn equality_constraints_solved() {
        // min x + y s.t. x + y = 3, x - y = 1 -> (2, 1), obj 3.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut c1 = LinExpr::new();
        c1.add_term(x, r(1)).add_term(y, r(1));
        p.add_constraint(c1, Relation::Eq, r(3), "sum");
        let mut c2 = LinExpr::new();
        c2.add_term(x, r(1)).add_term(y, r(-1));
        p.add_constraint(c2, Relation::Eq, r(1), "diff");
        let mut obj = LinExpr::new();
        obj.add_term(x, r(1)).add_term(y, r(1));
        p.minimize(obj);
        match solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap()
        {
            LpOutcome::Optimal(sol) => {
                assert_eq!(sol.values, vec![r(2), r(1)]);
                assert_eq!(sol.objective, r(3));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn upper_bounds_respected() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.set_upper(x, r(7));
        p.maximize(LinExpr::var(x));
        match solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap()
        {
            LpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(7)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn bound_overrides_tighten() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.set_upper(x, r(7));
        p.maximize(LinExpr::var(x));
        let mut b = BoundOverrides::none();
        b.tighten_upper(x, r(2));
        match solve_lp::<Rational>(&p, &b, &SimplexOptions::default()).unwrap() {
            LpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(2)),
            other => panic!("expected optimal, got {other:?}"),
        }
        // Lower-bound override forces x >= 3 in a minimization.
        let mut p2 = Problem::new();
        let x2 = p2.add_var("x");
        p2.minimize(LinExpr::var(x2));
        let mut b2 = BoundOverrides::none();
        b2.tighten_lower(x2, r(3));
        match solve_lp::<Rational>(&p2, &b2, &SimplexOptions::default()).unwrap() {
            LpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(3)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_overrides_are_infeasible() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.minimize(LinExpr::var(x));
        let mut b = BoundOverrides::none();
        b.tighten_lower(x, r(5));
        b.tighten_upper(x, r(4));
        let out = solve_lp::<Rational>(&p, &b, &SimplexOptions::default()).unwrap();
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex: several redundant constraints at origin.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        for k in 1..=4i128 {
            let mut c = LinExpr::new();
            c.add_term(x, r(k)).add_term(y, r(1));
            p.add_constraint(c, Relation::Le, r(0), format!("deg{k}"));
        }
        let mut obj = LinExpr::new();
        obj.add_term(x, r(1)).add_term(y, r(1));
        p.maximize(obj);
        // x = y = 0 is the only feasible point (x, y >= 0 and x*k + y <= 0).
        match solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap()
        {
            LpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(0)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_row_normalized() {
        // -x <= -2  is  x >= 2.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let mut c = LinExpr::new();
        c.add_term(x, r(-1));
        p.add_constraint(c, Relation::Le, r(-2), "negrhs");
        p.minimize(LinExpr::var(x));
        match solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap()
        {
            LpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(2)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = Problem::new();
        match solve_lp::<Rational>(&p, &BoundOverrides::none(), &SimplexOptions::default()).unwrap()
        {
            LpOutcome::Optimal(sol) => {
                assert!(sol.values.is_empty());
                assert_eq!(sol.objective, r(0));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
