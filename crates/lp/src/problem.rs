//! Linear/integer programs: variables, expressions, constraints, problems.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

use crate::Rational;

/// Index of a decision variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A sparse linear expression `Σ c_i · x_i`.
///
/// # Examples
///
/// ```
/// use wsp_lp::{LinExpr, Rational, VarId};
///
/// let mut e = LinExpr::new();
/// e.add_term(VarId(0), Rational::from(2));
/// e.add_term(VarId(1), Rational::ONE);
/// e.add_term(VarId(0), Rational::from(-2)); // cancels x0
/// assert_eq!(e.terms().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<VarId, Rational>,
}

impl LinExpr {
    /// The empty (zero) expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// An expression with a single `1 · var` term.
    pub fn var(var: VarId) -> Self {
        let mut e = LinExpr::new();
        e.add_term(var, Rational::ONE);
        e
    }

    /// Adds `coeff · var`, merging (and removing cancelled) terms.
    pub fn add_term(&mut self, var: VarId, coeff: Rational) -> &mut Self {
        if coeff.is_zero() {
            return self;
        }
        let entry = self.terms.entry(var).or_insert(Rational::ZERO);
        *entry += coeff;
        if entry.is_zero() {
            self.terms.remove(&var);
        }
        self
    }

    /// The coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: VarId) -> Rational {
        self.terms.get(&var).copied().unwrap_or(Rational::ZERO)
    }

    /// Iterates over `(variable, coefficient)` terms with non-zero
    /// coefficients, in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, Rational)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Whether the expression has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression exactly at a rational point.
    pub fn eval(&self, values: &[Rational]) -> Rational {
        self.terms()
            .map(|(v, c)| c * values.get(v.index()).copied().unwrap_or(Rational::ZERO))
            .sum()
    }

    /// Evaluates the expression at an `f64` point.
    pub fn eval_f64(&self, values: &[f64]) -> f64 {
        self.terms()
            .map(|(v, c)| c.to_f64() * values.get(v.index()).copied().unwrap_or(0.0))
            .sum()
    }
}

impl FromIterator<(VarId, Rational)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, Rational)>>(iter: I) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e
    }
}

/// The relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// A linear constraint `expr ⋈ rhs` with an optional provenance label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// The relation `⋈`.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: Rational,
    /// Human-readable provenance (e.g. which contract produced it).
    pub label: String,
}

impl Constraint {
    /// Creates a labelled constraint.
    pub fn new(expr: LinExpr, relation: Relation, rhs: Rational, label: impl Into<String>) -> Self {
        Constraint {
            expr,
            relation,
            rhs,
            label: label.into(),
        }
    }

    /// Whether the constraint holds exactly at a rational point.
    pub fn is_satisfied(&self, values: &[Rational]) -> bool {
        let lhs = self.expr.eval(values);
        match self.relation {
            Relation::Le => lhs <= self.rhs,
            Relation::Ge => lhs >= self.rhs,
            Relation::Eq => lhs == self.rhs,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.expr.terms() {
            if first {
                write!(f, "{c}·{v}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}·{v}", -c)?;
            } else {
                write!(f, " + {c}·{v}")?;
            }
        }
        if first {
            f.write_str("0")?;
        }
        write!(f, " {} {}", self.relation, self.rhs)
    }
}

/// The optimization sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Metadata of one decision variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Diagnostic name.
    pub name: String,
    /// Upper bound, if any. All variables have an implicit lower bound of 0
    /// (the flow-synthesis formulation is naturally non-negative).
    pub upper: Option<Rational>,
    /// Whether the variable is integer-constrained (for the ILP solver).
    pub integer: bool,
}

/// A linear (or, with integer variables, mixed-integer) program.
///
/// All variables are non-negative. Minimization is the default sense.
///
/// # Examples
///
/// ```
/// use wsp_lp::{LinExpr, Problem, Rational, Relation};
///
/// // max x + y  s.t.  x + 2y <= 4, x <= 3
/// let mut p = Problem::new();
/// let x = p.add_var("x");
/// let y = p.add_var("y");
/// p.set_upper(x, Rational::from(3));
/// let mut lhs = LinExpr::new();
/// lhs.add_term(x, Rational::ONE).add_term(y, Rational::from(2));
/// p.add_constraint(lhs, Relation::Le, Rational::from(4), "cap");
/// let mut obj = LinExpr::new();
/// obj.add_term(x, Rational::ONE).add_term(y, Rational::ONE);
/// p.maximize(obj);
/// assert_eq!(p.var_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Problem {
    vars: Vec<VarInfo>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
    sense: Sense,
    /// Lazily built sparse (CSR + CSC) view of the constraint matrix,
    /// shared by every `f64` solve of this problem (branch-and-bound hits
    /// it once per node). Invalidated by every mutating method.
    sparse: OnceLock<SparseView>,
}

impl Clone for Problem {
    fn clone(&self) -> Self {
        Problem {
            vars: self.vars.clone(),
            constraints: self.constraints.clone(),
            objective: self.objective.clone(),
            sense: self.sense,
            // The clone is usually cloned *to be mutated*; rebuild lazily.
            sparse: OnceLock::new(),
        }
    }
}

/// Compressed-sparse row/column view of a [`Problem`]'s constraint matrix
/// over the structural variables, with `f64` coefficient values — the
/// storage the sparse revised simplex prices and factorizes over.
///
/// Rows appear in constraint order; within a row, columns are ascending
/// (inherited from [`LinExpr`]'s ordered terms). The CSC half mirrors the
/// same nonzeros column-major for FTRAN column extraction.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseView {
    /// CSR row offsets, `constraint_count() + 1` entries.
    pub row_off: Vec<u32>,
    /// Column (variable) index of each CSR nonzero.
    pub row_col: Vec<u32>,
    /// Value of each CSR nonzero.
    pub row_val: Vec<f64>,
    /// CSC column offsets, `var_count() + 1` entries.
    pub col_off: Vec<u32>,
    /// Row (constraint) index of each CSC nonzero.
    pub col_row: Vec<u32>,
    /// Value of each CSC nonzero.
    pub col_val: Vec<f64>,
    /// Relation of each row.
    pub relation: Vec<Relation>,
    /// Right-hand side of each row.
    pub rhs: Vec<f64>,
}

impl SparseView {
    fn build(problem: &Problem) -> Self {
        let m = problem.constraints.len();
        let n = problem.vars.len();
        let nnz: usize = problem
            .constraints
            .iter()
            .map(|c| c.expr.terms().count())
            .sum();
        let mut view = SparseView {
            row_off: Vec::with_capacity(m + 1),
            row_col: Vec::with_capacity(nnz),
            row_val: Vec::with_capacity(nnz),
            col_off: vec![0; n + 1],
            col_row: vec![0; nnz],
            col_val: vec![0.0; nnz],
            relation: Vec::with_capacity(m),
            rhs: Vec::with_capacity(m),
        };
        view.row_off.push(0);
        for c in &problem.constraints {
            for (v, q) in c.expr.terms() {
                view.row_col.push(v.0);
                view.row_val.push(q.to_f64());
            }
            view.row_off.push(view.row_col.len() as u32);
            view.relation.push(c.relation);
            view.rhs.push(c.rhs.to_f64());
        }
        // Transpose CSR -> CSC by counting.
        for &j in &view.row_col {
            view.col_off[j as usize + 1] += 1;
        }
        for j in 0..n {
            view.col_off[j + 1] += view.col_off[j];
        }
        let mut cursor: Vec<u32> = view.col_off[..n].to_vec();
        for i in 0..m {
            let (s, e) = (view.row_off[i] as usize, view.row_off[i + 1] as usize);
            for k in s..e {
                let j = view.row_col[k] as usize;
                let at = cursor[j] as usize;
                view.col_row[at] = i as u32;
                view.col_val[at] = view.row_val[k];
                cursor[j] += 1;
            }
        }
        view
    }
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Adds a continuous non-negative variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.sparse.take();
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            upper: None,
            integer: false,
        });
        id
    }

    /// Adds an integer non-negative variable and returns its id.
    pub fn add_int_var(&mut self, name: impl Into<String>) -> VarId {
        let id = self.add_var(name);
        self.vars[id.index()].integer = true;
        id
    }

    /// Sets an upper bound on a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_upper(&mut self, var: VarId, upper: Rational) {
        self.vars[var.index()].upper = Some(upper);
    }

    /// Adds a constraint; returns its index.
    pub fn add_constraint(
        &mut self,
        expr: LinExpr,
        relation: Relation,
        rhs: Rational,
        label: impl Into<String>,
    ) -> usize {
        self.sparse.take();
        self.constraints
            .push(Constraint::new(expr, relation, rhs, label));
        self.constraints.len() - 1
    }

    /// Sets a minimization objective.
    pub fn minimize(&mut self, objective: LinExpr) {
        self.objective = objective;
        self.sense = Sense::Minimize;
    }

    /// Sets a maximization objective.
    pub fn maximize(&mut self, objective: LinExpr) {
        self.objective = objective;
        self.sense = Sense::Maximize;
    }

    /// The cached sparse (CSR + CSC) constraint view, built on first use.
    pub(crate) fn sparse_view(&self) -> &SparseView {
        self.sparse.get_or_init(|| SparseView::build(self))
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&self, var: VarId) -> &VarInfo {
        &self.vars[var.index()]
    }

    /// All variables' metadata, in id order.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Ids of integer-constrained variables.
    pub fn integer_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| VarId(i as u32))
    }

    /// Checks a rational point against all constraints and bounds, returning
    /// the labels of violated constraints (empty = feasible).
    pub fn violations(&self, values: &[Rational]) -> Vec<String> {
        let mut out = Vec::new();
        for (i, info) in self.vars.iter().enumerate() {
            let v = values.get(i).copied().unwrap_or(Rational::ZERO);
            if v.is_negative() {
                out.push(format!("lower bound of {} violated: {v} < 0", info.name));
            }
            if let Some(u) = info.upper {
                if v > u {
                    out.push(format!("upper bound of {} violated: {v} > {u}", info.name));
                }
            }
        }
        for c in &self.constraints {
            if !c.is_satisfied(values) {
                out.push(format!(
                    "{}: {} (lhs = {})",
                    c.label,
                    c,
                    c.expr.eval(values)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_merges_and_cancels() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), Rational::from(2));
        e.add_term(VarId(0), Rational::from(3));
        assert_eq!(e.coeff(VarId(0)), Rational::from(5));
        e.add_term(VarId(0), Rational::from(-5));
        assert!(e.is_zero());
    }

    #[test]
    fn eval_exact_and_f64() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), Rational::new(1, 2));
        e.add_term(VarId(2), Rational::from(3));
        let vals = [Rational::from(4), Rational::from(9), Rational::from(1)];
        assert_eq!(e.eval(&vals), Rational::from(5));
        assert_eq!(e.eval_f64(&[4.0, 9.0, 1.0]), 5.0);
        // Missing trailing values are treated as zero.
        assert_eq!(e.eval(&vals[..1]), Rational::from(2));
    }

    #[test]
    fn constraint_satisfaction() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), Rational::ONE);
        let c = Constraint::new(e, Relation::Le, Rational::from(3), "t");
        assert!(c.is_satisfied(&[Rational::from(3)]));
        assert!(!c.is_satisfied(&[Rational::from(4)]));
    }

    #[test]
    fn problem_violations_report_bounds_and_constraints() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.set_upper(x, Rational::from(2));
        p.add_constraint(LinExpr::var(x), Relation::Ge, Rational::ONE, "ge1");
        assert!(p.violations(&[Rational::from(2)]).is_empty());
        assert_eq!(p.violations(&[Rational::from(3)]).len(), 1);
        assert_eq!(p.violations(&[Rational::ZERO]).len(), 1);
        assert_eq!(p.violations(&[Rational::from(-1)]).len(), 2);
    }

    #[test]
    fn integer_vars_are_tracked() {
        let mut p = Problem::new();
        let _x = p.add_var("x");
        let y = p.add_int_var("y");
        let ints: Vec<_> = p.integer_vars().collect();
        assert_eq!(ints, vec![y]);
    }

    #[test]
    fn constraint_display_is_readable() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), Rational::ONE);
        e.add_term(VarId(1), Rational::from(-2));
        let c = Constraint::new(e, Relation::Eq, Rational::from(4), "t");
        assert_eq!(c.to_string(), "1·x0 - 2·x1 = 4");
    }
}
