//! The sparse revised simplex over `f64` — the fast path behind flow
//! synthesis.
//!
//! The dense tableau this replaces carried every upper bound as an extra
//! row and rewrote O(rows × cols) entries per pivot. Flow-conservation
//! rows have a handful of nonzeros each, so this module works over the
//! [`Problem`]'s cached CSR/CSC view instead and keeps per-pivot work
//! proportional to the nonzeros:
//!
//! * **Bounded variables, no bound rows.** Structural bounds (base upper
//!   bounds intersected with [`BoundOverrides`]) live in dense `lo`/`up`
//!   arrays; the ratio tests handle both bounds and *bound flips*
//!   directly, so branch-and-bound tightenings never change the basis
//!   dimension — which is what makes warm starts possible at all.
//! * **Factorized basis.** The basis matrix is triangularized by
//!   row/column singleton peeling (flow bases are near-triangular; the
//!   leftover "bump" is factorized densely and is tiny in practice), and
//!   pivots between refactorizations are absorbed as product-form
//!   eta-file updates.
//! * **Pricing over nonzeros.** Reduced costs are recomputed by one BTRAN
//!   plus a single sweep of the CSR rows — O(nnz), not O(rows × cols).
//! * **Warm starts.** [`solve_f64`] accepts a starting basis and repairs
//!   it with a bounded-variable *dual* simplex: branch-and-bound children
//!   start dual-feasible from the parent's optimal basis, so a node solve
//!   is a handful of dual pivots instead of a two-phase cold solve.
//!   [`LpScratch`] additionally remembers the converged basis keyed by a
//!   fingerprint of the full problem data, so re-solving an identical
//!   problem (the cross-candidate shared-skeleton case) is a zero-pivot
//!   confirmation.
//!
//! Everything here is deterministic: pricing scans in index order,
//! tie-breaks are by index or magnitude, and no hashing of addresses or
//! wall-clock state is consulted — identical inputs give identical
//! solves, which the explorer's byte-determinism contract relies on.
//! Numerical breakdowns (singular refactorization, vanishing pivots, a
//! failed post-solve feasibility audit) retreat to the dense tableau
//! rather than guessing. The `Rational` dense tableau remains the exact
//! cross-validation oracle; `tests/properties.rs` holds this path to it
//! on flow-shaped random programs.

use crate::problem::{Problem, Relation, Sense, SparseView, VarId};
use crate::scalar::{F64_FEAS_TOL, F64_PIVOT_TOL, F64_TOL};
use crate::simplex::{BoundOverrides, LpError, LpOutcome, LpSolution, SimplexOptions};

const INF: f64 = f64::INFINITY;
/// Eta-file length that triggers a refactorization (which also re-solves
/// the basic values, bounding numerical drift).
const REFACTOR_EVERY: usize = 64;
/// Reduced-cost threshold for entering-candidate eligibility.
const DUAL_TOL: f64 = 1e-7;
/// Sentinel index.
const NONE: u32 = u32::MAX;

/// Where a variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
}

/// A converged basis snapshot: enough to warm-start a later solve of the
/// same problem under different bound overrides (branch-and-bound
/// children) via the dual simplex.
#[derive(Debug, Clone)]
pub(crate) struct WarmBasis {
    status: Vec<Status>,
    basis: Vec<u32>,
}

/// How a solve attempt failed internally (before mapping to the public
/// error surface or falling back to the dense tableau).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breakdown {
    /// Pivot cap exceeded — propagated as [`LpError::IterationLimit`].
    IterationLimit,
    /// Singular basis, vanishing pivot, or a failed post-solve
    /// feasibility audit — the caller retreats to the dense tableau.
    Numerical,
}

/// One product-form update: basis position `r` was replaced, and the
/// FTRAN'd entering column `w` absorbs the change until the next
/// refactorization. The nonzeros of every eta live in one flat arena
/// (`LpScratch::eta_nz`, sliced by `start..end`) so pivots never allocate
/// — the eta file truncates in place on each refactorization and its
/// capacity is reused across solves.
#[derive(Debug, Clone, Copy)]
struct Eta {
    r: u32,
    wr: f64,
    /// Arena range of the `(position, value)` entries of `w` excluding
    /// position `r`.
    start: u32,
    end: u32,
}

impl Eta {
    /// `z ← E⁻¹ z` (FTRAN direction).
    fn apply_ftran(&self, nz: &[(u32, f64)], z: &mut [f64]) {
        let zr = z[self.r as usize] / self.wr;
        z[self.r as usize] = zr;
        if zr != 0.0 {
            for &(i, w) in &nz[self.start as usize..self.end as usize] {
                z[i as usize] -= w * zr;
            }
        }
    }

    /// `c ← E⁻ᵀ c` (BTRAN direction).
    fn apply_btran(&self, nz: &[(u32, f64)], c: &mut [f64]) {
        let mut acc = c[self.r as usize];
        for &(i, w) in &nz[self.start as usize..self.end as usize] {
            acc -= w * c[i as usize];
        }
        c[self.r as usize] = acc / self.wr;
    }
}

/// One peeled pivot of the triangularized basis.
#[derive(Debug, Clone, Copy)]
struct Pivot {
    /// Row of the basis matrix.
    row: u32,
    /// Basis position (column of the basis matrix).
    pos: u32,
    /// Pivot element value.
    val: f64,
    /// `true` for a row-singleton pivot, `false` for a column-singleton.
    row_kind: bool,
}

/// Triangularized basis factorization: singleton-peeled pivots plus a
/// dense LU of the leftover bump.
///
/// Correctness of the substitution orders rests on two peel facts: a
/// row-singleton pivot's row only references columns peeled earlier *by
/// row-singleton pivots* (a column peeled as a column singleton had no
/// entry in any then-active row), and symmetrically a column-singleton
/// pivot's column only references rows peeled earlier by column-singleton
/// pivots. Bump rows therefore reference only row-peeled columns, and
/// bump columns only column-peeled rows.
#[derive(Debug, Default)]
struct Factor {
    m: usize,
    // Basis matrix, both orientations; column `p` is the basis position.
    col_off: Vec<u32>,
    col_row: Vec<u32>,
    col_val: Vec<f64>,
    row_off: Vec<u32>,
    row_pos: Vec<u32>,
    row_val: Vec<f64>,
    /// Peeled pivots in peel order.
    pivots: Vec<Pivot>,
    /// Bump rows/positions (k of each) and the dense column-major LU.
    bump_rows: Vec<u32>,
    bump_pos: Vec<u32>,
    row_to_bump: Vec<u32>,
    bump_lu: Vec<f64>,
    bump_swaps: Vec<u32>,
    bump_work: Vec<f64>,
    // Peeling workspace.
    row_cnt: Vec<u32>,
    col_cnt: Vec<u32>,
    row_done: Vec<bool>,
    col_done: Vec<bool>,
    worklist: Vec<u32>,
}

impl Factor {
    /// Rebuilds the factorization from the current basis columns:
    /// structural columns come from the problem's CSC view; slack and
    /// artificial columns are unit columns in their row.
    fn refactorize(
        &mut self,
        view: &SparseView,
        n_struct: usize,
        basis: &[u32],
    ) -> Result<(), Breakdown> {
        let m = basis.len();
        self.m = m;
        self.col_off.clear();
        self.col_row.clear();
        self.col_val.clear();
        self.col_off.push(0);
        for &j in basis {
            let j = j as usize;
            if j < n_struct {
                let (s, e) = (view.col_off[j] as usize, view.col_off[j + 1] as usize);
                for k in s..e {
                    self.col_row.push(view.col_row[k]);
                    self.col_val.push(view.col_val[k]);
                }
            } else {
                let row = (j - n_struct) % m;
                self.col_row.push(row as u32);
                self.col_val.push(1.0);
            }
            self.col_off.push(self.col_row.len() as u32);
        }
        let nnz = self.col_row.len();

        // Row-major mirror (counting transpose).
        self.row_off.clear();
        self.row_off.resize(m + 1, 0);
        for &r in &self.col_row {
            self.row_off[r as usize + 1] += 1;
        }
        for i in 0..m {
            self.row_off[i + 1] += self.row_off[i];
        }
        self.row_pos.clear();
        self.row_pos.resize(nnz, 0);
        self.row_val.clear();
        self.row_val.resize(nnz, 0.0);
        let mut cursor: Vec<u32> = self.row_off[..m].to_vec();
        for p in 0..m {
            let (s, e) = (self.col_off[p] as usize, self.col_off[p + 1] as usize);
            for k in s..e {
                let r = self.col_row[k] as usize;
                let at = cursor[r] as usize;
                self.row_pos[at] = p as u32;
                self.row_val[at] = self.col_val[k];
                cursor[r] += 1;
            }
        }

        // ---- Singleton peeling. ----
        self.row_cnt.clear();
        self.row_cnt.resize(m, 0);
        self.col_cnt.clear();
        self.col_cnt.resize(m, 0);
        self.row_done.clear();
        self.row_done.resize(m, false);
        self.col_done.clear();
        self.col_done.resize(m, false);
        self.pivots.clear();
        for i in 0..m {
            self.row_cnt[i] = self.row_off[i + 1] - self.row_off[i];
        }
        for p in 0..m {
            self.col_cnt[p] = self.col_off[p + 1] - self.col_off[p];
            if self.col_cnt[p] == 0 {
                return Err(Breakdown::Numerical); // structurally singular
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            // Column singletons.
            self.worklist.clear();
            for p in 0..m {
                if !self.col_done[p] && self.col_cnt[p] == 1 {
                    self.worklist.push(p as u32);
                }
            }
            while let Some(p) = self.worklist.pop() {
                let p = p as usize;
                if self.col_done[p] || self.col_cnt[p] != 1 {
                    continue;
                }
                let (s, e) = (self.col_off[p] as usize, self.col_off[p + 1] as usize);
                let Some(k) = (s..e).find(|&k| !self.row_done[self.col_row[k] as usize]) else {
                    return Err(Breakdown::Numerical);
                };
                let r = self.col_row[k] as usize;
                let val = self.col_val[k];
                if val.abs() < F64_PIVOT_TOL {
                    return Err(Breakdown::Numerical);
                }
                self.pivots.push(Pivot {
                    row: r as u32,
                    pos: p as u32,
                    val,
                    row_kind: false,
                });
                self.col_done[p] = true;
                self.row_done[r] = true;
                changed = true;
                let (rs, re) = (self.row_off[r] as usize, self.row_off[r + 1] as usize);
                for k in rs..re {
                    let p2 = self.row_pos[k] as usize;
                    if !self.col_done[p2] {
                        self.col_cnt[p2] -= 1;
                        if self.col_cnt[p2] == 1 {
                            self.worklist.push(p2 as u32);
                        }
                    }
                }
            }
            // Row singletons.
            self.worklist.clear();
            for i in 0..m {
                if !self.row_done[i] && self.row_cnt[i] == 1 {
                    self.worklist.push(i as u32);
                }
            }
            while let Some(r) = self.worklist.pop() {
                let r = r as usize;
                if self.row_done[r] || self.row_cnt[r] != 1 {
                    continue;
                }
                let (s, e) = (self.row_off[r] as usize, self.row_off[r + 1] as usize);
                let Some(k) = (s..e).find(|&k| !self.col_done[self.row_pos[k] as usize]) else {
                    return Err(Breakdown::Numerical);
                };
                let p = self.row_pos[k] as usize;
                let val = self.row_val[k];
                if val.abs() < F64_PIVOT_TOL {
                    return Err(Breakdown::Numerical);
                }
                self.pivots.push(Pivot {
                    row: r as u32,
                    pos: p as u32,
                    val,
                    row_kind: true,
                });
                self.row_done[r] = true;
                self.col_done[p] = true;
                changed = true;
                let (cs, ce) = (self.col_off[p] as usize, self.col_off[p + 1] as usize);
                for k in cs..ce {
                    let r2 = self.col_row[k] as usize;
                    if !self.row_done[r2] {
                        self.row_cnt[r2] -= 1;
                        if self.row_cnt[r2] == 1 {
                            self.worklist.push(r2 as u32);
                        }
                    }
                }
            }
        }

        // ---- Dense bump LU (partial pivoting). ----
        self.bump_rows.clear();
        self.bump_pos.clear();
        self.row_to_bump.clear();
        self.row_to_bump.resize(m, NONE);
        for i in 0..m {
            if !self.row_done[i] {
                self.row_to_bump[i] = self.bump_rows.len() as u32;
                self.bump_rows.push(i as u32);
            }
        }
        for p in 0..m {
            if !self.col_done[p] {
                self.bump_pos.push(p as u32);
            }
        }
        let k = self.bump_rows.len();
        if k != self.bump_pos.len() {
            return Err(Breakdown::Numerical);
        }
        self.bump_lu.clear();
        self.bump_lu.resize(k * k, 0.0);
        self.bump_swaps.clear();
        self.bump_work.clear();
        self.bump_work.resize(k, 0.0);
        for (bj, &p) in self.bump_pos.iter().enumerate() {
            let p = p as usize;
            let (s, e) = (self.col_off[p] as usize, self.col_off[p + 1] as usize);
            for kk in s..e {
                let bi = self.row_to_bump[self.col_row[kk] as usize];
                if bi != NONE {
                    self.bump_lu[bj * k + bi as usize] = self.col_val[kk];
                }
            }
        }
        for c in 0..k {
            let mut best = c;
            let mut best_abs = self.bump_lu[c * k + c].abs();
            for r in c + 1..k {
                let a = self.bump_lu[c * k + r].abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
            if best_abs < F64_PIVOT_TOL {
                return Err(Breakdown::Numerical);
            }
            self.bump_swaps.push(best as u32);
            if best != c {
                for j in 0..k {
                    self.bump_lu.swap(j * k + c, j * k + best);
                }
            }
            let piv = self.bump_lu[c * k + c];
            for r in c + 1..k {
                let l = self.bump_lu[c * k + r] / piv;
                self.bump_lu[c * k + r] = l;
                if l != 0.0 {
                    for j in c + 1..k {
                        let u = self.bump_lu[j * k + c];
                        if u != 0.0 {
                            self.bump_lu[j * k + r] -= l * u;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Solves `B z = r`: `r` is indexed by row and consumed as a
    /// residual; `z` is written indexed by basis position.
    fn ftran(&mut self, r: &mut [f64], z: &mut [f64]) {
        let k = self.bump_rows.len();
        z[..self.m].fill(0.0);
        // Row-singleton pivots, forward peel order.
        for idx in 0..self.pivots.len() {
            let piv = self.pivots[idx];
            if !piv.row_kind {
                continue;
            }
            let zp = r[piv.row as usize] / piv.val;
            z[piv.pos as usize] = zp;
            if zp != 0.0 {
                self.sweep_col(piv.pos as usize, zp, r);
            }
        }
        // Bump.
        if k > 0 {
            for (bi, &row) in self.bump_rows.iter().enumerate() {
                self.bump_work[bi] = r[row as usize];
            }
            self.bump_solve();
            for bi in 0..k {
                let pos = self.bump_pos[bi] as usize;
                let zp = self.bump_work[bi];
                z[pos] = zp;
                if zp != 0.0 {
                    self.sweep_col(pos, zp, r);
                }
            }
        }
        // Column-singleton pivots, reverse peel order.
        for idx in (0..self.pivots.len()).rev() {
            let piv = self.pivots[idx];
            if piv.row_kind {
                continue;
            }
            let zp = r[piv.row as usize] / piv.val;
            z[piv.pos as usize] = zp;
            if zp != 0.0 {
                self.sweep_col(piv.pos as usize, zp, r);
            }
        }
    }

    /// Solves `Bᵀ y = c`: `c` is indexed by basis position and consumed
    /// as a residual; `y` is written indexed by row.
    fn btran(&mut self, c: &mut [f64], y: &mut [f64]) {
        let k = self.bump_rows.len();
        y[..self.m].fill(0.0);
        // Column-singleton pivots, forward peel order.
        for idx in 0..self.pivots.len() {
            let piv = self.pivots[idx];
            if piv.row_kind {
                continue;
            }
            let yr = c[piv.pos as usize] / piv.val;
            y[piv.row as usize] = yr;
            if yr != 0.0 {
                self.sweep_row(piv.row as usize, yr, c);
            }
        }
        // Bump transpose.
        if k > 0 {
            for (bj, &pos) in self.bump_pos.iter().enumerate() {
                self.bump_work[bj] = c[pos as usize];
            }
            self.bump_solve_transposed();
            for bi in 0..k {
                let row = self.bump_rows[bi] as usize;
                let yr = self.bump_work[bi];
                y[row] = yr;
                if yr != 0.0 {
                    self.sweep_row(row, yr, c);
                }
            }
        }
        // Row-singleton pivots, reverse peel order.
        for idx in (0..self.pivots.len()).rev() {
            let piv = self.pivots[idx];
            if !piv.row_kind {
                continue;
            }
            let yr = c[piv.pos as usize] / piv.val;
            y[piv.row as usize] = yr;
            if yr != 0.0 {
                self.sweep_row(piv.row as usize, yr, c);
            }
        }
    }

    /// `r ← r - z_p · (basis column p)`.
    fn sweep_col(&self, p: usize, zp: f64, r: &mut [f64]) {
        let (s, e) = (self.col_off[p] as usize, self.col_off[p + 1] as usize);
        for k in s..e {
            r[self.col_row[k] as usize] -= self.col_val[k] * zp;
        }
    }

    /// `c ← c - y_r · (basis row r)`.
    fn sweep_row(&self, row: usize, yr: f64, c: &mut [f64]) {
        let (s, e) = (self.row_off[row] as usize, self.row_off[row + 1] as usize);
        for k in s..e {
            c[self.row_pos[k] as usize] -= self.row_val[k] * yr;
        }
    }

    /// In-place dense solve of `bump · x = bump_work` via the stored LU
    /// (`P·bump = L·U`: apply all row swaps first — the stored `L` is the
    /// fully permuted factor — then the triangular solves).
    fn bump_solve(&mut self) {
        let k = self.bump_rows.len();
        for c in 0..k {
            let sw = self.bump_swaps[c] as usize;
            if sw != c {
                self.bump_work.swap(c, sw);
            }
        }
        for c in 0..k {
            let bc = self.bump_work[c];
            if bc != 0.0 {
                for r in c + 1..k {
                    self.bump_work[r] -= self.bump_lu[c * k + r] * bc;
                }
            }
        }
        for c in (0..k).rev() {
            let mut acc = self.bump_work[c];
            for j in c + 1..k {
                acc -= self.bump_lu[j * k + c] * self.bump_work[j];
            }
            self.bump_work[c] = acc / self.bump_lu[c * k + c];
        }
    }

    /// In-place dense solve of `bumpᵀ · y = bump_work`
    /// (`Uᵀ w = c`, `Lᵀ v = w`, then the row swaps undone in reverse).
    fn bump_solve_transposed(&mut self) {
        let k = self.bump_rows.len();
        for c in 0..k {
            let mut acc = self.bump_work[c];
            for j in 0..c {
                acc -= self.bump_lu[c * k + j] * self.bump_work[j];
            }
            self.bump_work[c] = acc / self.bump_lu[c * k + c];
        }
        for c in (0..k).rev() {
            let mut acc = self.bump_work[c];
            for r in c + 1..k {
                acc -= self.bump_lu[c * k + r] * self.bump_work[r];
            }
            self.bump_work[c] = acc;
        }
        for c in (0..k).rev() {
            let sw = self.bump_swaps[c] as usize;
            if sw != c {
                self.bump_work.swap(c, sw);
            }
        }
    }
}

/// Preallocated workspace (and cross-solve warm state) of the sparse
/// revised simplex: basis factors, eta file, pricing vectors, bound
/// arrays, and the fingerprint of the last converged solve.
///
/// One scratch serves problems of any size (arrays are resized per load)
/// and is what `wsp_core::Pipeline` owns and `wsp-explore` keeps one of
/// per worker. Reusing a scratch never changes results: solves are a pure
/// function of `(problem, bounds, options)`. The only state carried
/// across solves is allocation capacity, plus a converged basis that is
/// reused *only* when the next problem's full data fingerprint matches
/// the previous one (re-solving an identical problem), where the warm
/// start provably returns the same optimum — that gate is what lets the
/// explorer keep its byte-identical determinism contract while repeated
/// evaluations of a shared constraint skeleton skip straight to a
/// zero-pivot confirmation.
#[derive(Debug, Default)]
pub struct LpScratch {
    // Standardized problem (rebuilt per load). Columns: structural
    // `0..n_struct`, slack `n_struct + i` (coefficient +1 in row i), and
    // artificial `n_struct + m + i` (also +1 in row i, fixed at zero
    // outside phase 1).
    m: usize,
    n_struct: usize,
    n: usize,
    lo: Vec<f64>,
    up: Vec<f64>,
    cost: Vec<f64>,
    x: Vec<f64>,
    d: Vec<f64>,
    status: Vec<Status>,
    basis: Vec<u32>,
    /// Per-row phase-1 artificial sign (0 = not widened).
    art_sign: Vec<i8>,
    // Factorization + eta file (flat nonzero arena, see [`Eta`]).
    fact: Factor,
    etas: Vec<Eta>,
    eta_nz: Vec<(u32, f64)>,
    // Work vectors.
    work_row: Vec<f64>,
    work_pos: Vec<f64>,
    y: Vec<f64>,
    w: Vec<f64>,
    alpha: Vec<f64>,
    // Cross-solve warm state.
    fingerprint: u64,
    converged: bool,
}

impl LpScratch {
    /// A fresh scratch; arrays grow on first use.
    pub fn new() -> Self {
        LpScratch::default()
    }

    /// Loads the standardized bounds/cost layout for `problem` under
    /// `bounds`. Returns `false` on a contradictory override pair
    /// (immediately infeasible).
    fn load(&mut self, problem: &Problem, bounds: &BoundOverrides, view: &SparseView) -> bool {
        let m = view.relation.len();
        let n_struct = problem.var_count();
        let n = n_struct + 2 * m;
        self.m = m;
        self.n_struct = n_struct;
        self.n = n;
        self.lo.clear();
        self.lo.resize(n, 0.0);
        self.up.clear();
        self.up.resize(n, INF);
        self.cost.clear();
        self.cost.resize(n, 0.0);
        self.x.clear();
        self.x.resize(n, 0.0);
        self.d.clear();
        self.d.resize(n, 0.0);
        self.status.clear();
        self.status.resize(n, Status::AtLower);
        self.art_sign.clear();
        self.art_sign.resize(m, 0);
        self.work_row.clear();
        self.work_row.resize(m, 0.0);
        self.work_pos.clear();
        self.work_pos.resize(m, 0.0);
        self.y.clear();
        self.y.resize(m, 0.0);
        self.w.clear();
        self.w.resize(m, 0.0);
        self.alpha.clear();
        self.alpha.resize(n, 0.0);
        self.etas.clear();
        self.eta_nz.clear();

        for (j, info) in problem.vars().iter().enumerate() {
            let var = VarId(j as u32);
            let (lb, ub) = bounds.effective(var, info.upper);
            let lo = lb.to_f64();
            let up = ub.map_or(INF, |u| u.to_f64());
            if lo > up + F64_FEAS_TOL {
                return false;
            }
            self.lo[j] = lo;
            self.up[j] = up.max(lo);
        }
        for i in 0..m {
            let s = n_struct + i;
            match view.relation[i] {
                Relation::Le => {
                    self.lo[s] = 0.0;
                    self.up[s] = INF;
                }
                Relation::Ge => {
                    self.lo[s] = -INF;
                    self.up[s] = 0.0;
                }
                Relation::Eq => {
                    self.lo[s] = 0.0;
                    self.up[s] = 0.0;
                }
            }
            // Artificials are fixed at zero unless phase 1 widens them.
            let a = n_struct + m + i;
            self.lo[a] = 0.0;
            self.up[a] = 0.0;
        }
        true
    }

    /// Sets the phase-2 cost vector (sense-normalized to minimization).
    fn load_phase2_cost(&mut self, problem: &Problem) {
        let flip = matches!(problem.sense(), Sense::Maximize);
        self.cost[..self.n].fill(0.0);
        for (v, q) in problem.objective().terms() {
            let c = q.to_f64();
            self.cost[v.index()] = if flip { -c } else { c };
        }
    }

    /// Rebuilds the factorization of the current basis and recomputes the
    /// basic values from the nonbasic ones (drift control).
    fn refactorize_and_recompute(&mut self, view: &SparseView) -> Result<(), Breakdown> {
        self.fact.refactorize(view, self.n_struct, &self.basis)?;
        self.etas.clear();
        self.eta_nz.clear();
        // Residual: rhs - Σ (nonbasic columns at their values).
        self.work_row[..self.m].copy_from_slice(&view.rhs);
        for j in 0..self.n {
            if self.status[j] == Status::Basic {
                continue;
            }
            let xj = self.x[j];
            if xj != 0.0 {
                if j < self.n_struct {
                    let (s, e) = (view.col_off[j] as usize, view.col_off[j + 1] as usize);
                    for k in s..e {
                        self.work_row[view.col_row[k] as usize] -= view.col_val[k] * xj;
                    }
                } else {
                    let row = (j - self.n_struct) % self.m;
                    self.work_row[row] -= xj;
                }
            }
        }
        let LpScratch {
            fact,
            work_row,
            work_pos,
            ..
        } = self;
        fact.ftran(work_row, work_pos);
        for (p, &j) in self.basis.iter().enumerate() {
            self.x[j as usize] = self.work_pos[p];
        }
        Ok(())
    }

    /// `self.w ← B⁻¹ a_j`.
    fn ftran_col(&mut self, view: &SparseView, j: usize) {
        self.work_row[..self.m].fill(0.0);
        if j < self.n_struct {
            let (s, e) = (view.col_off[j] as usize, view.col_off[j + 1] as usize);
            for k in s..e {
                self.work_row[view.col_row[k] as usize] = view.col_val[k];
            }
        } else {
            self.work_row[(j - self.n_struct) % self.m] = 1.0;
        }
        let LpScratch {
            fact,
            work_row,
            w,
            etas,
            eta_nz,
            ..
        } = self;
        fact.ftran(work_row, w);
        for eta in etas.iter() {
            eta.apply_ftran(eta_nz, w);
        }
    }

    /// `self.y ← B⁻ᵀ c_B` with the current cost vector.
    fn btran_costs(&mut self) {
        for (p, &j) in self.basis.iter().enumerate() {
            self.work_pos[p] = self.cost[j as usize];
        }
        let LpScratch {
            fact,
            work_pos,
            y,
            etas,
            eta_nz,
            ..
        } = self;
        for eta in etas.iter().rev() {
            eta.apply_btran(eta_nz, work_pos);
        }
        fact.btran(work_pos, y);
    }

    /// `self.y ← B⁻ᵀ e_r` (row `r` of the basis inverse).
    fn btran_unit(&mut self, r: usize) {
        self.work_pos[..self.m].fill(0.0);
        self.work_pos[r] = 1.0;
        let LpScratch {
            fact,
            work_pos,
            y,
            etas,
            eta_nz,
            ..
        } = self;
        for eta in etas.iter().rev() {
            eta.apply_btran(eta_nz, work_pos);
        }
        fact.btran(work_pos, y);
    }

    /// `self.d ← cost - yᵀA` over every column: one CSR sweep plus the
    /// unit slack/artificial columns — O(nnz).
    fn price_costs(&mut self, view: &SparseView) {
        let (n, m, n_struct) = (self.n, self.m, self.n_struct);
        let LpScratch { d, cost, y, .. } = self;
        d[..n].copy_from_slice(&cost[..n]);
        for (i, &yi) in y[..m].iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let (s, e) = (view.row_off[i] as usize, view.row_off[i + 1] as usize);
            for k in s..e {
                d[view.row_col[k] as usize] -= yi * view.row_val[k];
            }
            d[n_struct + i] -= yi;
            d[n_struct + m + i] -= yi;
        }
    }

    /// `self.alpha ← yᵀA` over every column (the pivot row, when `y` is
    /// `B⁻ᵀ e_r`).
    fn price_row(&mut self, view: &SparseView) {
        let (n, m, n_struct) = (self.n, self.m, self.n_struct);
        let LpScratch { alpha, y, .. } = self;
        alpha[..n].fill(0.0);
        for (i, &yi) in y[..m].iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let (s, e) = (view.row_off[i] as usize, view.row_off[i + 1] as usize);
            for k in s..e {
                alpha[view.row_col[k] as usize] += yi * view.row_val[k];
            }
            alpha[n_struct + i] += yi;
            alpha[n_struct + m + i] += yi;
        }
    }

    /// Absorbs a basis change at position `r` through the eta file,
    /// refactorizing on schedule. `self.w` must hold the FTRAN'd entering
    /// column.
    fn push_eta(&mut self, view: &SparseView, r: usize) -> Result<(), Breakdown> {
        let wr = self.w[r];
        if wr.abs() < F64_PIVOT_TOL {
            return Err(Breakdown::Numerical);
        }
        let start = self.eta_nz.len() as u32;
        for (p, &wv) in self.w[..self.m].iter().enumerate() {
            if p != r && wv != 0.0 {
                self.eta_nz.push((p as u32, wv));
            }
        }
        self.etas.push(Eta {
            r: r as u32,
            wr,
            start,
            end: self.eta_nz.len() as u32,
        });
        if self.etas.len() >= REFACTOR_EVERY {
            self.refactorize_and_recompute(view)?;
        }
        Ok(())
    }

    /// Bounded-variable primal simplex on the current cost vector.
    /// Requires a primal-feasible basis; ends at optimality or detects
    /// unboundedness.
    fn primal(
        &mut self,
        view: &SparseView,
        options: &SimplexOptions,
    ) -> Result<PrimalEnd, Breakdown> {
        let mut stalls = 0usize;
        for _ in 0..options.max_iterations {
            let bland = stalls >= options.bland_after_stalls;
            self.btran_costs();
            self.price_costs(view);

            // Entering: most negative effective reduced cost (Dantzig),
            // or the first eligible candidate under Bland's rule.
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.n {
                if self.status[j] == Status::Basic || self.lo[j] >= self.up[j] {
                    continue;
                }
                let dj = self.d[j];
                let eligible = match self.status[j] {
                    Status::AtLower => dj < -DUAL_TOL,
                    Status::AtUpper => dj > DUAL_TOL,
                    Status::Basic => false,
                };
                if !eligible {
                    continue;
                }
                if bland {
                    entering = Some((j, dj));
                    break;
                }
                match entering {
                    Some((_, best)) if dj.abs() <= best.abs() => {}
                    _ => entering = Some((j, dj)),
                }
            }
            let Some((q, _)) = entering else {
                return Ok(PrimalEnd::Optimal);
            };
            let s = if self.status[q] == Status::AtLower {
                1.0
            } else {
                -1.0
            };
            self.ftran_col(view, q);

            // Ratio test over the basics.
            let mut t_basic = INF;
            let mut leave: Option<(usize, bool)> = None;
            for p in 0..self.m {
                let wp = s * self.w[p];
                let j = self.basis[p] as usize;
                let (limit, at_upper) = if wp > F64_PIVOT_TOL {
                    if self.lo[j] == -INF {
                        continue;
                    }
                    (((self.x[j] - self.lo[j]) / wp).max(0.0), false)
                } else if wp < -F64_PIVOT_TOL {
                    if self.up[j] == INF {
                        continue;
                    }
                    (((self.x[j] - self.up[j]) / wp).max(0.0), true)
                } else {
                    continue;
                };
                let better = match leave {
                    None => true,
                    Some((lp, _)) => {
                        if limit < t_basic - F64_TOL {
                            true
                        } else if limit <= t_basic + F64_TOL {
                            // Ties: prefer the numerically safer (larger)
                            // pivot magnitude; Bland mode falls back to
                            // the smallest basic index for anti-cycling.
                            if bland {
                                self.basis[p] < self.basis[lp]
                            } else {
                                self.w[p].abs() > self.w[lp].abs()
                            }
                        } else {
                            false
                        }
                    }
                };
                if better {
                    t_basic = t_basic.min(limit);
                    leave = Some((p, at_upper));
                }
            }

            let span = self.up[q] - self.lo[q];
            if span <= t_basic {
                if span == INF {
                    return Ok(PrimalEnd::Unbounded);
                }
                // Bound flip: the entering variable runs to its other
                // bound; the basis is unchanged.
                self.x[q] += s * span;
                for (p, &j) in self.basis.iter().enumerate() {
                    self.x[j as usize] -= s * span * self.w[p];
                }
                self.status[q] = if s > 0.0 {
                    Status::AtUpper
                } else {
                    Status::AtLower
                };
                if span <= F64_TOL {
                    stalls += 1;
                } else {
                    stalls = 0;
                }
                continue;
            }
            let (r, at_upper) = leave.expect("t_basic finite implies a leaving candidate");
            let t = t_basic;
            self.x[q] += s * t;
            for (p, &j) in self.basis.iter().enumerate() {
                self.x[j as usize] -= s * t * self.w[p];
            }
            let leaving = self.basis[r] as usize;
            self.x[leaving] = if at_upper {
                self.up[leaving]
            } else {
                self.lo[leaving]
            };
            self.status[leaving] = if at_upper {
                Status::AtUpper
            } else {
                Status::AtLower
            };
            self.status[q] = Status::Basic;
            self.basis[r] = q as u32;
            self.push_eta(view, r)?;
            if t <= F64_TOL {
                stalls += 1;
            } else {
                stalls = 0;
            }
        }
        Err(Breakdown::IterationLimit)
    }

    /// Bounded-variable dual simplex: starting from a dual-feasible
    /// basis, repairs primal feasibility after bound changes (the warm
    /// start). Returns `Infeasible` when a violated basic admits no
    /// entering column — the dual ray proving primal infeasibility.
    fn dual(&mut self, view: &SparseView, options: &SimplexOptions) -> Result<DualEnd, Breakdown> {
        let mut stalls = 0usize;
        for _ in 0..options.max_iterations {
            let bland = stalls >= options.bland_after_stalls;
            // Leaving: the basic variable with the largest bound violation.
            let mut leave: Option<(usize, f64, bool)> = None;
            for (p, &j) in self.basis.iter().enumerate() {
                let j = j as usize;
                let below = self.lo[j] - self.x[j];
                let above = self.x[j] - self.up[j];
                let (viol, at_upper) = if below >= above {
                    (below, false)
                } else {
                    (above, true)
                };
                if viol > F64_FEAS_TOL {
                    match leave {
                        Some((_, best, _)) if best >= viol => {}
                        _ => leave = Some((p, viol, at_upper)),
                    }
                }
            }
            let Some((r, _, leaves_at_upper)) = leave else {
                return Ok(DualEnd::PrimalFeasible);
            };

            // Pivot row alpha = (B⁻ᵀ e_r)ᵀ A and fresh reduced costs.
            self.btran_unit(r);
            self.price_row(view);
            self.btran_costs();
            self.price_costs(view);

            // The leaving basic moves to its violated bound; an entering
            // step t (≥ 0 from lower, ≤ 0 from upper) changes xB_r by
            // -t·alpha. Eligibility = the movement direction that heals
            // the violation; the dual ratio |d/alpha| keeps the reduced
            // costs sign-consistent.
            let need_increase = !leaves_at_upper;
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.n {
                if self.status[j] == Status::Basic || self.lo[j] >= self.up[j] {
                    continue;
                }
                let a = self.alpha[j];
                if a.abs() <= F64_PIVOT_TOL {
                    continue;
                }
                let from_lower = self.status[j] == Status::AtLower;
                let raises = if from_lower { a < 0.0 } else { a > 0.0 };
                if raises != need_increase {
                    continue;
                }
                let ratio = (self.d[j] / a).abs();
                let better = match entering {
                    None => true,
                    Some((bj, best)) => {
                        if ratio < best - F64_TOL {
                            true
                        } else if ratio <= best + F64_TOL {
                            if bland {
                                j < bj
                            } else {
                                a.abs() > self.alpha[bj].abs()
                            }
                        } else {
                            false
                        }
                    }
                };
                if better {
                    // Track the smallest ratio seen as the comparison
                    // base so tolerance-band ties chain off the true
                    // minimum, not the last accepted candidate.
                    let base = entering.map_or(ratio, |(_, b)| b.min(ratio));
                    entering = Some((j, base));
                }
            }
            let Some((q, _)) = entering else {
                return Ok(DualEnd::Infeasible);
            };

            self.ftran_col(view, q);
            let wr = self.w[r];
            if wr.abs() < F64_PIVOT_TOL {
                return Err(Breakdown::Numerical);
            }
            let jl = self.basis[r] as usize;
            let target = if leaves_at_upper {
                self.up[jl]
            } else {
                self.lo[jl]
            };
            // xB_r - t·w_r = target → signed entering step t.
            let t = (self.x[jl] - target) / wr;
            self.x[q] += t;
            for (p, &j) in self.basis.iter().enumerate() {
                if p != r {
                    self.x[j as usize] -= t * self.w[p];
                }
            }
            self.x[jl] = target;
            self.status[jl] = if leaves_at_upper {
                Status::AtUpper
            } else {
                Status::AtLower
            };
            self.status[q] = Status::Basic;
            self.basis[r] = q as u32;
            self.push_eta(view, r)?;
            if t.abs() <= F64_TOL {
                stalls += 1;
            } else {
                stalls = 0;
            }
        }
        Err(Breakdown::IterationLimit)
    }
}

enum PrimalEnd {
    Optimal,
    Unbounded,
}

enum DualEnd {
    PrimalFeasible,
    Infeasible,
}

/// How a solve may reuse prior basis state.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Start<'a> {
    /// Cold start, but permit the scratch's fingerprint-gated reuse of
    /// its own converged basis when the problem is identical (the
    /// default for plain LP solves through a shared scratch).
    Auto,
    /// Force a cold two-phase solve: no warm basis, no fingerprint
    /// reuse (the `IlpOptions::warm_start = false` contract).
    Cold,
    /// Warm-start from an explicit converged basis of the same problem
    /// under different bound overrides (branch-and-bound children).
    Warm(&'a WarmBasis),
}

/// Solves the LP relaxation of `problem` with the sparse revised simplex
/// under the given [`Start`] mode. Returns the outcome plus the
/// converged basis when one exists.
///
/// Falls back to the dense `f64` tableau on numerical breakdown (the
/// fallback returns no warm basis).
pub(crate) fn solve_f64(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &SimplexOptions,
    scratch: &mut LpScratch,
    start: Start<'_>,
) -> Result<(LpOutcome<f64>, Option<WarmBasis>), LpError> {
    match solve_sparse(problem, bounds, options, scratch, start) {
        Ok(out) => Ok(out),
        Err(Breakdown::IterationLimit) => Err(LpError::IterationLimit {
            limit: options.max_iterations,
        }),
        Err(Breakdown::Numerical) => {
            scratch.converged = false;
            crate::simplex::solve_dense::<f64>(problem, bounds, options).map(|o| (o, None))
        }
    }
}

fn solve_sparse(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &SimplexOptions,
    scratch: &mut LpScratch,
    start: Start<'_>,
) -> Result<(LpOutcome<f64>, Option<WarmBasis>), Breakdown> {
    let view = problem.sparse_view();
    // A fingerprint hit means this exact problem was just solved to
    // optimality from this scratch: its own basis is a valid warm start
    // and provably reconverges to the same optimum. Only `Start::Auto`
    // solves participate (compare here, store on convergence below) —
    // `Start::Cold` must stay genuinely cold, and `Start::Warm` node
    // solves skip the O(nnz) hashing entirely (their per-node bounds
    // could never produce a hit).
    let print: Option<u64> = if matches!(start, Start::Auto) {
        Some(fingerprint(problem, bounds, view))
    } else {
        None
    };
    let own_warm: Option<WarmBasis> =
        if scratch.converged && print.is_some_and(|fp| fp == scratch.fingerprint) {
            Some(WarmBasis {
                status: scratch.status[..scratch.n].to_vec(),
                basis: scratch.basis.clone(),
            })
        } else {
            None
        };
    scratch.converged = false;

    if !scratch.load(problem, bounds, view) {
        return Ok((LpOutcome::Infeasible, None));
    }

    let warm = match start {
        Start::Warm(wb) => Some(wb),
        _ => own_warm.as_ref(),
    };
    let warm_installed = match warm {
        Some(wb) => install_warm(scratch, view, wb).is_ok(),
        None => false,
    };

    if warm_installed {
        scratch.load_phase2_cost(problem);
        match scratch.dual(view, options)? {
            DualEnd::Infeasible => return Ok((LpOutcome::Infeasible, None)),
            DualEnd::PrimalFeasible => {}
        }
        match scratch.primal(view, options)? {
            PrimalEnd::Unbounded => return Ok((LpOutcome::Unbounded, None)),
            PrimalEnd::Optimal => {}
        }
    } else {
        cold_start(scratch, view)?;
        if scratch.art_sign.iter().any(|&sg| sg != 0) {
            // ---- Phase 1: minimize the total artificial infeasibility. ----
            scratch.cost[..scratch.n].fill(0.0);
            for i in 0..scratch.m {
                let sign = scratch.art_sign[i];
                if sign != 0 {
                    scratch.cost[scratch.n_struct + scratch.m + i] = sign as f64;
                }
            }
            match scratch.primal(view, options)? {
                PrimalEnd::Unbounded => {
                    debug_assert!(false, "phase-1 objective is bounded below by zero");
                    return Err(Breakdown::Numerical);
                }
                PrimalEnd::Optimal => {}
            }
            let p1: f64 = (0..scratch.m)
                .filter(|&i| scratch.art_sign[i] != 0)
                .map(|i| scratch.x[scratch.n_struct + scratch.m + i].abs())
                .sum();
            if p1 > F64_FEAS_TOL {
                return Ok((LpOutcome::Infeasible, None));
            }
            // Re-fix every widened artificial at zero.
            for i in 0..scratch.m {
                if scratch.art_sign[i] != 0 {
                    let a = scratch.n_struct + scratch.m + i;
                    scratch.lo[a] = 0.0;
                    scratch.up[a] = 0.0;
                    scratch.art_sign[i] = 0;
                }
            }
        }
        // ---- Phase 2. ----
        scratch.load_phase2_cost(problem);
        match scratch.primal(view, options)? {
            PrimalEnd::Unbounded => return Ok((LpOutcome::Unbounded, None)),
            PrimalEnd::Optimal => {}
        }
    }

    // Tighten the result with one final refactorization, then audit
    // feasibility (cheap O(nnz) insurance; a failure retreats to the
    // dense tableau).
    scratch.refactorize_and_recompute(view)?;
    if !verify_feasible(scratch, view) {
        return Err(Breakdown::Numerical);
    }

    let mut values = Vec::with_capacity(scratch.n_struct);
    for j in 0..scratch.n_struct {
        let mut v = scratch.x[j];
        if v.abs() <= F64_TOL {
            v = 0.0;
        }
        if scratch.up[j].is_finite() {
            v = v.clamp(scratch.lo[j], scratch.up[j]);
        } else {
            v = v.max(scratch.lo[j]);
        }
        values.push(v);
    }
    let flip = matches!(problem.sense(), Sense::Maximize);
    let mut minimized = 0.0f64;
    for (v, q) in problem.objective().terms() {
        let c = q.to_f64();
        minimized += (if flip { -c } else { c }) * values[v.index()];
    }
    let objective = if flip { -minimized } else { minimized };

    if let Some(fp) = print {
        scratch.fingerprint = fp;
        scratch.converged = true;
    }
    // A cold solve's caller never reads the basis (that is the point of
    // `Start::Cold`), so skip the snapshot allocation entirely.
    let warm_out = if matches!(start, Start::Cold) {
        None
    } else {
        Some(WarmBasis {
            status: scratch.status[..scratch.n].to_vec(),
            basis: scratch.basis.clone(),
        })
    };
    Ok((
        LpOutcome::Optimal(LpSolution { values, objective }),
        warm_out,
    ))
}

/// All-slack cold start: nonbasic structurals at their lower bounds, each
/// row's slack basic when the residual fits its bounds, and a widened
/// artificial otherwise.
fn cold_start(scratch: &mut LpScratch, view: &SparseView) -> Result<(), Breakdown> {
    let (m, n_struct) = (scratch.m, scratch.n_struct);
    for j in 0..scratch.n {
        if scratch.lo[j] == -INF {
            scratch.status[j] = Status::AtUpper;
            scratch.x[j] = scratch.up[j];
        } else {
            scratch.status[j] = Status::AtLower;
            scratch.x[j] = scratch.lo[j];
        }
    }
    // Row residuals with the structurals at their bounds.
    scratch.work_row[..m].copy_from_slice(&view.rhs);
    for j in 0..n_struct {
        let xj = scratch.x[j];
        if xj != 0.0 {
            let (s, e) = (view.col_off[j] as usize, view.col_off[j + 1] as usize);
            for k in s..e {
                scratch.work_row[view.col_row[k] as usize] -= view.col_val[k] * xj;
            }
        }
    }
    scratch.basis.clear();
    for i in 0..m {
        let r = scratch.work_row[i];
        let slack = n_struct + i;
        let art = n_struct + m + i;
        // Reset any artificial widening from a previous phase 1.
        scratch.lo[art] = 0.0;
        scratch.up[art] = 0.0;
        scratch.art_sign[i] = 0;
        let fits = r >= scratch.lo[slack] - F64_FEAS_TOL && r <= scratch.up[slack] + F64_FEAS_TOL;
        if fits {
            scratch.basis.push(slack as u32);
            scratch.status[slack] = Status::Basic;
            scratch.x[slack] = r;
        } else {
            // Slack pinned at zero (the finite bound of every slack
            // layout); the artificial absorbs the residual.
            scratch.status[slack] = if scratch.up[slack] == 0.0 {
                Status::AtUpper
            } else {
                Status::AtLower
            };
            scratch.x[slack] = 0.0;
            scratch.basis.push(art as u32);
            scratch.status[art] = Status::Basic;
            scratch.x[art] = r;
            if r > 0.0 {
                scratch.up[art] = INF;
                scratch.art_sign[i] = 1;
            } else {
                scratch.lo[art] = -INF;
                scratch.art_sign[i] = -1;
            }
        }
    }
    scratch.refactorize_and_recompute(view)
}

/// Installs a warm basis: statuses from the snapshot, nonbasic values at
/// their (possibly changed) bounds, basic values recomputed through a
/// fresh factorization.
fn install_warm(
    scratch: &mut LpScratch,
    view: &SparseView,
    warm: &WarmBasis,
) -> Result<(), Breakdown> {
    if warm.status.len() != scratch.n || warm.basis.len() != scratch.m {
        return Err(Breakdown::Numerical);
    }
    scratch.status.copy_from_slice(&warm.status);
    scratch.basis.clear();
    scratch.basis.extend_from_slice(&warm.basis);
    for j in 0..scratch.n {
        match scratch.status[j] {
            Status::Basic => {}
            Status::AtLower => {
                scratch.x[j] = if scratch.lo[j] == -INF {
                    0.0
                } else {
                    scratch.lo[j]
                };
            }
            Status::AtUpper => {
                scratch.x[j] = if scratch.up[j] == INF {
                    0.0
                } else {
                    scratch.up[j]
                };
            }
        }
    }
    scratch.refactorize_and_recompute(view)
}

/// Cheap post-solve feasibility audit of the converged point.
fn verify_feasible(scratch: &LpScratch, view: &SparseView) -> bool {
    for j in 0..scratch.n {
        let scale = 1.0 + scratch.x[j].abs();
        if scratch.lo[j].is_finite() && scratch.x[j] < scratch.lo[j] - F64_FEAS_TOL * scale {
            return false;
        }
        if scratch.up[j].is_finite() && scratch.x[j] > scratch.up[j] + F64_FEAS_TOL * scale {
            return false;
        }
    }
    for i in 0..scratch.m {
        let (s, e) = (view.row_off[i] as usize, view.row_off[i + 1] as usize);
        let mut act = 0.0;
        let mut scale = 1.0 + view.rhs[i].abs();
        for k in s..e {
            let term = view.row_val[k] * scratch.x[view.row_col[k] as usize];
            act += term;
            scale += term.abs();
        }
        let tol = F64_FEAS_TOL * scale;
        let ok = match view.relation[i] {
            Relation::Le => act <= view.rhs[i] + tol,
            Relation::Ge => act >= view.rhs[i] - tol,
            Relation::Eq => (act - view.rhs[i]).abs() <= tol,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// FNV-1a fingerprint of the complete solve input: dimensions, matrix
/// structure and values, relations, right-hand sides, objective, sense,
/// and every effective bound (base intersected with overrides). Equal
/// fingerprints mean the same problem, so reusing the converged basis is
/// observationally pure.
fn fingerprint(problem: &Problem, bounds: &BoundOverrides, view: &SparseView) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(problem.var_count() as u64).to_le_bytes());
    eat(&(view.relation.len() as u64).to_le_bytes());
    eat(&[matches!(problem.sense(), Sense::Maximize) as u8]);
    for &o in &view.row_off {
        eat(&o.to_le_bytes());
    }
    for &c in &view.row_col {
        eat(&c.to_le_bytes());
    }
    for &v in &view.row_val {
        eat(&v.to_bits().to_le_bytes());
    }
    for r in &view.relation {
        eat(&[match r {
            Relation::Le => 0u8,
            Relation::Ge => 1,
            Relation::Eq => 2,
        }]);
    }
    for &v in &view.rhs {
        eat(&v.to_bits().to_le_bytes());
    }
    for (v, q) in problem.objective().terms() {
        eat(&v.0.to_le_bytes());
        eat(&q.to_f64().to_bits().to_le_bytes());
    }
    for (j, info) in problem.vars().iter().enumerate() {
        let var = VarId(j as u32);
        let (lb, ub) = bounds.effective(var, info.upper);
        let lo = lb.to_f64();
        let up = ub.map_or(INF, |u| u.to_f64());
        eat(&lo.to_bits().to_le_bytes());
        eat(&up.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LinExpr;
    use crate::Rational;

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    /// Naive Gaussian-elimination determinant (column-major `m × m`).
    fn dense_determinant(a: &[f64], m: usize) -> f64 {
        let mut a = a.to_vec();
        let mut det = 1.0f64;
        for c in 0..m {
            let mut best = c;
            for r in c + 1..m {
                if a[c * m + r].abs() > a[c * m + best].abs() {
                    best = r;
                }
            }
            if a[c * m + best].abs() < 1e-12 {
                return 0.0;
            }
            if best != c {
                for j in 0..m {
                    a.swap(j * m + c, j * m + best);
                }
                det = -det;
            }
            let piv = a[c * m + c];
            det *= piv;
            for r in c + 1..m {
                let l = a[c * m + r] / piv;
                for j in c..m {
                    a[j * m + r] -= l * a[j * m + c];
                }
            }
        }
        det
    }

    /// Deterministic LCG for structured test matrices.
    pub(super) struct Lcg(pub(super) u64);
    impl Lcg {
        pub(super) fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        pub(super) fn pick(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Factorization sanity: ftran/btran against naive dense arithmetic
    /// on random sparse nonsingular matrices.
    #[test]
    fn factorization_matches_dense_solves() {
        let mut rng = Lcg(42);
        for trial in 0..60 {
            let m = 3 + (trial % 10);
            // Permutation backbone (guaranteed nonsingular) plus noise.
            let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
            let mut perm: Vec<usize> = (0..m).collect();
            for i in (1..m).rev() {
                let j = rng.pick(i + 1);
                perm.swap(i, j);
            }
            for (p, col) in cols.iter_mut().enumerate() {
                col.push((perm[p], 1.0 + rng.pick(4) as f64));
            }
            for _ in 0..m {
                let p = rng.pick(m);
                let row = rng.pick(m);
                if !cols[p].iter().any(|&(rr, _)| rr == row) {
                    cols[p].push((row, 1.0 + rng.pick(3) as f64));
                }
            }
            // Pack as a Problem whose columns are all structural.
            let mut prob = Problem::new();
            let vars: Vec<_> = (0..m).map(|i| prob.add_var(format!("x{i}"))).collect();
            let mut rows: Vec<LinExpr> = vec![LinExpr::new(); m];
            for (pcol, col) in cols.iter().enumerate() {
                for &(row, val) in col {
                    rows[row].add_term(vars[pcol], Rational::new(val as i128, 1));
                }
            }
            for row in rows {
                prob.add_constraint(row, Relation::Eq, r(0), "r");
            }
            let view = prob.sparse_view();

            let mut dense = vec![0.0f64; m * m];
            for (pcol, col) in cols.iter().enumerate() {
                for &(row, val) in col {
                    dense[pcol * m + row] = val;
                }
            }
            // The random noise can cancel the permutation backbone; skip
            // genuinely singular draws (checked against a dense
            // elimination, so the skip never hides a factorization bug).
            if dense_determinant(&dense, m).abs() < 1e-6 {
                continue;
            }

            let mut fact = Factor::default();
            let basis: Vec<u32> = (0..m as u32).collect();
            fact.refactorize(view, m, &basis).expect("nonsingular");
            let rhs: Vec<f64> = (0..m).map(|_| rng.pick(9) as f64 - 4.0).collect();

            // B z = rhs.
            let mut rr = rhs.clone();
            let mut z = vec![0.0; m];
            fact.ftran(&mut rr, &mut z);
            for row in 0..m {
                let mut acc = 0.0;
                for pcol in 0..m {
                    acc += dense[pcol * m + row] * z[pcol];
                }
                assert!(
                    (acc - rhs[row]).abs() < 1e-8,
                    "trial {trial}: ftran row {row}: {acc} vs {} cols={cols:?} pivots={:?} bump={:?}",
                    rhs[row],
                    fact.pivots,
                    fact.bump_rows,
                );
            }

            // Bᵀ y = c.
            let c: Vec<f64> = (0..m).map(|_| rng.pick(9) as f64 - 4.0).collect();
            let mut cc = c.clone();
            let mut y = vec![0.0; m];
            fact.btran(&mut cc, &mut y);
            for pcol in 0..m {
                let mut acc = 0.0;
                for row in 0..m {
                    acc += dense[pcol * m + row] * y[row];
                }
                assert!(
                    (acc - c[pcol]).abs() < 1e-8,
                    "trial {trial}: btran col {pcol}: {acc} vs {}",
                    c[pcol]
                );
            }
        }
    }

    #[test]
    fn revised_solves_the_classic_fixture() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6 -> 2.8 at (1.6, 1.2).
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut c1 = LinExpr::new();
        c1.add_term(x, r(1)).add_term(y, r(2));
        p.add_constraint(c1, Relation::Le, r(4), "c1");
        let mut c2 = LinExpr::new();
        c2.add_term(x, r(3)).add_term(y, r(1));
        p.add_constraint(c2, Relation::Le, r(6), "c2");
        let mut obj = LinExpr::new();
        obj.add_term(x, r(1)).add_term(y, r(1));
        p.maximize(obj);
        let mut scratch = LpScratch::new();
        let (out, warm) = solve_f64(
            &p,
            &BoundOverrides::none(),
            &SimplexOptions::default(),
            &mut scratch,
            Start::Auto,
        )
        .unwrap();
        match out {
            LpOutcome::Optimal(sol) => {
                assert!((sol.objective - 2.8).abs() < 1e-7, "{}", sol.objective);
                assert!((sol.values[0] - 1.6).abs() < 1e-7);
                assert!((sol.values[1] - 1.2).abs() < 1e-7);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        assert!(warm.is_some());
    }

    #[test]
    fn warm_restart_after_bound_change_matches_cold() {
        // min x + y s.t. x + y >= 3 -> 3; then force x >= 2.5.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut c = LinExpr::new();
        c.add_term(x, r(1)).add_term(y, r(1));
        p.add_constraint(c.clone(), Relation::Ge, r(3), "demand");
        p.minimize(c);
        let mut scratch = LpScratch::new();
        let (out, warm) = solve_f64(
            &p,
            &BoundOverrides::none(),
            &SimplexOptions::default(),
            &mut scratch,
            Start::Auto,
        )
        .unwrap();
        let warm = warm.expect("optimal");
        assert!(matches!(out, LpOutcome::Optimal(_)));

        let mut tight = BoundOverrides::none();
        tight.tighten_lower(x, Rational::new(5, 2));
        let (warm_out, _) = solve_f64(
            &p,
            &tight,
            &SimplexOptions::default(),
            &mut scratch,
            Start::Warm(&warm),
        )
        .unwrap();
        let (cold_out, _) = solve_f64(
            &p,
            &tight,
            &SimplexOptions::default(),
            &mut LpScratch::new(),
            Start::Cold,
        )
        .unwrap();
        match (warm_out, cold_out) {
            (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                assert!((a.objective - b.objective).abs() < 1e-7);
                assert!((a.objective - 3.0).abs() < 1e-7);
            }
            other => panic!("expected optimal pair, got {other:?}"),
        }
    }

    #[test]
    fn warm_restart_detects_infeasible_child() {
        // x <= 4 base; the child forces x >= 5.
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.set_upper(x, r(4));
        p.minimize(LinExpr::var(x));
        let mut scratch = LpScratch::new();
        let (_, warm) = solve_f64(
            &p,
            &BoundOverrides::none(),
            &SimplexOptions::default(),
            &mut scratch,
            Start::Auto,
        )
        .unwrap();
        let mut b = BoundOverrides::none();
        b.tighten_lower(x, r(5));
        let (out, _) = solve_f64(
            &p,
            &b,
            &SimplexOptions::default(),
            &mut scratch,
            warm.as_ref().map_or(Start::Auto, Start::Warm),
        )
        .unwrap();
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn fingerprint_reuse_is_observationally_pure() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let mut c = LinExpr::new();
        c.add_term(x, r(2)).add_term(y, r(3));
        p.add_constraint(c, Relation::Le, r(12), "cap");
        let mut obj = LinExpr::new();
        obj.add_term(x, r(1)).add_term(y, r(2));
        p.maximize(obj);
        let mut scratch = LpScratch::new();
        let opts = SimplexOptions::default();
        let (first, _) = solve_f64(
            &p,
            &BoundOverrides::none(),
            &opts,
            &mut scratch,
            Start::Auto,
        )
        .unwrap();
        let (second, _) = solve_f64(
            &p,
            &BoundOverrides::none(),
            &opts,
            &mut scratch,
            Start::Auto,
        )
        .unwrap();
        assert_eq!(first, second);
    }
}
