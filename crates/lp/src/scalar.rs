//! The scalar abstraction that lets one simplex implementation run in fast
//! `f64` arithmetic or exact [`Rational`] arithmetic.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::problem::Problem;
use crate::revised::{self, LpScratch};
use crate::simplex::{solve_dense, BoundOverrides, LpError, LpOutcome, SimplexOptions};
use crate::Rational;

/// A field scalar usable by the simplex kernel.
///
/// Implemented by `f64` (fast, tolerance-based comparisons) and by
/// [`Rational`] (exact). The trait is sealed: the simplex kernel's
/// correctness argument only covers these two instantiations.
pub trait Scalar:
    Clone
    + PartialOrd
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + private::Sealed
{
    /// Whether arithmetic in this scalar is exact (no tolerances needed).
    const EXACT: bool;
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact conversion from problem data.
    fn from_rational(r: Rational) -> Self;
    /// Whether `|self|` is within the zero tolerance.
    fn is_zero_tol(&self) -> bool;
    /// Whether `self` exceeds the positive tolerance.
    fn is_pos_tol(&self) -> bool;
    /// Whether `self` is below the negative tolerance.
    fn is_neg_tol(&self) -> bool {
        (-self.clone()).is_pos_tol()
    }
    /// Lossy view as `f64` (for diagnostics and branching decisions).
    fn to_f64(&self) -> f64;

    /// Dispatches to this instantiation's LP solver: the sparse revised
    /// simplex for `f64`, the exact dense tableau for [`Rational`] (which
    /// ignores `scratch`). Not part of the supported API surface — call
    /// [`solve_lp`](crate::solve_lp) /
    /// [`solve_lp_with_scratch`](crate::solve_lp_with_scratch) instead.
    #[doc(hidden)]
    fn solve_with_scratch(
        problem: &Problem,
        bounds: &BoundOverrides,
        options: &SimplexOptions,
        scratch: &mut LpScratch,
    ) -> Result<LpOutcome<Self>, LpError>
    where
        Self: Sized;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for crate::Rational {}
}

/// Comparison tolerance for the `f64` instantiation: values within this of
/// zero are treated as zero by [`Scalar::is_zero_tol`], and reduced costs /
/// bound comparisons use it as the strict-inequality margin.
pub const F64_TOL: f64 = 1e-9;

/// Primal feasibility tolerance of the `f64` solvers: a basic value may
/// stray this far outside its bounds (and a phase-1 infeasibility sum this
/// far above zero) before it counts as a real violation. Also the clamp
/// threshold for the numerical dust the dense tableau's pivots leave on
/// right-hand sides — the former inline `1e-7` magic number.
pub const F64_FEAS_TOL: f64 = 1e-7;

/// Minimum magnitude an `f64` pivot element may have: ratio tests and the
/// basis factorization reject pivots smaller than this as numerically
/// unreliable.
pub const F64_PIVOT_TOL: f64 = 1e-8;

/// Default distance from the nearest integer at which an `f64` relaxation
/// value counts as fractional in branch-and-bound
/// ([`IlpOptions::integrality_tol`](crate::IlpOptions::integrality_tol)).
pub const DEFAULT_INTEGRALITY_TOL: f64 = 1e-6;

impl Scalar for f64 {
    const EXACT: bool = false;
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_rational(r: Rational) -> Self {
        r.to_f64()
    }
    fn is_zero_tol(&self) -> bool {
        self.abs() <= F64_TOL
    }
    fn is_pos_tol(&self) -> bool {
        *self > F64_TOL
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn solve_with_scratch(
        problem: &Problem,
        bounds: &BoundOverrides,
        options: &SimplexOptions,
        scratch: &mut LpScratch,
    ) -> Result<LpOutcome<f64>, LpError> {
        revised::solve_f64(problem, bounds, options, scratch, revised::Start::Auto)
            .map(|(out, _)| out)
    }
}

impl Scalar for Rational {
    const EXACT: bool = true;
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn from_rational(r: Rational) -> Self {
        r
    }
    fn is_zero_tol(&self) -> bool {
        self.is_zero()
    }
    fn is_pos_tol(&self) -> bool {
        self.is_positive()
    }
    fn to_f64(&self) -> f64 {
        Rational::to_f64(*self)
    }
    fn solve_with_scratch(
        problem: &Problem,
        bounds: &BoundOverrides,
        options: &SimplexOptions,
        _scratch: &mut LpScratch,
    ) -> Result<LpOutcome<Rational>, LpError> {
        solve_dense::<Rational>(problem, bounds, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_tolerances() {
        assert!(0.0f64.is_zero_tol());
        assert!((F64_TOL / 2.0).is_zero_tol());
        assert!(1.0f64.is_pos_tol());
        assert!((-1.0f64).is_neg_tol());
        assert!(!(F64_TOL / 2.0).is_pos_tol());
    }

    #[test]
    fn rational_is_exact() {
        assert!(Rational::ZERO.is_zero_tol());
        assert!(!Rational::new(1, 1_000_000_000_000).is_zero_tol());
        assert!(Rational::new(1, 1_000_000_000_000).is_pos_tol());
    }
}
