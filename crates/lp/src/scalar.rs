//! The scalar abstraction that lets one simplex implementation run in fast
//! `f64` arithmetic or exact [`Rational`] arithmetic.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::Rational;

/// A field scalar usable by the simplex kernel.
///
/// Implemented by `f64` (fast, tolerance-based comparisons) and by
/// [`Rational`] (exact). The trait is sealed: the simplex kernel's
/// correctness argument only covers these two instantiations.
pub trait Scalar:
    Clone
    + PartialOrd
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + private::Sealed
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact conversion from problem data.
    fn from_rational(r: Rational) -> Self;
    /// Whether `|self|` is within the zero tolerance.
    fn is_zero_tol(&self) -> bool;
    /// Whether `self` exceeds the positive tolerance.
    fn is_pos_tol(&self) -> bool;
    /// Whether `self` is below the negative tolerance.
    fn is_neg_tol(&self) -> bool {
        (-self.clone()).is_pos_tol()
    }
    /// Lossy view as `f64` (for diagnostics and branching decisions).
    fn to_f64(&self) -> f64;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for crate::Rational {}
}

/// Comparison tolerance for the `f64` instantiation.
pub const F64_TOL: f64 = 1e-9;

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_rational(r: Rational) -> Self {
        r.to_f64()
    }
    fn is_zero_tol(&self) -> bool {
        self.abs() <= F64_TOL
    }
    fn is_pos_tol(&self) -> bool {
        *self > F64_TOL
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn from_rational(r: Rational) -> Self {
        r
    }
    fn is_zero_tol(&self) -> bool {
        self.is_zero()
    }
    fn is_pos_tol(&self) -> bool {
        self.is_positive()
    }
    fn to_f64(&self) -> f64 {
        Rational::to_f64(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_tolerances() {
        assert!(0.0f64.is_zero_tol());
        assert!((F64_TOL / 2.0).is_zero_tol());
        assert!(1.0f64.is_pos_tol());
        assert!((-1.0f64).is_neg_tol());
        assert!(!(F64_TOL / 2.0).is_pos_tol());
    }

    #[test]
    fn rational_is_exact() {
        assert!(Rational::ZERO.is_zero_tol());
        assert!(!Rational::new(1, 1_000_000_000_000).is_zero_tol());
        assert!(Rational::new(1, 1_000_000_000_000).is_pos_tol());
    }
}
