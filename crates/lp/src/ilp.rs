//! Branch-and-bound integer programming on top of the simplex kernel.
//!
//! The default configuration solves LP relaxations in `f64` and *exactly
//! verifies* every integer candidate with rational arithmetic before
//! accepting it, falling back to the exact simplex on the rare node where
//! rounding breaks feasibility. This gives fast solves with an exactness
//! guarantee on the returned solution.

use std::time::{Duration, Instant};

use crate::problem::{Problem, VarId};
use crate::simplex::{solve_lp, BoundOverrides, LpError, LpOutcome, SimplexOptions};
use crate::Rational;

/// Configuration for the branch-and-bound ILP solver.
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Solve node relaxations with the exact rational simplex instead of
    /// `f64`. Slower; useful for small instances and cross-validation.
    pub exact_lp: bool,
    /// Hard cap on explored branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock limit for the whole solve.
    pub time_limit: Option<Duration>,
    /// Simplex kernel options.
    pub simplex: SimplexOptions,
    /// Distance from the nearest integer at which an `f64` value counts as
    /// fractional.
    pub integrality_tol: f64,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            exact_lp: false,
            max_nodes: 200_000,
            time_limit: None,
            simplex: SimplexOptions::default(),
            integrality_tol: 1e-6,
        }
    }
}

/// Outcome of an ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    /// An optimal integer solution (exactly verified).
    Optimal(IlpSolution),
    /// A feasible integer solution found, but optimality was not proven
    /// before a node/time limit was hit.
    Feasible(IlpSolution),
    /// No integer solution exists.
    Infeasible,
    /// The relaxation (and hence the ILP) is unbounded.
    Unbounded,
}

impl IlpOutcome {
    /// The solution, if one was found.
    pub fn solution(&self) -> Option<&IlpSolution> {
        match self {
            IlpOutcome::Optimal(s) | IlpOutcome::Feasible(s) => Some(s),
            _ => None,
        }
    }
}

/// An integer solution with exact rational values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlpSolution {
    /// One exact value per variable; integer-constrained variables hold
    /// integers.
    pub values: Vec<Rational>,
    /// Exact objective value in the problem's original sense.
    pub objective: Rational,
}

impl IlpSolution {
    /// The value of an integer variable as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the stored value is not an integer or does not fit `i64`.
    pub fn int_value(&self, var: VarId) -> i64 {
        let v = self.values[var.index()];
        assert!(v.is_integer(), "{var} = {v} is not integral");
        i64::try_from(v.numer()).expect("value fits i64")
    }
}

/// Errors from the ILP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// The simplex kernel failed.
    Lp(LpError),
    /// A node or time limit was hit before any integer solution was found.
    LimitWithoutSolution {
        /// Nodes explored when the limit hit.
        nodes: usize,
    },
}

impl std::fmt::Display for IlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IlpError::Lp(e) => write!(f, "lp kernel: {e}"),
            IlpError::LimitWithoutSolution { nodes } => {
                write!(
                    f,
                    "limit reached after {nodes} nodes with no integer solution"
                )
            }
        }
    }
}

impl std::error::Error for IlpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IlpError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for IlpError {
    fn from(e: LpError) -> Self {
        IlpError::Lp(e)
    }
}

/// Solves a mixed-integer program by branch-and-bound.
///
/// # Errors
///
/// Returns [`IlpError::Lp`] if the simplex kernel fails and
/// [`IlpError::LimitWithoutSolution`] if limits expire before any integer
/// solution is found.
///
/// # Examples
///
/// ```
/// use wsp_lp::{solve_ilp, IlpOptions, IlpOutcome, LinExpr, Problem, Rational, Relation};
///
/// // Knapsack: max 5a + 4b s.t. 3a + 2b <= 6, a,b integer -> a=0,b=3: 12.
/// let mut p = Problem::new();
/// let a = p.add_int_var("a");
/// let b = p.add_int_var("b");
/// let mut cap = LinExpr::new();
/// cap.add_term(a, Rational::from(3)).add_term(b, Rational::from(2));
/// p.add_constraint(cap, Relation::Le, Rational::from(6), "cap");
/// let mut obj = LinExpr::new();
/// obj.add_term(a, Rational::from(5)).add_term(b, Rational::from(4));
/// p.maximize(obj);
///
/// match solve_ilp(&p, &IlpOptions::default())? {
///     IlpOutcome::Optimal(sol) => assert_eq!(sol.objective, Rational::from(12)),
///     other => panic!("expected optimal, got {other:?}"),
/// }
/// # Ok::<(), wsp_lp::IlpError>(())
/// ```
pub fn solve_ilp(problem: &Problem, options: &IlpOptions) -> Result<IlpOutcome, IlpError> {
    let start = Instant::now();
    let minimize = matches!(problem.sense(), crate::problem::Sense::Minimize);
    let int_vars: Vec<VarId> = problem.integer_vars().collect();
    let all_integer = int_vars.len() == problem.var_count();

    let mut stack: Vec<BoundOverrides> = vec![BoundOverrides::none()];
    let mut incumbent: Option<IlpSolution> = None;
    let mut nodes = 0usize;
    let mut limit_hit = false;

    while let Some(bounds) = stack.pop() {
        if nodes >= options.max_nodes
            || options.time_limit.is_some_and(|lim| start.elapsed() >= lim)
        {
            limit_hit = true;
            break;
        }
        nodes += 1;

        let node = if options.exact_lp {
            solve_node_exact(problem, &bounds, options)?
        } else {
            solve_node_f64(problem, &bounds, options)?
        };

        let (values, lp_obj) = match node {
            NodeOutcome::Infeasible => continue,
            NodeOutcome::Unbounded => {
                // Only the root relaxation can prove the ILP unbounded.
                if nodes == 1 {
                    return Ok(IlpOutcome::Unbounded);
                }
                continue;
            }
            NodeOutcome::Solved { values, objective } => (values, objective),
        };

        // Bound pruning against the incumbent (objective sense-normalized:
        // we compare in the minimization direction).
        if let Some(inc) = &incumbent {
            let bound = if minimize { lp_obj } else { -lp_obj };
            let inc_obj = if minimize {
                inc.objective.to_f64()
            } else {
                -inc.objective.to_f64()
            };
            if bound >= inc_obj - 1e-9 {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch: Option<(VarId, f64, f64)> = None; // (var, value, frac-distance)
        for &v in &int_vars {
            let x = values[v.index()];
            let dist = (x - x.round()).abs();
            if dist > options.integrality_tol {
                match branch {
                    Some((_, _, best)) if dist <= best => {}
                    _ => branch = Some((v, x, dist)),
                }
            }
        }

        match branch {
            None => {
                // Integer candidate: build exact values and verify.
                let exact = exact_candidate(problem, &values, &int_vars, all_integer);
                match exact {
                    Some(sol) => {
                        let better = match &incumbent {
                            None => true,
                            Some(inc) => {
                                if minimize {
                                    sol.objective < inc.objective
                                } else {
                                    sol.objective > inc.objective
                                }
                            }
                        };
                        if better {
                            incumbent = Some(sol);
                        }
                    }
                    None => {
                        // Rounding broke exact feasibility: redo this node
                        // with the exact simplex.
                        let exact_node = solve_node_exact_rational(problem, &bounds, options)?;
                        if let Some((vals, frac)) = exact_node_candidate(&int_vars, exact_node) {
                            match frac {
                                None => {
                                    let obj = problem.objective().eval(&vals);
                                    let sol = IlpSolution {
                                        values: vals,
                                        objective: obj,
                                    };
                                    let better = match &incumbent {
                                        None => true,
                                        Some(inc) => {
                                            if minimize {
                                                sol.objective < inc.objective
                                            } else {
                                                sol.objective > inc.objective
                                            }
                                        }
                                    };
                                    if better {
                                        incumbent = Some(sol);
                                    }
                                }
                                Some((v, val)) => {
                                    push_children(&mut stack, &bounds, v, val);
                                }
                            }
                        }
                    }
                }
            }
            Some((v, x, _)) => {
                push_children(&mut stack, &bounds, v, Rational::from(x.floor() as i64));
            }
        }
    }

    match incumbent {
        Some(sol) if limit_hit => Ok(IlpOutcome::Feasible(sol)),
        Some(sol) => Ok(IlpOutcome::Optimal(sol)),
        None if limit_hit => Err(IlpError::LimitWithoutSolution { nodes }),
        None => Ok(IlpOutcome::Infeasible),
    }
}

enum NodeOutcome {
    Solved { values: Vec<f64>, objective: f64 },
    Infeasible,
    Unbounded,
}

fn solve_node_f64(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &IlpOptions,
) -> Result<NodeOutcome, IlpError> {
    Ok(match solve_lp::<f64>(problem, bounds, &options.simplex)? {
        LpOutcome::Optimal(sol) => NodeOutcome::Solved {
            values: sol.values,
            objective: sol.objective,
        },
        LpOutcome::Infeasible => NodeOutcome::Infeasible,
        LpOutcome::Unbounded => NodeOutcome::Unbounded,
    })
}

fn solve_node_exact(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &IlpOptions,
) -> Result<NodeOutcome, IlpError> {
    Ok(
        match solve_lp::<Rational>(problem, bounds, &options.simplex)? {
            LpOutcome::Optimal(sol) => NodeOutcome::Solved {
                values: sol.values.iter().map(|v| v.to_f64()).collect(),
                objective: sol.objective.to_f64(),
            },
            LpOutcome::Infeasible => NodeOutcome::Infeasible,
            LpOutcome::Unbounded => NodeOutcome::Unbounded,
        },
    )
}

fn solve_node_exact_rational(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &IlpOptions,
) -> Result<Option<Vec<Rational>>, IlpError> {
    Ok(
        match solve_lp::<Rational>(problem, bounds, &options.simplex)? {
            LpOutcome::Optimal(sol) => Some(sol.values),
            _ => None,
        },
    )
}

/// Classifies an exact node solution: integral (no fractional int var) or
/// the first fractional variable to branch on.
#[allow(clippy::type_complexity)]
fn exact_node_candidate(
    int_vars: &[VarId],
    values: Option<Vec<Rational>>,
) -> Option<(Vec<Rational>, Option<(VarId, Rational)>)> {
    let vals = values?;
    for &v in int_vars {
        let x = vals[v.index()];
        if !x.is_integer() {
            let floor = Rational::from(x.floor());
            return Some((vals, Some((v, floor))));
        }
    }
    Some((vals, None))
}

/// Rounds integer vars, keeps continuous vars approximate, and verifies the
/// point exactly when the problem is purely integer. Returns `None` if the
/// rounded point is not exactly feasible.
fn exact_candidate(
    problem: &Problem,
    values: &[f64],
    int_vars: &[VarId],
    all_integer: bool,
) -> Option<IlpSolution> {
    let mut exact: Vec<Rational> = values
        .iter()
        .map(|&v| {
            // Rationalize with a fixed denominator; good enough for the
            // continuous vars we never branch on.
            Rational::new((v * 1_000_000.0).round() as i128, 1_000_000)
        })
        .collect();
    for &v in int_vars {
        exact[v.index()] = Rational::from(values[v.index()].round() as i64);
    }
    if all_integer && !problem.violations(&exact).is_empty() {
        return None;
    }
    let objective = problem.objective().eval(&exact);
    Some(IlpSolution {
        values: exact,
        objective,
    })
}

fn push_children(
    stack: &mut Vec<BoundOverrides>,
    bounds: &BoundOverrides,
    var: VarId,
    floor: Rational,
) {
    // Left child: var <= floor.
    let mut left = bounds.clone();
    let new_up = match left.upper.get(&var) {
        Some(&u) => u.min(floor),
        None => floor,
    };
    left.upper.insert(var, new_up);
    // Right child: var >= floor + 1.
    let mut right = bounds.clone();
    let lo = floor + Rational::ONE;
    let new_lo = match right.lower.get(&var) {
        Some(&l) => l.max(lo),
        None => lo,
    };
    right.lower.insert(var, new_lo);
    // DFS: explore the "round down" side first (flows are minimized).
    stack.push(right);
    stack.push(left);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinExpr, Relation};

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn knapsack_small() {
        // max 8a + 11b + 6c s.t. 5a + 7b + 4c <= 14, binary.
        // Best is a+b: weight 12 <= 14, value 19 (a+b+c weighs 16).
        let mut p = Problem::new();
        let a = p.add_int_var("a");
        let b = p.add_int_var("b");
        let c = p.add_int_var("c");
        for v in [a, b, c] {
            p.set_upper(v, r(1));
        }
        let mut cap = LinExpr::new();
        cap.add_term(a, r(5)).add_term(b, r(7)).add_term(c, r(4));
        p.add_constraint(cap, Relation::Le, r(14), "cap");
        let mut obj = LinExpr::new();
        obj.add_term(a, r(8)).add_term(b, r(11)).add_term(c, r(6));
        p.maximize(obj);
        match solve_ilp(&p, &IlpOptions::default()).unwrap() {
            IlpOutcome::Optimal(sol) => {
                assert_eq!(sol.objective, r(19));
                assert_eq!(sol.int_value(a), 1);
                assert_eq!(sol.int_value(b), 1);
                assert_eq!(sol.int_value(c), 0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn fractional_lp_rounds_down_via_branching() {
        // max x s.t. 2x <= 5, x integer -> x = 2 (LP gives 2.5).
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let mut c = LinExpr::new();
        c.add_term(x, r(2));
        p.add_constraint(c, Relation::Le, r(5), "c");
        p.maximize(LinExpr::var(x));
        match solve_ilp(&p, &IlpOptions::default()).unwrap() {
            IlpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(2)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_integer_gap() {
        // 2x = 3 has an LP solution (1.5) but no integer solution.
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let mut c = LinExpr::new();
        c.add_term(x, r(2));
        p.add_constraint(c, Relation::Eq, r(3), "c");
        p.minimize(LinExpr::var(x));
        assert_eq!(
            solve_ilp(&p, &IlpOptions::default()).unwrap(),
            IlpOutcome::Infeasible
        );
    }

    #[test]
    fn unbounded_integer_program() {
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        p.maximize(LinExpr::var(x));
        assert_eq!(
            solve_ilp(&p, &IlpOptions::default()).unwrap(),
            IlpOutcome::Unbounded
        );
    }

    #[test]
    fn exact_lp_mode_agrees() {
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let y = p.add_int_var("y");
        let mut c = LinExpr::new();
        c.add_term(x, r(3)).add_term(y, r(5));
        p.add_constraint(c, Relation::Le, r(19), "cap");
        let mut obj = LinExpr::new();
        obj.add_term(x, r(2)).add_term(y, r(3));
        p.maximize(obj);
        let fast = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let exact = solve_ilp(
            &p,
            &IlpOptions {
                exact_lp: true,
                ..IlpOptions::default()
            },
        )
        .unwrap();
        let f = fast.solution().unwrap().objective;
        let e = exact.solution().unwrap().objective;
        assert_eq!(f, e);
    }

    #[test]
    fn node_limit_reports_feasible_or_error() {
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let mut c = LinExpr::new();
        c.add_term(x, r(2));
        p.add_constraint(c, Relation::Le, r(5), "c");
        p.maximize(LinExpr::var(x));
        // With a 1-node limit we at least explored the root; no candidate yet
        // (root is fractional), so expect LimitWithoutSolution.
        let out = solve_ilp(
            &p,
            &IlpOptions {
                max_nodes: 1,
                ..IlpOptions::default()
            },
        );
        assert!(matches!(out, Err(IlpError::LimitWithoutSolution { .. })));
    }

    #[test]
    fn equality_system_integer_solution() {
        // x + y = 10, x - y = 4 -> (7, 3).
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let y = p.add_int_var("y");
        let mut c1 = LinExpr::new();
        c1.add_term(x, r(1)).add_term(y, r(1));
        p.add_constraint(c1, Relation::Eq, r(10), "sum");
        let mut c2 = LinExpr::new();
        c2.add_term(x, r(1)).add_term(y, r(-1));
        p.add_constraint(c2, Relation::Eq, r(4), "diff");
        p.minimize(LinExpr::new());
        match solve_ilp(&p, &IlpOptions::default()).unwrap() {
            IlpOutcome::Optimal(sol) => {
                assert_eq!(sol.int_value(x), 7);
                assert_eq!(sol.int_value(y), 3);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
