//! Branch-and-bound integer programming on top of the simplex kernel.
//!
//! The default configuration solves LP relaxations in `f64` with the
//! sparse revised simplex and *exactly verifies* every integer candidate
//! with rational arithmetic before accepting it, falling back to the exact
//! simplex on the rare node where rounding breaks feasibility. This gives
//! fast solves with an exactness guarantee on the returned solution.
//!
//! Node relaxations are **warm-started**: each child inherits its parent's
//! optimal basis and repairs the one changed bound with a dual-simplex
//! cleanup instead of re-running two-phase simplex from scratch. The
//! exploration order and every per-node decision are pure functions of the
//! problem, so warm starts never change the returned solution run to run.

use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::problem::{Problem, Relation, VarId};
use crate::revised::{self, LpScratch, Start, WarmBasis};
use crate::scalar::{DEFAULT_INTEGRALITY_TOL, F64_FEAS_TOL};
use crate::simplex::{solve_lp, BoundOverrides, LpError, LpOutcome, SimplexOptions};
use crate::Rational;

/// Configuration for the branch-and-bound ILP solver.
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Solve node relaxations with the exact rational simplex instead of
    /// `f64`. Slower; useful for small instances and cross-validation.
    pub exact_lp: bool,
    /// Hard cap on explored branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock limit for the whole solve.
    pub time_limit: Option<Duration>,
    /// Simplex kernel options.
    pub simplex: SimplexOptions,
    /// Distance from the nearest integer at which an `f64` value counts
    /// as fractional (default
    /// [`DEFAULT_INTEGRALITY_TOL`](crate::DEFAULT_INTEGRALITY_TOL)).
    /// Incumbent pruning uses a separate, fixed slack proportional to
    /// the solver's feasibility tolerance.
    pub integrality_tol: f64,
    /// Warm-start child node relaxations from the parent's optimal basis
    /// via a dual-simplex cleanup (default `true`; only meaningful on the
    /// `f64` path). Disabling forces every node through a genuinely cold
    /// two-phase solve — no parent basis, and no fingerprint-gated basis
    /// reuse from a shared scratch either — the configuration the
    /// warm-vs-cold equivalence tests compare against.
    pub warm_start: bool,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            exact_lp: false,
            max_nodes: 200_000,
            time_limit: None,
            simplex: SimplexOptions::default(),
            integrality_tol: DEFAULT_INTEGRALITY_TOL,
            warm_start: true,
        }
    }
}

/// Preallocated workspace for [`solve_ilp_with_scratch`]: the LP scratch
/// (basis factors, pricing workspace) every node relaxation reuses.
///
/// Owned by `wsp_core::Pipeline` (one per evaluation thread) so
/// back-to-back flow syntheses allocate only their outputs. Reuse never
/// changes results — see [`LpScratch`].
#[derive(Debug, Default)]
pub struct IlpScratch {
    /// The shared LP workspace.
    pub lp: LpScratch,
}

impl IlpScratch {
    /// A fresh scratch; arrays grow on first use.
    pub fn new() -> Self {
        IlpScratch::default()
    }
}

/// Outcome of an ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    /// An optimal integer solution (exactly verified).
    Optimal(IlpSolution),
    /// A feasible integer solution found, but optimality was not proven
    /// before a node/time limit was hit.
    Feasible(IlpSolution),
    /// No integer solution exists.
    Infeasible,
    /// The relaxation (and hence the ILP) is unbounded.
    Unbounded,
}

impl IlpOutcome {
    /// The solution, if one was found.
    pub fn solution(&self) -> Option<&IlpSolution> {
        match self {
            IlpOutcome::Optimal(s) | IlpOutcome::Feasible(s) => Some(s),
            _ => None,
        }
    }
}

/// An integer solution with exact rational values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlpSolution {
    /// One exact value per variable; integer-constrained variables hold
    /// integers.
    pub values: Vec<Rational>,
    /// Exact objective value in the problem's original sense.
    pub objective: Rational,
}

impl IlpSolution {
    /// The value of an integer variable as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the stored value is not an integer or does not fit `i64`.
    pub fn int_value(&self, var: VarId) -> i64 {
        let v = self.values[var.index()];
        assert!(v.is_integer(), "{var} = {v} is not integral");
        i64::try_from(v.numer()).expect("value fits i64")
    }
}

/// Errors from the ILP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// The simplex kernel failed.
    Lp(LpError),
    /// A node or time limit was hit before any integer solution was found.
    LimitWithoutSolution {
        /// Nodes explored when the limit hit.
        nodes: usize,
    },
}

impl std::fmt::Display for IlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IlpError::Lp(e) => write!(f, "lp kernel: {e}"),
            IlpError::LimitWithoutSolution { nodes } => {
                write!(
                    f,
                    "limit reached after {nodes} nodes with no integer solution"
                )
            }
        }
    }
}

impl std::error::Error for IlpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IlpError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for IlpError {
    fn from(e: LpError) -> Self {
        IlpError::Lp(e)
    }
}

/// Solves a mixed-integer program by branch-and-bound.
///
/// # Errors
///
/// Returns [`IlpError::Lp`] if the simplex kernel fails and
/// [`IlpError::LimitWithoutSolution`] if limits expire before any integer
/// solution is found.
///
/// # Examples
///
/// ```
/// use wsp_lp::{solve_ilp, IlpOptions, IlpOutcome, LinExpr, Problem, Rational, Relation};
///
/// // Knapsack: max 5a + 4b s.t. 3a + 2b <= 6, a,b integer -> a=0,b=3: 12.
/// let mut p = Problem::new();
/// let a = p.add_int_var("a");
/// let b = p.add_int_var("b");
/// let mut cap = LinExpr::new();
/// cap.add_term(a, Rational::from(3)).add_term(b, Rational::from(2));
/// p.add_constraint(cap, Relation::Le, Rational::from(6), "cap");
/// let mut obj = LinExpr::new();
/// obj.add_term(a, Rational::from(5)).add_term(b, Rational::from(4));
/// p.maximize(obj);
///
/// match solve_ilp(&p, &IlpOptions::default())? {
///     IlpOutcome::Optimal(sol) => assert_eq!(sol.objective, Rational::from(12)),
///     other => panic!("expected optimal, got {other:?}"),
/// }
/// # Ok::<(), wsp_lp::IlpError>(())
/// ```
pub fn solve_ilp(problem: &Problem, options: &IlpOptions) -> Result<IlpOutcome, IlpError> {
    solve_ilp_with_scratch(problem, options, &mut IlpScratch::new())
}

/// One branch-and-bound node: the bound overrides plus the parent's
/// converged basis (absent at the root or when warm starts are off) and
/// the branching provenance feeding the pseudocost statistics.
struct Node {
    bounds: BoundOverrides,
    /// Shared with the sibling (and the probe solves): a basis snapshot
    /// can be megabytes on large flows, so nodes hold an `Rc` instead of
    /// deep clones.
    warm: Option<Rc<WarmBasis>>,
    /// Sense-normalized LP objective of the parent node.
    parent_obj: f64,
    /// `(variable, branched-up, fractional distance)` of the branch that
    /// created this node.
    branch: Option<(VarId, bool, f64)>,
}

/// Total strong-branching child probes per ILP solve. Each probe is a
/// warm-started dual-simplex cleanup (microseconds), so this budget costs
/// single-digit milliseconds up front and buys reliable pseudocosts.
const STRONG_BRANCH_BUDGET: usize = 512;
/// A direction's pseudocost is considered reliable after this many
/// observations; below it, candidates are strong-branched (budget
/// permitting).
const RELIABLE_AFTER: u32 = 4;
/// Pseudocost gain recorded for a branch whose child is infeasible — the
/// strongest possible outcome.
const INFEASIBLE_GAIN: f64 = 1e12;

/// Per-variable, per-direction branching statistics: the average
/// sense-normalized objective gain per unit of fractional distance.
struct Pseudocosts {
    up_gain: Vec<f64>,
    up_count: Vec<u32>,
    down_gain: Vec<f64>,
    down_count: Vec<u32>,
}

impl Pseudocosts {
    fn record(&mut self, v: VarId, up: bool, gain_per_unit: f64) {
        let j = v.index();
        if up {
            self.up_gain[j] += gain_per_unit;
            self.up_count[j] += 1;
        } else {
            self.down_gain[j] += gain_per_unit;
            self.down_count[j] += 1;
        }
    }

    fn avg(total: f64, count: u32) -> f64 {
        if count == 0 {
            // Unobserved direction: a neutral unit gain keeps unexplored
            // variables competitive without dominating scored ones.
            1.0
        } else {
            total / count as f64
        }
    }

    /// Product-rule score of branching on `v` at fractional value `x`.
    fn score(&self, v: VarId, x: f64) -> f64 {
        let j = v.index();
        let down_frac = x - x.floor();
        let up_frac = x.ceil() - x;
        let down = Self::avg(self.down_gain[j], self.down_count[j]) * down_frac.max(1e-6);
        let up = Self::avg(self.up_gain[j], self.up_count[j]) * up_frac.max(1e-6);
        down.max(1e-12) * up.max(1e-12)
    }
}

/// Strong-branches candidate `v` at value `x`: solves both children from
/// this node's basis (warm dual cleanups) and records the observed
/// per-unit gains into the pseudocosts.
#[allow(clippy::too_many_arguments)]
fn strong_branch(
    problem: &Problem,
    options: &IlpOptions,
    scratch: &mut LpScratch,
    bounds: &BoundOverrides,
    basis: Option<&WarmBasis>,
    v: VarId,
    x: f64,
    parent_obj: f64,
    minimize: bool,
    pseudo: &mut Pseudocosts,
) -> Result<(), IlpError> {
    let floor = Rational::from(x.floor() as i64);
    for up in [false, true] {
        let mut child = bounds.clone();
        let frac = if up {
            child.tighten_lower(v, floor + Rational::ONE);
            frac_dist(x, true)
        } else {
            child.tighten_upper(v, floor);
            frac_dist(x, false)
        };
        let warm = if options.warm_start { basis } else { None };
        let (outcome, _) = solve_node_f64(problem, &child, options, scratch, warm)?;
        let gain = match outcome {
            NodeOutcome::Solved { objective, .. } => {
                let norm = if minimize { objective } else { -objective };
                (norm - parent_obj).max(0.0) / frac
            }
            NodeOutcome::Infeasible => INFEASIBLE_GAIN,
            NodeOutcome::Unbounded => 0.0,
        };
        pseudo.record(v, up, gain);
    }
    Ok(())
}

/// [`solve_ilp`] with a caller-owned [`IlpScratch`], so back-to-back
/// solves reuse the LP workspace (and, for repeats of an identical
/// problem, the converged basis).
///
/// # Errors
///
/// Same classes as [`solve_ilp`].
pub fn solve_ilp_with_scratch(
    problem: &Problem,
    options: &IlpOptions,
    scratch: &mut IlpScratch,
) -> Result<IlpOutcome, IlpError> {
    let start = Instant::now();
    let minimize = matches!(problem.sense(), crate::problem::Sense::Minimize);
    let int_vars: Vec<VarId> = problem.integer_vars().collect();
    let all_integer = int_vars.len() == problem.var_count();
    // With an integral objective (integer coefficients on integer
    // variables only), every integer solution has an integer objective,
    // so a node's fractional relaxation bound lifts to its ceiling — the
    // pruning rule that keeps the tree small even when `f64` bounds carry
    // sub-tolerance dust below the exact optimum.
    let objective_integral = problem
        .objective()
        .terms()
        .all(|(v, q)| q.is_integer() && problem.var(v).integer);

    // Root presolve: singleton constraint rows on integer variables imply
    // bounds that integrality rounds — `a·v ≥ b` lifts to
    // `v ≥ ⌈b/a⌉`, `a·v ≤ b` tightens to `v ≤ ⌊b/a⌋` (computed in exact
    // rational arithmetic). The relaxation keeps such variables at their
    // fractional caps otherwise, and the search would re-discover each
    // rounding one branch at a time.
    let root_bounds = match presolve_singleton_rows(problem) {
        Some(b) => b,
        None => return Ok(IlpOutcome::Infeasible),
    };

    let mut stack: Vec<Node> = vec![Node {
        bounds: root_bounds,
        warm: None,
        parent_obj: f64::NEG_INFINITY,
        branch: None,
    }];
    let mut incumbent: Option<IlpSolution> = None;
    let mut nodes = 0usize;
    let mut limit_hit = false;
    // Every LP solve — node relaxations, rounding-dive steps, and
    // strong-branch probes — draws from one budget, so `max_nodes` caps
    // the total LP work (the latency contract), not just node pops.
    let mut lp_budget = options.max_nodes;
    // Pseudocosts: per variable and direction, the observed average
    // objective gain per unit of fractional distance branched away.
    // Initialized by strong branching (bounded by `strong_budget` child
    // probes — warm-started dual cleanups, so each costs microseconds)
    // and refined by every regular node solve thereafter.
    let nv = problem.var_count();
    let mut pseudo = Pseudocosts {
        up_gain: vec![0.0; nv],
        up_count: vec![0u32; nv],
        down_gain: vec![0.0; nv],
        down_count: vec![0u32; nv],
    };
    let mut strong_budget = STRONG_BRANCH_BUDGET;

    while let Some(node) = stack.pop() {
        if lp_budget == 0 || options.time_limit.is_some_and(|lim| start.elapsed() >= lim) {
            limit_hit = true;
            break;
        }
        nodes += 1;
        lp_budget -= 1;
        let Node {
            bounds,
            warm,
            parent_obj,
            branch: parent_branch,
        } = node;

        let (node, raw_basis) = if options.exact_lp {
            (solve_node_exact(problem, &bounds, options)?, None)
        } else {
            let warm = if options.warm_start {
                warm.as_deref()
            } else {
                None
            };
            solve_node_f64(problem, &bounds, options, &mut scratch.lp, warm)?
        };
        let basis: Option<Rc<WarmBasis>> = raw_basis.map(Rc::new);

        let (values, lp_obj) = match node {
            NodeOutcome::Infeasible => {
                // Per-unit convention, matching `strong_branch`.
                if let Some((v, up, _)) = parent_branch {
                    pseudo.record(v, up, INFEASIBLE_GAIN);
                }
                continue;
            }
            NodeOutcome::Unbounded => {
                // Only the root relaxation can prove the ILP unbounded.
                if nodes == 1 {
                    return Ok(IlpOutcome::Unbounded);
                }
                continue;
            }
            NodeOutcome::Solved { values, objective } => (values, objective),
        };
        let norm_obj = if minimize { lp_obj } else { -lp_obj };
        if let Some((v, up, frac)) = parent_branch {
            if parent_obj.is_finite() {
                pseudo.record(v, up, (norm_obj - parent_obj).max(0.0) / frac.max(1e-6));
            }
        }

        // Root incumbent heuristic: an LP-guided rounding dive (warm
        // restarts off the root basis) manufactures a first integer
        // solution so the depth-first search below prunes against a real
        // incumbent from node one.
        if nodes == 1 && !options.exact_lp && incumbent.is_none() {
            if let Some(dive_vals) = rounding_dive(
                problem,
                options,
                &mut scratch.lp,
                &int_vars,
                &bounds,
                &values,
                basis.as_deref(),
                (&start, options.time_limit),
                &mut lp_budget,
            )? {
                if let Some(sol) = exact_candidate(problem, &dive_vals, &int_vars, all_integer) {
                    incumbent = Some(sol);
                }
            }
        }

        // Bound pruning against the incumbent (objective sense-normalized:
        // we compare in the minimization direction). The relaxation bound
        // is an `f64` and may sit a hair *below* the exact optimum, so
        // the comparison needs slack proportional to the solver's
        // feasibility tolerance — with an integral objective the bound
        // additionally lifts to its ceiling, which prunes the whole band
        // of nodes whose true bound equals the incumbent.
        if let Some(inc) = &incumbent {
            let bound = if minimize { lp_obj } else { -lp_obj };
            let inc_obj = if minimize {
                inc.objective.to_f64()
            } else {
                -inc.objective.to_f64()
            };
            // Slack absorbs the f64 solver's bound dust (proportional to
            // its feasibility tolerance) — deliberately NOT the
            // user-facing integrality_tol, which only controls
            // fractionality detection.
            let slack = F64_FEAS_TOL * (1.0 + bound.abs());
            let pruned = if objective_integral {
                (bound - slack).ceil() >= inc_obj - 0.5
            } else {
                bound >= inc_obj - slack
            };
            if pruned {
                continue;
            }
        }

        // Find the branching variable. The exact path keeps the simple
        // most-fractional rule; the fast path uses pseudocost scores,
        // strong-branching (two warm child probes) any candidate whose
        // pseudocosts are not yet reliable while the probe budget lasts.
        let mut fractional: Vec<(VarId, f64, f64)> = Vec::new();
        for &v in &int_vars {
            let x = values[v.index()];
            let dist = (x - x.round()).abs();
            if dist > options.integrality_tol {
                fractional.push((v, x, dist));
            }
        }
        let branch: Option<(VarId, f64)> = if options.exact_lp {
            most_fractional(&int_vars, &values, options.integrality_tol).map(|(v, x, _)| (v, x))
        } else {
            if strong_budget > 0 {
                // Most-fractional-first initialization order.
                let mut order: Vec<usize> = (0..fractional.len()).collect();
                order.sort_by(|&a, &b| {
                    fractional[b]
                        .2
                        .partial_cmp(&fractional[a].2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(fractional[a].0.cmp(&fractional[b].0))
                });
                for &i in &order {
                    let (v, x, _) = fractional[i];
                    if strong_budget == 0
                        || lp_budget < 2
                        || options.time_limit.is_some_and(|lim| start.elapsed() >= lim)
                    {
                        break;
                    }
                    if pseudo.up_count[v.index()] >= RELIABLE_AFTER
                        && pseudo.down_count[v.index()] >= RELIABLE_AFTER
                    {
                        continue;
                    }
                    strong_budget = strong_budget.saturating_sub(2);
                    lp_budget -= 2;
                    strong_branch(
                        problem,
                        options,
                        &mut scratch.lp,
                        &bounds,
                        basis.as_deref(),
                        v,
                        x,
                        norm_obj,
                        minimize,
                        &mut pseudo,
                    )?;
                }
            }
            fractional
                .iter()
                .fold(None, |best, &(v, x, _)| {
                    let score = pseudo.score(v, x);
                    match best {
                        Some((_, _, bs)) if score <= bs => best,
                        _ => Some((v, x, score)),
                    }
                })
                .map(|(v, x, _)| (v, x))
        };

        match branch {
            None => {
                // Integer candidate: build exact values and verify.
                let exact = exact_candidate(problem, &values, &int_vars, all_integer);
                match exact {
                    Some(sol) => {
                        let better = match &incumbent {
                            None => true,
                            Some(inc) => {
                                if minimize {
                                    sol.objective < inc.objective
                                } else {
                                    sol.objective > inc.objective
                                }
                            }
                        };
                        if better {
                            incumbent = Some(sol);
                        }
                    }
                    None => {
                        // Rounding broke exact feasibility: redo this node
                        // with the exact simplex.
                        let exact_node = solve_node_exact_rational(problem, &bounds, options)?;
                        if let Some((vals, frac)) = exact_node_candidate(&int_vars, exact_node) {
                            match frac {
                                None => {
                                    let obj = problem.objective().eval(&vals);
                                    let sol = IlpSolution {
                                        values: vals,
                                        objective: obj,
                                    };
                                    let better = match &incumbent {
                                        None => true,
                                        Some(inc) => {
                                            if minimize {
                                                sol.objective < inc.objective
                                            } else {
                                                sol.objective > inc.objective
                                            }
                                        }
                                    };
                                    if better {
                                        incumbent = Some(sol);
                                    }
                                }
                                Some((v, val)) => {
                                    // Mid-interval placeholder: the exact
                                    // path has no f64 point to derive the
                                    // fractional distances from.
                                    let x = val.to_f64() + 0.5;
                                    push_children(&mut stack, &bounds, &basis, v, val, x, norm_obj);
                                }
                            }
                        }
                    }
                }
            }
            Some((v, x)) => {
                push_children(
                    &mut stack,
                    &bounds,
                    &basis,
                    v,
                    Rational::from(x.floor() as i64),
                    x,
                    norm_obj,
                );
            }
        }
    }

    match incumbent {
        Some(sol) if limit_hit => Ok(IlpOutcome::Feasible(sol)),
        Some(sol) => Ok(IlpOutcome::Optimal(sol)),
        None if limit_hit => Err(IlpError::LimitWithoutSolution { nodes }),
        None => Ok(IlpOutcome::Infeasible),
    }
}

enum NodeOutcome {
    Solved { values: Vec<f64>, objective: f64 },
    Infeasible,
    Unbounded,
}

/// Fractional distance the relaxation value `x` moves when branched down
/// (`up = false`) or up (`up = true`), floored away from zero so
/// pseudocost normalization never divides by ~0.
fn frac_dist(x: f64, up: bool) -> f64 {
    if up {
        (x.ceil() - x).max(1e-6)
    } else {
        (x - x.floor()).max(1e-6)
    }
}

/// The most fractional integer variable of `values` (ties keep the
/// lowest id), or `None` when all are integral within `tol`.
fn most_fractional(int_vars: &[VarId], values: &[f64], tol: f64) -> Option<(VarId, f64, f64)> {
    let mut best: Option<(VarId, f64, f64)> = None;
    for &v in int_vars {
        let x = values[v.index()];
        let dist = (x - x.round()).abs();
        if dist > tol {
            match best {
                Some((_, _, b)) if dist <= b => {}
                _ => best = Some((v, x, dist)),
            }
        }
    }
    best
}

/// Exact root presolve: extracts the bound implied by every singleton
/// constraint row and, for integer variables, rounds it to the integer
/// lattice (`⌈·⌉` for lower bounds, `⌊·⌋` for upper). Returns `None`
/// when a rounded pair is contradictory or a singleton equality has no
/// integer solution — the ILP is infeasible before any LP is solved.
fn presolve_singleton_rows(problem: &Problem) -> Option<BoundOverrides> {
    let mut bounds = BoundOverrides::none();
    for c in problem.constraints() {
        let mut terms = c.expr.terms();
        let Some((v, a)) = terms.next() else {
            continue;
        };
        if terms.next().is_some() || a.is_zero() {
            continue;
        }
        let integer = problem.var(v).integer;
        let implied = c.rhs / a;
        // `a` negative flips the relation.
        let relation = match (c.relation, a.is_positive()) {
            (Relation::Eq, _) => Relation::Eq,
            (r, true) => r,
            (Relation::Le, false) => Relation::Ge,
            (Relation::Ge, false) => Relation::Le,
        };
        match relation {
            Relation::Le => {
                let ub = if integer {
                    Rational::from(implied.floor())
                } else {
                    implied
                };
                bounds.tighten_upper(v, ub);
            }
            Relation::Ge => {
                let lb = if integer {
                    Rational::from(implied.ceil())
                } else {
                    implied
                };
                if lb.is_positive() {
                    bounds.tighten_lower(v, lb);
                }
            }
            Relation::Eq => {
                if integer && !implied.is_integer() {
                    return None;
                }
                bounds.tighten_upper(v, implied);
                if implied.is_positive() {
                    bounds.tighten_lower(v, implied);
                }
            }
        }
    }
    // Contradictory rounded pairs (or a pair contradicting the base
    // bounds) mean integer infeasibility.
    for (j, info) in problem.vars().iter().enumerate() {
        let v = VarId(j as u32);
        let (lo, up) = bounds.effective(v, info.upper);
        if let Some(up) = up {
            if lo > up {
                return None;
            }
        }
    }
    Some(bounds)
}

/// LP-guided rounding dive: starting from the root relaxation, repeatedly
/// fix the most fractional integer variable to its nearest integer (the
/// other direction if that is infeasible) and warm-re-solve, until the
/// relaxation is integral or the dive dead-ends. The result (exactly
/// verified by the caller) seeds the incumbent so depth-first
/// branch-and-bound prunes from the start instead of hoping its
/// round-down dive stumbles onto an integer solution.
///
/// Pure function of `(problem, root solution, options)` — determinism of
/// the overall solve is preserved. Honors the solve's wall-clock
/// deadline: the dive stops early rather than overshooting `time_limit`.
#[allow(clippy::too_many_arguments)]
fn rounding_dive(
    problem: &Problem,
    options: &IlpOptions,
    scratch: &mut LpScratch,
    int_vars: &[VarId],
    root_bounds: &BoundOverrides,
    root_values: &[f64],
    root_basis: Option<&WarmBasis>,
    deadline: (&Instant, Option<Duration>),
    lp_budget: &mut usize,
) -> Result<Option<Vec<f64>>, IlpError> {
    let mut bounds = root_bounds.clone();
    let mut warm: Option<WarmBasis> = root_basis.cloned();
    let mut values = root_values.to_vec();
    for _ in 0..int_vars.len() * 2 {
        if deadline.1.is_some_and(|lim| deadline.0.elapsed() >= lim) {
            return Ok(None);
        }
        let Some((v, x, _)) = most_fractional(int_vars, &values, options.integrality_tol) else {
            return Ok(Some(values));
        };
        let mut fixed = None;
        for candidate in [x.round(), if x.round() > x { x.floor() } else { x.ceil() }] {
            if candidate < -0.5 {
                continue;
            }
            let mut tightened = bounds.clone();
            let r = Rational::from(candidate as i64);
            tightened.tighten_lower(v, r);
            tightened.tighten_upper(v, r);
            if *lp_budget == 0 {
                return Ok(None);
            }
            *lp_budget -= 1;
            let warm_ref = if options.warm_start {
                warm.as_ref()
            } else {
                None
            };
            let (node, basis) = solve_node_f64(problem, &tightened, options, scratch, warm_ref)?;
            if let NodeOutcome::Solved {
                values: vals,
                objective: _,
            } = node
            {
                fixed = Some((tightened, vals, basis));
                break;
            }
        }
        let Some((tightened, vals, basis)) = fixed else {
            return Ok(None); // dive dead-ended; no incumbent from here
        };
        bounds = tightened;
        values = vals;
        warm = basis;
    }
    Ok(None)
}

fn solve_node_f64(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &IlpOptions,
    scratch: &mut LpScratch,
    warm: Option<&WarmBasis>,
) -> Result<(NodeOutcome, Option<WarmBasis>), IlpError> {
    // `warm_start: false` must be genuinely cold: no parent basis was
    // passed in, and the scratch's fingerprint-gated reuse is off too.
    let start = match warm {
        Some(wb) => Start::Warm(wb),
        None if options.warm_start => Start::Auto,
        None => Start::Cold,
    };
    let (out, basis) = revised::solve_f64(problem, bounds, &options.simplex, scratch, start)?;
    Ok((
        match out {
            LpOutcome::Optimal(sol) => NodeOutcome::Solved {
                values: sol.values,
                objective: sol.objective,
            },
            LpOutcome::Infeasible => NodeOutcome::Infeasible,
            LpOutcome::Unbounded => NodeOutcome::Unbounded,
        },
        basis,
    ))
}

fn solve_node_exact(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &IlpOptions,
) -> Result<NodeOutcome, IlpError> {
    Ok(
        match solve_lp::<Rational>(problem, bounds, &options.simplex)? {
            LpOutcome::Optimal(sol) => NodeOutcome::Solved {
                values: sol.values.iter().map(|v| v.to_f64()).collect(),
                objective: sol.objective.to_f64(),
            },
            LpOutcome::Infeasible => NodeOutcome::Infeasible,
            LpOutcome::Unbounded => NodeOutcome::Unbounded,
        },
    )
}

fn solve_node_exact_rational(
    problem: &Problem,
    bounds: &BoundOverrides,
    options: &IlpOptions,
) -> Result<Option<Vec<Rational>>, IlpError> {
    Ok(
        match solve_lp::<Rational>(problem, bounds, &options.simplex)? {
            LpOutcome::Optimal(sol) => Some(sol.values),
            _ => None,
        },
    )
}

/// Classifies an exact node solution: integral (no fractional int var) or
/// the first fractional variable to branch on.
#[allow(clippy::type_complexity)]
fn exact_node_candidate(
    int_vars: &[VarId],
    values: Option<Vec<Rational>>,
) -> Option<(Vec<Rational>, Option<(VarId, Rational)>)> {
    let vals = values?;
    for &v in int_vars {
        let x = vals[v.index()];
        if !x.is_integer() {
            let floor = Rational::from(x.floor());
            return Some((vals, Some((v, floor))));
        }
    }
    Some((vals, None))
}

/// Rounds integer vars, keeps continuous vars approximate, and verifies the
/// point exactly when the problem is purely integer. Returns `None` if the
/// rounded point is not exactly feasible.
fn exact_candidate(
    problem: &Problem,
    values: &[f64],
    int_vars: &[VarId],
    all_integer: bool,
) -> Option<IlpSolution> {
    let mut exact: Vec<Rational> = values
        .iter()
        .map(|&v| {
            // Rationalize with a fixed denominator; good enough for the
            // continuous vars we never branch on.
            Rational::new((v * 1_000_000.0).round() as i128, 1_000_000)
        })
        .collect();
    for &v in int_vars {
        exact[v.index()] = Rational::from(values[v.index()].round() as i64);
    }
    if all_integer && !problem.violations(&exact).is_empty() {
        return None;
    }
    let objective = problem.objective().eval(&exact);
    Some(IlpSolution {
        values: exact,
        objective,
    })
}

#[allow(clippy::too_many_arguments)]
fn push_children(
    stack: &mut Vec<Node>,
    bounds: &BoundOverrides,
    basis: &Option<Rc<WarmBasis>>,
    var: VarId,
    floor: Rational,
    x: f64,
    parent_obj: f64,
) {
    // Left child: var <= floor.
    let mut left = bounds.clone();
    left.tighten_upper(var, floor);
    // Right child: var >= floor + 1.
    let mut right = bounds.clone();
    right.tighten_lower(var, floor + Rational::ONE);
    // DFS: explore the "round down" side first (flows are minimized).
    // Both children warm-start from this node's optimal basis — each
    // differs from it by exactly one bound, so a short dual-simplex
    // cleanup replaces the cold two-phase solve.
    stack.push(Node {
        bounds: right,
        warm: basis.clone(),
        parent_obj,
        branch: Some((var, true, frac_dist(x, true))),
    });
    stack.push(Node {
        bounds: left,
        warm: basis.clone(),
        parent_obj,
        branch: Some((var, false, frac_dist(x, false))),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinExpr, Relation};

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn knapsack_small() {
        // max 8a + 11b + 6c s.t. 5a + 7b + 4c <= 14, binary.
        // Best is a+b: weight 12 <= 14, value 19 (a+b+c weighs 16).
        let mut p = Problem::new();
        let a = p.add_int_var("a");
        let b = p.add_int_var("b");
        let c = p.add_int_var("c");
        for v in [a, b, c] {
            p.set_upper(v, r(1));
        }
        let mut cap = LinExpr::new();
        cap.add_term(a, r(5)).add_term(b, r(7)).add_term(c, r(4));
        p.add_constraint(cap, Relation::Le, r(14), "cap");
        let mut obj = LinExpr::new();
        obj.add_term(a, r(8)).add_term(b, r(11)).add_term(c, r(6));
        p.maximize(obj);
        match solve_ilp(&p, &IlpOptions::default()).unwrap() {
            IlpOutcome::Optimal(sol) => {
                assert_eq!(sol.objective, r(19));
                assert_eq!(sol.int_value(a), 1);
                assert_eq!(sol.int_value(b), 1);
                assert_eq!(sol.int_value(c), 0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn fractional_lp_rounds_down_via_branching() {
        // max x s.t. 2x <= 5, x integer -> x = 2 (LP gives 2.5).
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let mut c = LinExpr::new();
        c.add_term(x, r(2));
        p.add_constraint(c, Relation::Le, r(5), "c");
        p.maximize(LinExpr::var(x));
        match solve_ilp(&p, &IlpOptions::default()).unwrap() {
            IlpOutcome::Optimal(sol) => assert_eq!(sol.objective, r(2)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_integer_gap() {
        // 2x = 3 has an LP solution (1.5) but no integer solution.
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let mut c = LinExpr::new();
        c.add_term(x, r(2));
        p.add_constraint(c, Relation::Eq, r(3), "c");
        p.minimize(LinExpr::var(x));
        assert_eq!(
            solve_ilp(&p, &IlpOptions::default()).unwrap(),
            IlpOutcome::Infeasible
        );
    }

    #[test]
    fn unbounded_integer_program() {
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        p.maximize(LinExpr::var(x));
        assert_eq!(
            solve_ilp(&p, &IlpOptions::default()).unwrap(),
            IlpOutcome::Unbounded
        );
    }

    #[test]
    fn exact_lp_mode_agrees() {
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let y = p.add_int_var("y");
        let mut c = LinExpr::new();
        c.add_term(x, r(3)).add_term(y, r(5));
        p.add_constraint(c, Relation::Le, r(19), "cap");
        let mut obj = LinExpr::new();
        obj.add_term(x, r(2)).add_term(y, r(3));
        p.maximize(obj);
        let fast = solve_ilp(&p, &IlpOptions::default()).unwrap();
        let exact = solve_ilp(
            &p,
            &IlpOptions {
                exact_lp: true,
                ..IlpOptions::default()
            },
        )
        .unwrap();
        let f = fast.solution().unwrap().objective;
        let e = exact.solution().unwrap().objective;
        assert_eq!(f, e);
    }

    #[test]
    fn node_limit_reports_feasible_or_error() {
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let mut c = LinExpr::new();
        c.add_term(x, r(2));
        p.add_constraint(c, Relation::Le, r(5), "c");
        p.maximize(LinExpr::var(x));
        // With a 1-node limit only the root is explored — but its
        // rounding dive finds x = 2 and the ceiling-lifted root bound
        // (⌈2.5⌉ downward) proves nothing better exists, so the solve
        // closes at the root with a proven optimum.
        let out = solve_ilp(
            &p,
            &IlpOptions {
                max_nodes: 1,
                ..IlpOptions::default()
            },
        )
        .unwrap();
        match out {
            IlpOutcome::Optimal(sol) | IlpOutcome::Feasible(sol) => {
                assert_eq!(sol.objective, r(2));
            }
            other => panic!("expected a solution, got {other:?}"),
        }
        // A genuinely fractional root (no singleton rows to presolve, no
        // f64 dive in exact mode) under a 1-node limit yields no solution.
        let mut hard = Problem::new();
        let x = hard.add_int_var("x");
        let y = hard.add_int_var("y");
        let mut c = LinExpr::new();
        c.add_term(x, r(2)).add_term(y, r(3));
        hard.add_constraint(c, Relation::Le, r(7), "cap");
        let mut obj = LinExpr::new();
        obj.add_term(x, r(3)).add_term(y, r(4));
        hard.maximize(obj);
        let out = solve_ilp(
            &hard,
            &IlpOptions {
                max_nodes: 1,
                exact_lp: true,
                ..IlpOptions::default()
            },
        );
        assert!(matches!(out, Err(IlpError::LimitWithoutSolution { .. })));
    }

    #[test]
    fn equality_system_integer_solution() {
        // x + y = 10, x - y = 4 -> (7, 3).
        let mut p = Problem::new();
        let x = p.add_int_var("x");
        let y = p.add_int_var("y");
        let mut c1 = LinExpr::new();
        c1.add_term(x, r(1)).add_term(y, r(1));
        p.add_constraint(c1, Relation::Eq, r(10), "sum");
        let mut c2 = LinExpr::new();
        c2.add_term(x, r(1)).add_term(y, r(-1));
        p.add_constraint(c2, Relation::Eq, r(4), "diff");
        p.minimize(LinExpr::new());
        match solve_ilp(&p, &IlpOptions::default()).unwrap() {
            IlpOutcome::Optimal(sol) => {
                assert_eq!(sol.int_value(x), 7);
                assert_eq!(sol.int_value(y), 3);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
