//! Equivalence test: the adaptive sparse/dense [`ReservationTable`]
//! answers every query exactly like the original (pre-PR 1) hash-set-based
//! implementation, over random batches of timed paths. Together with
//! `reservation_adaptive.rs` (which cross-checks the sparse, dense, and
//! adaptive backends against each other) this pins the storage rebuild to
//! PR 1's semantics.

use std::collections::{HashMap, HashSet};

use wsp_mapf::ReservationTable;
use wsp_model::VertexId;

/// The pre-refactor reference implementation, verbatim semantics:
/// tuple-keyed hash sets plus a parked map.
#[derive(Default)]
struct NaiveTable {
    vertex: HashSet<(VertexId, usize)>,
    edge: HashSet<(VertexId, VertexId, usize)>,
    parked: HashMap<VertexId, usize>,
}

impl NaiveTable {
    fn reserve_path(&mut self, path: &[VertexId]) {
        for (t, &v) in path.iter().enumerate() {
            self.vertex.insert((v, t));
            if t > 0 {
                let u = path[t - 1];
                if u != v {
                    self.edge.insert((u, v, t - 1));
                }
            }
        }
        if let Some(&last) = path.last() {
            self.park(last, path.len().saturating_sub(1));
        }
    }

    fn park(&mut self, v: VertexId, t: usize) {
        match self.parked.get_mut(&v) {
            Some(existing) => *existing = (*existing).min(t),
            None => {
                self.parked.insert(v, t);
            }
        }
    }

    fn vertex_free(&self, v: VertexId, t: usize) -> bool {
        if self.vertex.contains(&(v, t)) {
            return false;
        }
        match self.parked.get(&v) {
            Some(&from) => t < from,
            None => true,
        }
    }

    fn edge_free(&self, u: VertexId, v: VertexId, t: usize) -> bool {
        !self.edge.contains(&(v, u, t))
    }

    fn free_forever(&self, v: VertexId, t: usize) -> bool {
        if self.parked.contains_key(&v) {
            return false;
        }
        !self.vertex.iter().any(|&(rv, rt)| rv == v && rt >= t)
    }
}

/// Deterministic SplitMix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random timed path: successive entries either repeat (wait) or move to
/// a fresh random vertex.
fn random_path(rng: &mut Rng, n_vertices: u64) -> Vec<VertexId> {
    let len = 1 + rng.below(12) as usize;
    let mut path = Vec::with_capacity(len);
    let mut at = VertexId(rng.below(n_vertices) as u32);
    path.push(at);
    for _ in 1..len {
        if rng.below(4) == 0 {
            path.push(at); // wait
        } else {
            at = VertexId(rng.below(n_vertices) as u32);
            path.push(at);
        }
    }
    path
}

#[test]
fn dense_table_matches_naive_reference_on_random_paths() {
    let mut rng = Rng(0x5eed);
    const N: u64 = 24;
    for case in 0..200 {
        let mut naive = NaiveTable::default();
        let mut dense = ReservationTable::new(N as usize);

        // Reserve only mutually conflict-free paths: real planners check
        // `vertex_free`/`free_forever` before committing a path, and the
        // dense table's one-departure-per-(vertex, time) edge slot relies
        // on that exclusivity.
        let target_paths = 1 + rng.below(4);
        let mut reserved = 0;
        let mut attempts = 0;
        while reserved < target_paths && attempts < 50 {
            attempts += 1;
            let path = random_path(&mut rng, N);
            let slots_free = path
                .iter()
                .enumerate()
                .all(|(t, &v)| naive.vertex_free(v, t));
            let parkable = naive.free_forever(*path.last().unwrap(), path.len() - 1);
            if slots_free && parkable {
                naive.reserve_path(&path);
                dense.reserve_path(&path);
                reserved += 1;
            }
        }
        if rng.below(2) == 0 {
            let v = VertexId(rng.below(N) as u32);
            let t = rng.below(16) as usize;
            naive.park(v, t);
            dense.park(v, t);
        }

        // Exhaustive query sweep over vertices, pairs, and a time range
        // past the longest reservation.
        for t in 0..20usize {
            for a in 0..N as u32 {
                let va = VertexId(a);
                assert_eq!(
                    dense.vertex_free(va, t),
                    naive.vertex_free(va, t),
                    "case {case}: vertex_free({va}, {t})"
                );
                assert_eq!(
                    dense.free_forever(va, t),
                    naive.free_forever(va, t),
                    "case {case}: free_forever({va}, {t})"
                );
                for b in 0..N as u32 {
                    let vb = VertexId(b);
                    assert_eq!(
                        dense.edge_free(va, vb, t),
                        naive.edge_free(va, vb, t),
                        "case {case}: edge_free({va}, {vb}, {t})"
                    );
                }
            }
        }
    }
}
