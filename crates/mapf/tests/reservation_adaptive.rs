//! Property tests for the adaptive reservation storage: the sparse,
//! dense, and adaptive bucket backends must answer every
//! `vertex_free`/`edge_free`/`free_forever` query identically over random
//! reservation sequences, and the adaptive table must stay within a memory
//! budget the dense O(horizon × vertices) layout would blow through.

use proptest::prelude::*;

use wsp_mapf::{ReservationTable, StoragePolicy};
use wsp_model::VertexId;

/// Vertex universe for the agreement properties: small enough that random
/// buckets cross the promotion threshold, large enough to exercise every
/// bitset word boundary.
const N: u32 = 200;

/// A random timed path over `N` vertices: successive entries either repeat
/// (wait) or move to a fresh random vertex.
fn path_strategy() -> impl Strategy<Value = Vec<VertexId>> {
    proptest::collection::vec((0u32..N, 0u32..4), 1..24).prop_map(|steps| {
        let mut path = Vec::with_capacity(steps.len());
        let mut at = VertexId(steps[0].0);
        path.push(at);
        for &(v, wait) in &steps[1..] {
            if wait == 0 {
                path.push(at); // wait in place
            } else {
                at = VertexId(v);
                path.push(at);
            }
        }
        path
    })
}

/// Applies the same reservation sequence to every backend.
fn build_tables(paths: &[Vec<VertexId>], parks: &[(u32, u32)]) -> [ReservationTable; 3] {
    let mut tables = [
        ReservationTable::with_policy(N as usize, StoragePolicy::Adaptive),
        ReservationTable::with_policy(N as usize, StoragePolicy::ForceSparse),
        ReservationTable::with_policy(N as usize, StoragePolicy::ForceDense),
    ];
    for table in &mut tables {
        for path in paths {
            table.reserve_path(path);
        }
        for &(v, t) in parks {
            table.park(VertexId(v), t as usize);
        }
    }
    tables
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn backends_agree_on_vertex_and_parking_queries(
        paths in proptest::collection::vec(path_strategy(), 1..8),
        parks in proptest::collection::vec((0u32..N, 0u32..32), 0..4),
    ) {
        let [adaptive, sparse, dense] = build_tables(&paths, &parks);
        let max_t = paths.iter().map(Vec::len).max().unwrap_or(0) + 4;
        for t in 0..max_t {
            for v in 0..N {
                let at = VertexId(v);
                let expect = sparse.vertex_free(at, t);
                prop_assert_eq!(adaptive.vertex_free(at, t), expect,
                    "adaptive vertex_free({}, {})", v, t);
                prop_assert_eq!(dense.vertex_free(at, t), expect,
                    "dense vertex_free({}, {})", v, t);
                let expect = sparse.free_forever(at, t);
                prop_assert_eq!(adaptive.free_forever(at, t), expect,
                    "adaptive free_forever({}, {})", v, t);
                prop_assert_eq!(dense.free_forever(at, t), expect,
                    "dense free_forever({}, {})", v, t);
            }
        }
    }

    #[test]
    fn backends_agree_on_edge_queries(
        paths in proptest::collection::vec(path_strategy(), 1..6),
        probes in proptest::collection::vec((0u32..N, 0u32..N, 0u32..28), 64..256),
    ) {
        let [adaptive, sparse, dense] = build_tables(&paths, &[]);
        // Probe every move actually reserved (the interesting cases) ...
        for path in &paths {
            for (t, pair) in path.windows(2).enumerate() {
                let (u, v) = (pair[0], pair[1]);
                let expect = sparse.edge_free(v, u, t);
                prop_assert_eq!(adaptive.edge_free(v, u, t), expect);
                prop_assert_eq!(dense.edge_free(v, u, t), expect);
            }
        }
        // ... plus a spread of random probes.
        for &(u, v, t) in &probes {
            let (u, v, t) = (VertexId(u), VertexId(v), t as usize);
            let expect = sparse.edge_free(u, v, t);
            prop_assert_eq!(adaptive.edge_free(u, v, t), expect,
                "edge_free({}, {}, {})", u, v, t);
            prop_assert_eq!(dense.edge_free(u, v, t), expect,
                "edge_free({}, {}, {})", u, v, t);
        }
    }

    #[test]
    fn reserving_never_frees_a_slot(
        first in path_strategy(),
        second in path_strategy(),
    ) {
        let mut table = ReservationTable::new(N as usize);
        table.reserve_path(&first);
        let max_t = first.len() + second.len() + 2;
        let before: Vec<bool> = (0..max_t)
            .flat_map(|t| (0..N).map(move |v| (v, t)))
            .map(|(v, t)| table.vertex_free(VertexId(v), t))
            .collect();
        table.reserve_path(&second);
        let after: Vec<bool> = (0..max_t)
            .flat_map(|t| (0..N).map(move |v| (v, t)))
            .map(|(v, t)| table.vertex_free(VertexId(v), t))
            .collect();
        for (slot, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
            // free -> reserved is allowed; reserved -> free is not.
            prop_assert!(b || !a, "slot {} was reserved, then freed", slot);
        }
    }
}

/// Regression guard for the scale tentpole: at a 120k-vertex map size, a
/// prioritized-planning-shaped reservation load (a few hundred long paths)
/// must fit comfortably in a budget the PR 1 dense layout exceeds by more
/// than an order of magnitude.
#[test]
fn adaptive_table_stays_within_memory_budget_at_scale() {
    const VERTICES: usize = 120_000;
    const BUDGET: usize = 16 << 20; // 16 MiB

    let mut table = ReservationTable::new(VERTICES);
    let mut at = 0u32;
    for agent in 0..200u32 {
        // A 600-step walk wrapping through the id space, like an aisle run.
        let path: Vec<VertexId> = (0..600u32)
            .map(|i| VertexId((at + i) % VERTICES as u32))
            .collect();
        table.reserve_path(&path);
        at = at.wrapping_add(agent * 601 % VERTICES as u32);
    }

    assert!(
        table.memory_bytes() < BUDGET,
        "adaptive table uses {} bytes, budget {}",
        table.memory_bytes(),
        BUDGET
    );
    assert!(
        table.dense_equivalent_bytes() > 10 * BUDGET,
        "dense layout would use {} bytes — not a meaningful regression guard",
        table.dense_equivalent_bytes()
    );
}
