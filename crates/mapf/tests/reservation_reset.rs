//! Property test for [`ReservationTable::reset`]: a reset table must be
//! observationally identical to a freshly constructed one — same
//! occupancy, edge-swap, park, and free-forever answers for any
//! reservation sequence made after the reset, at every storage policy.
//! This is the guard that lets `wsp-sim` hold one table per simulation
//! and `reset` it per repair event instead of paying an O(vertices)
//! rebuild.

use proptest::prelude::*;
use wsp_mapf::{ReservationTable, StoragePolicy};
use wsp_model::VertexId;

const N: usize = 512;

/// A random timed path: vertices in `0..N`, length 1..=12, with possible
/// waits (repeats).
fn path_strategy() -> impl Strategy<Value = Vec<VertexId>> {
    proptest::collection::vec(0u32..N as u32, 1..12)
        .prop_map(|vs| vs.into_iter().map(VertexId).collect())
}

fn paths() -> impl Strategy<Value = Vec<Vec<VertexId>>> {
    proptest::collection::vec(path_strategy(), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// reserve(A); reset(); reserve(B)  ≡  fresh; reserve(B).
    #[test]
    fn reset_equals_fresh(before in paths(), after in paths()) {
        for policy in [
            StoragePolicy::Adaptive,
            StoragePolicy::ForceSparse,
            StoragePolicy::ForceDense,
        ] {
            let mut reused = ReservationTable::with_policy(N, policy);
            for p in &before {
                reused.reserve_path(p);
            }
            reused.reset();
            for p in &after {
                reused.reserve_path(p);
            }
            let mut fresh = ReservationTable::with_policy(N, policy);
            for p in &after {
                fresh.reserve_path(p);
            }
            prop_assert_eq!(reused.horizon(), fresh.horizon());
            // Probe every vertex the scenarios touched (plus a few cold
            // ones) across the joint horizon.
            let horizon = reused.horizon().max(2) + 2;
            let mut probes: Vec<VertexId> =
                before.iter().chain(&after).flatten().copied().collect();
            probes.extend([VertexId(0), VertexId((N - 1) as u32)]);
            probes.sort_unstable();
            probes.dedup();
            for t in 0..horizon {
                for &v in &probes {
                    prop_assert_eq!(
                        reused.vertex_free(v, t),
                        fresh.vertex_free(v, t),
                        "vertex_free({v}, {t}) after reset"
                    );
                    prop_assert_eq!(
                        reused.free_forever(v, t),
                        fresh.free_forever(v, t),
                        "free_forever({v}, {t}) after reset"
                    );
                    for &u in &probes {
                        prop_assert_eq!(
                            reused.edge_free(u, v, t),
                            fresh.edge_free(u, v, t),
                            "edge_free({u}, {v}, {t}) after reset"
                        );
                    }
                }
            }
        }
    }

    /// Double reset and reset-of-empty are harmless.
    #[test]
    fn reset_is_idempotent(scenario in paths()) {
        let mut rt = ReservationTable::new(N);
        rt.reset();
        for p in &scenario {
            rt.reserve_path(p);
        }
        rt.reset();
        rt.reset();
        prop_assert_eq!(rt.horizon(), 0);
        for t in 0..4 {
            for x in 0..N as u32 {
                prop_assert!(rt.vertex_free(VertexId(x), t));
                prop_assert!(rt.free_forever(VertexId(x), t));
            }
        }
    }
}
