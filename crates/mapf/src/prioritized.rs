//! Prioritized (sequential / HCA*-style) planning: agents plan one after
//! another against a shared reservation table, each routing through its
//! whole goal itinerary.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::astar::{PlanQuery, SearchScratch, SpaceTimeAstar};
use crate::{MapfError, MapfProblem, MapfSolution, ReservationTable};

/// The prioritized planner. Incomplete (priority orderings can fail where a
/// solution exists), so it retries with shuffled priorities.
#[derive(Debug, Clone)]
pub struct PrioritizedPlanner {
    /// Single-agent search configuration.
    pub astar: SpaceTimeAstar,
    /// Number of priority orderings to try (the first is always the
    /// natural agent order, for determinism).
    pub attempts: usize,
    /// Seed for the shuffled retry orderings.
    pub seed: u64,
}

impl Default for PrioritizedPlanner {
    fn default() -> Self {
        PrioritizedPlanner {
            astar: SpaceTimeAstar::default(),
            attempts: 8,
            seed: 0x5eed,
        }
    }
}

impl PrioritizedPlanner {
    /// Solves the instance.
    ///
    /// # Errors
    ///
    /// Returns [`MapfError::NoSolution`] if every attempted priority
    /// ordering fails.
    pub fn solve(&self, problem: &MapfProblem<'_>) -> Result<MapfSolution, MapfError> {
        self.solve_with_table(problem).map(|(solution, _)| solution)
    }

    /// Solves the instance and also returns the reservation table of the
    /// successful priority ordering, for memory diagnostics (the scaling
    /// benches record [`ReservationTable::memory_bytes`] against
    /// [`ReservationTable::dense_equivalent_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`MapfError::NoSolution`] if every attempted priority
    /// ordering fails.
    pub fn solve_with_table(
        &self,
        problem: &MapfProblem<'_>,
    ) -> Result<(MapfSolution, ReservationTable), MapfError> {
        let n = problem.agent_count();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut last_failure = MapfError::NoSolution { agent: None };

        // One search scratch for the whole solve: every agent, leg, and
        // retry ordering reuses the same heuristic and layer buffers.
        let mut scratch = SearchScratch::new();
        for attempt in 0..self.attempts.max(1) {
            if attempt > 0 {
                order.shuffle(&mut rng);
            }
            match self.try_order(problem, &order, &mut scratch) {
                Ok(out) => return Ok(out),
                Err(e) => last_failure = e,
            }
        }
        Err(last_failure)
    }

    fn try_order(
        &self,
        problem: &MapfProblem<'_>,
        order: &[usize],
        scratch: &mut SearchScratch,
    ) -> Result<(MapfSolution, ReservationTable), MapfError> {
        let graph = problem.graph();
        let mut reservations = ReservationTable::new(graph.vertex_count());
        let mut paths: Vec<Vec<wsp_model::VertexId>> = vec![Vec::new(); problem.agent_count()];

        for &agent in order {
            let start = problem.starts()[agent];
            let itinerary = &problem.itineraries()[agent];
            let mut full: Vec<wsp_model::VertexId> = vec![start];
            let mut at = start;
            let mut t = 0usize;
            for (leg, &goal) in itinerary.iter().enumerate() {
                let last_leg = leg + 1 == itinerary.len();
                let query = PlanQuery {
                    start: at,
                    start_time: t,
                    goal,
                    reservations: Some(&reservations),
                    constraints: None,
                    conflict_paths: None,
                    require_parkable: last_leg,
                };
                let seg = self
                    .astar
                    .plan_with_scratch(graph, &query, scratch)
                    .ok_or(MapfError::NoSolution { agent: Some(agent) })?;
                // Append without duplicating the junction state.
                full.extend(seg.path.iter().skip(1).copied());
                at = goal;
                t = full.len() - 1;
                if t > problem.max_time() {
                    return Err(MapfError::Timeout { expanded: t });
                }
            }
            reservations.reserve_path(&full);
            paths[agent] = full;
        }
        Ok((MapfSolution { paths }, reservations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{FloorplanGraph, GridMap, VertexId};

    fn graph(art: &str) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::from_ascii(art).unwrap())
    }

    fn v(g: &FloorplanGraph, x: u32, y: u32) -> VertexId {
        g.vertex_at((x, y).into()).unwrap()
    }

    #[test]
    fn two_agents_swap_on_wide_corridor() {
        let g = graph("....\n....");
        let a = v(&g, 0, 0);
        let b = v(&g, 3, 0);
        let p = MapfProblem::new(&g, vec![a, b], vec![vec![b], vec![a]]);
        let sol = PrioritizedPlanner::default().solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
        assert_eq!(*sol.paths[0].last().unwrap(), b);
        assert_eq!(*sol.paths[1].last().unwrap(), a);
    }

    #[test]
    fn narrow_corridor_swap_fails() {
        // 1-wide corridor: a swap is impossible for any planner.
        let g = graph("...");
        let a = v(&g, 0, 0);
        let b = v(&g, 2, 0);
        let p = MapfProblem::new(&g, vec![a, b], vec![vec![b], vec![a]]);
        assert!(PrioritizedPlanner::default().solve(&p).is_err());
    }

    #[test]
    fn multi_goal_itineraries() {
        let g = graph(".....\n.....");
        let a = v(&g, 0, 0);
        let p = MapfProblem::new(
            &g,
            vec![a],
            vec![vec![v(&g, 4, 0), v(&g, 0, 1), v(&g, 4, 1)]],
        );
        let sol = PrioritizedPlanner::default().solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
        let path = &sol.paths[0];
        assert!(path.contains(&v(&g, 4, 0)));
        assert!(path.contains(&v(&g, 0, 1)));
        assert_eq!(*path.last().unwrap(), v(&g, 4, 1));
    }

    #[test]
    fn crowded_crossing_resolved() {
        // Four agents crossing a 3x3 open square.
        let g = graph("...\n...\n...");
        let starts = vec![v(&g, 0, 0), v(&g, 2, 2), v(&g, 0, 2), v(&g, 2, 0)];
        let goals = vec![
            vec![v(&g, 2, 2)],
            vec![v(&g, 0, 0)],
            vec![v(&g, 2, 0)],
            vec![v(&g, 0, 2)],
        ];
        let p = MapfProblem::new(&g, starts, goals);
        let sol = PrioritizedPlanner::default().solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
    }

    #[test]
    fn ten_agents_on_open_grid() {
        let g = graph(".....\n.....\n.....\n.....\n.....");
        let vs: Vec<VertexId> = g.vertices().collect();
        let starts: Vec<VertexId> = vs.iter().take(10).copied().collect();
        let goals: Vec<Vec<VertexId>> = vs.iter().rev().take(10).map(|&g| vec![g]).collect();
        let p = MapfProblem::new(&g, starts, goals);
        let sol = PrioritizedPlanner::default().solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
    }
}
