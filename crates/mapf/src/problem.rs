//! MAPF problem instances, solutions, and conflict validation.

use std::fmt;

use wsp_model::{FloorplanGraph, VertexId};

/// A MAPF instance: one start vertex and one *itinerary* (sequence of goal
/// vertices to visit in order) per agent.
///
/// Classic single-goal MAPF is the special case of one-element itineraries.
#[derive(Debug, Clone)]
pub struct MapfProblem<'g> {
    graph: &'g FloorplanGraph,
    starts: Vec<VertexId>,
    itineraries: Vec<Vec<VertexId>>,
    max_time: usize,
}

impl<'g> MapfProblem<'g> {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `starts` and `itineraries` have different lengths.
    pub fn new(
        graph: &'g FloorplanGraph,
        starts: Vec<VertexId>,
        itineraries: Vec<Vec<VertexId>>,
    ) -> Self {
        assert_eq!(
            starts.len(),
            itineraries.len(),
            "one itinerary per agent required"
        );
        MapfProblem {
            graph,
            starts,
            itineraries,
            max_time: 4 * graph.vertex_count().max(64),
        }
    }

    /// Caps the per-agent search horizon (timesteps).
    pub fn with_max_time(mut self, max_time: usize) -> Self {
        self.max_time = max_time;
        self
    }

    /// The floorplan graph.
    pub fn graph(&self) -> &'g FloorplanGraph {
        self.graph
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.starts.len()
    }

    /// Start vertices, one per agent.
    pub fn starts(&self) -> &[VertexId] {
        &self.starts
    }

    /// Goal itineraries, one per agent.
    pub fn itineraries(&self) -> &[Vec<VertexId>] {
        &self.itineraries
    }

    /// The search horizon.
    pub fn max_time(&self) -> usize {
        self.max_time
    }
}

/// A conflict between two agents' paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// Both agents occupy `at` at time `t`.
    Vertex {
        /// First agent.
        a: usize,
        /// Second agent.
        b: usize,
        /// Timestep of the collision.
        t: usize,
        /// The shared vertex.
        at: VertexId,
    },
    /// The agents traverse the same edge in opposite directions during
    /// `t → t+1`.
    Edge {
        /// First agent.
        a: usize,
        /// Second agent.
        b: usize,
        /// Timestep the swap starts.
        t: usize,
        /// Vertex the first agent leaves.
        from: VertexId,
        /// Vertex the first agent enters.
        to: VertexId,
    },
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conflict::Vertex { a, b, t, at } => {
                write!(f, "agents {a} and {b} collide at {at} at t={t}")
            }
            Conflict::Edge { a, b, t, .. } => {
                write!(f, "agents {a} and {b} swap at t={t}")
            }
        }
    }
}

/// A MAPF solution: one timed path per agent (`path[t]` is the agent's
/// vertex at timestep `t`). Shorter paths park at their final vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapfSolution {
    /// Per-agent vertex-per-timestep paths.
    pub paths: Vec<Vec<VertexId>>,
}

impl MapfSolution {
    /// The latest arrival time over all agents (makespan).
    pub fn makespan(&self) -> usize {
        self.paths
            .iter()
            .map(|p| p.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Sum over agents of individual path lengths (sum-of-costs).
    pub fn sum_of_costs(&self) -> usize {
        self.paths.iter().map(|p| p.len().saturating_sub(1)).sum()
    }

    /// The vertex of `agent` at time `t` (parking at the path end).
    pub fn position(&self, agent: usize, t: usize) -> VertexId {
        let path = &self.paths[agent];
        *path
            .get(t)
            .unwrap_or_else(|| path.last().expect("non-empty path"))
    }

    /// Finds all vertex and edge conflicts (empty = valid). Also reports
    /// moves along non-edges as vertex conflicts of an agent with itself
    /// never — malformed moves are validated separately.
    pub fn validate(&self, graph: &FloorplanGraph) -> Vec<Conflict> {
        let mut conflicts = Vec::new();
        let horizon = self.makespan();
        for t in 0..=horizon {
            for a in 0..self.paths.len() {
                // Movement validity.
                if t > 0 {
                    let prev = self.position(a, t - 1);
                    let cur = self.position(a, t);
                    debug_assert!(
                        prev == cur || graph.has_edge(prev, cur),
                        "agent {a} makes an illegal move at t={t}"
                    );
                }
                for b in (a + 1)..self.paths.len() {
                    if self.position(a, t) == self.position(b, t) {
                        conflicts.push(Conflict::Vertex {
                            a,
                            b,
                            t,
                            at: self.position(a, t),
                        });
                    }
                    if t > 0
                        && self.position(a, t) == self.position(b, t - 1)
                        && self.position(a, t - 1) == self.position(b, t)
                        && self.position(a, t) != self.position(a, t - 1)
                    {
                        conflicts.push(Conflict::Edge {
                            a,
                            b,
                            t: t - 1,
                            from: self.position(a, t - 1),
                            to: self.position(a, t),
                        });
                    }
                }
            }
        }
        conflicts
    }

    /// The first conflict, if any (used by CBS node expansion).
    pub fn first_conflict(&self, graph: &FloorplanGraph) -> Option<Conflict> {
        // Scan in time order so CBS resolves the earliest conflict first.
        let horizon = self.makespan();
        for t in 0..=horizon {
            for a in 0..self.paths.len() {
                for b in (a + 1)..self.paths.len() {
                    if self.position(a, t) == self.position(b, t) {
                        return Some(Conflict::Vertex {
                            a,
                            b,
                            t,
                            at: self.position(a, t),
                        });
                    }
                    if t > 0
                        && self.position(a, t) == self.position(b, t - 1)
                        && self.position(a, t - 1) == self.position(b, t)
                        && self.position(a, t) != self.position(a, t - 1)
                    {
                        return Some(Conflict::Edge {
                            a,
                            b,
                            t: t - 1,
                            from: self.position(a, t - 1),
                            to: self.position(a, t),
                        });
                    }
                }
            }
        }
        let _ = graph;
        None
    }
}

/// Errors from MAPF solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapfError {
    /// No conflict-free path exists within the search horizon.
    NoSolution {
        /// Agent that could not be routed (for sequential planners).
        agent: Option<usize>,
    },
    /// The solver exceeded its node or time budget.
    Timeout {
        /// High-level or low-level nodes expanded when the budget expired.
        expanded: usize,
    },
}

impl fmt::Display for MapfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapfError::NoSolution { agent: Some(a) } => {
                write!(f, "no conflict-free path for agent {a}")
            }
            MapfError::NoSolution { agent: None } => f.write_str("no conflict-free plan exists"),
            MapfError::Timeout { expanded } => {
                write!(f, "search budget exhausted after {expanded} expansions")
            }
        }
    }
}

impl std::error::Error for MapfError {}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::GridMap;

    fn line_graph() -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::from_ascii("....").unwrap())
    }

    #[test]
    fn solution_metrics() {
        let g = line_graph();
        let v: Vec<VertexId> = g.vertices().collect();
        let sol = MapfSolution {
            paths: vec![vec![v[0], v[1], v[2]], vec![v[3]]],
        };
        assert_eq!(sol.makespan(), 2);
        assert_eq!(sol.sum_of_costs(), 2);
        assert_eq!(sol.position(1, 5), v[3]); // parks at the end
    }

    #[test]
    fn vertex_conflict_detected() {
        let g = line_graph();
        let v: Vec<VertexId> = g.vertices().collect();
        let sol = MapfSolution {
            paths: vec![vec![v[0], v[1]], vec![v[2], v[1]]],
        };
        let conflicts = sol.validate(&g);
        assert!(matches!(conflicts[0], Conflict::Vertex { t: 1, .. }));
        assert!(sol.first_conflict(&g).is_some());
    }

    #[test]
    fn edge_conflict_detected() {
        let g = line_graph();
        let v: Vec<VertexId> = g.vertices().collect();
        let sol = MapfSolution {
            paths: vec![vec![v[0], v[1]], vec![v[1], v[0]]],
        };
        let conflicts = sol.validate(&g);
        assert!(conflicts
            .iter()
            .any(|c| matches!(c, Conflict::Edge { t: 0, .. })));
    }

    #[test]
    fn parked_agent_conflicts() {
        let g = line_graph();
        let v: Vec<VertexId> = g.vertices().collect();
        // Agent 1 parks at v1; agent 0 drives through it at t=2.
        let sol = MapfSolution {
            paths: vec![vec![v[0], v[0], v[1]], vec![v[1]]],
        };
        assert!(!sol.validate(&g).is_empty());
    }

    #[test]
    fn conflict_free_solution_validates() {
        let g = line_graph();
        let v: Vec<VertexId> = g.vertices().collect();
        let sol = MapfSolution {
            paths: vec![vec![v[0], v[1]], vec![v[3], v[2]]],
        };
        assert!(sol.validate(&g).is_empty());
        assert_eq!(sol.first_conflict(&g), None);
    }
}
