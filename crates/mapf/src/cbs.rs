//! Conflict-Based Search: optimal CBS at `w = 1`, bounded-suboptimal focal
//! ECBS(w) at `w > 1` (the paper's baseline family).

use std::collections::BTreeSet;

use crate::astar::{Constraints, PlanQuery, SpaceTimeAstar};
use crate::{Conflict, MapfError, MapfProblem, MapfSolution};

/// The CBS/ECBS planner for single-goal MAPF instances.
///
/// High level: best-first on the sum-of-f-mins lower bound; with `w > 1` a
/// focal layer picks the node with the fewest conflicts among those within
/// `w ×` the best lower bound. Low level: space-time A* with the matching
/// focal weight, counting conflicts against the node's other paths.
#[derive(Debug, Clone)]
pub struct CbsPlanner {
    /// Suboptimality factor `w ≥ 1` (1 = optimal CBS).
    pub weight: f64,
    /// Budget on high-level node expansions.
    pub max_expansions: usize,
    /// Low-level search horizon.
    pub max_time: usize,
}

impl Default for CbsPlanner {
    fn default() -> Self {
        CbsPlanner {
            weight: 1.0,
            max_expansions: 20_000,
            max_time: 512,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    constraints: Vec<Constraints>,
    paths: Vec<Vec<wsp_model::VertexId>>,
    /// Per-agent low-level lower bounds.
    f_mins: Vec<usize>,
    conflicts: usize,
}

impl Node {
    /// Sum-of-costs of the node's paths (≥ its lower bound).
    fn cost(&self) -> usize {
        self.paths.iter().map(|p| p.len().saturating_sub(1)).sum()
    }
    fn lower_bound(&self) -> usize {
        self.f_mins.iter().sum()
    }
}

impl CbsPlanner {
    /// Solves a single-goal MAPF instance.
    ///
    /// # Panics
    ///
    /// Panics if any agent has an itinerary with more or fewer than one
    /// goal (use [`PrioritizedPlanner`](crate::PrioritizedPlanner) or
    /// [`IteratedPlanner`](crate::IteratedPlanner) for multi-goal routing).
    ///
    /// # Errors
    ///
    /// [`MapfError::NoSolution`] if some agent cannot reach its goal under
    /// any constraints; [`MapfError::Timeout`] if the expansion budget runs
    /// out.
    pub fn solve(&self, problem: &MapfProblem<'_>) -> Result<MapfSolution, MapfError> {
        let n = problem.agent_count();
        let goals: Vec<wsp_model::VertexId> = problem
            .itineraries()
            .iter()
            .map(|it| {
                assert_eq!(it.len(), 1, "CBS handles single-goal itineraries");
                it[0]
            })
            .collect();

        let astar = SpaceTimeAstar {
            max_time: self.max_time,
            focal_weight: self.weight,
        };

        // One search scratch for every low-level replan of this solve.
        let mut scratch = crate::SearchScratch::new();

        // Root node.
        let mut root = Node {
            constraints: vec![Constraints::default(); n],
            paths: vec![Vec::new(); n],
            f_mins: vec![0; n],
            conflicts: 0,
        };
        for (a, &goal) in goals.iter().enumerate() {
            let seg = astar
                .plan_with_scratch(
                    problem.graph(),
                    &PlanQuery {
                        start: problem.starts()[a],
                        start_time: 0,
                        goal,
                        reservations: None,
                        constraints: Some(&root.constraints[a]),
                        conflict_paths: Some(&root.paths),
                        require_parkable: false,
                    },
                    &mut scratch,
                )
                .ok_or(MapfError::NoSolution { agent: Some(a) })?;
            root.paths[a] = seg.path;
            root.f_mins[a] = seg.f_min;
        }
        root.conflicts = MapfSolution {
            paths: root.paths.clone(),
        }
        .validate(problem.graph())
        .len();

        // Ordered by (lower bound, conflicts, id) for focal scans.
        let mut open: BTreeSet<(usize, usize, u64)> = BTreeSet::new();
        let mut arena: Vec<Node> = Vec::new();
        let push = |open: &mut BTreeSet<(usize, usize, u64)>, arena: &mut Vec<Node>, node: Node| {
            let id = arena.len() as u64;
            open.insert((node.lower_bound(), node.conflicts, id));
            arena.push(node);
        };
        push(&mut open, &mut arena, root);

        let mut expanded = 0usize;
        while let Some(&first) = open.first() {
            if expanded >= self.max_expansions {
                return Err(MapfError::Timeout { expanded });
            }
            expanded += 1;

            // Focal selection on the high level.
            let lb_min = first.0;
            let bound = if self.weight > 1.0 {
                (self.weight * lb_min as f64).floor() as usize
            } else {
                lb_min
            };
            let chosen = *open
                .range(..=(bound, usize::MAX, u64::MAX))
                .min_by_key(|&&(lb, c, _)| (c, lb))
                .expect("first element is always in range");
            open.remove(&chosen);
            let node = arena[chosen.2 as usize].clone();
            debug_assert!(node.cost() >= node.lower_bound());

            let solution = MapfSolution {
                paths: node.paths.clone(),
            };
            let Some(conflict) = solution.first_conflict(problem.graph()) else {
                return Ok(solution);
            };

            // Branch: constrain each conflicting agent in turn.
            let (a, b) = match conflict {
                Conflict::Vertex { a, b, .. } | Conflict::Edge { a, b, .. } => (a, b),
            };
            for agent in [a, b] {
                let mut child = node.clone();
                match conflict {
                    Conflict::Vertex { t, at, .. } => {
                        child.constraints[agent].forbid_vertex(at, t);
                    }
                    Conflict::Edge { t, from, to, .. } => {
                        if agent == a {
                            child.constraints[agent].forbid_edge(from, to, t);
                        } else {
                            child.constraints[agent].forbid_edge(to, from, t);
                        }
                    }
                }
                // Replan just that agent against the sibling paths.
                let others: Vec<Vec<wsp_model::VertexId>> = child
                    .paths
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != agent)
                    .map(|(_, p)| p.clone())
                    .collect();
                let Some(seg) = astar.plan_with_scratch(
                    problem.graph(),
                    &PlanQuery {
                        start: problem.starts()[agent],
                        start_time: 0,
                        goal: goals[agent],
                        reservations: None,
                        constraints: Some(&child.constraints[agent]),
                        conflict_paths: Some(&others),
                        require_parkable: false,
                    },
                    &mut scratch,
                ) else {
                    continue; // this branch is a dead end
                };
                child.paths[agent] = seg.path;
                child.f_mins[agent] = seg.f_min;
                child.conflicts = MapfSolution {
                    paths: child.paths.clone(),
                }
                .validate(problem.graph())
                .len();
                push(&mut open, &mut arena, child);
            }
        }
        Err(MapfError::NoSolution { agent: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{FloorplanGraph, GridMap, VertexId};

    fn graph(art: &str) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::from_ascii(art).unwrap())
    }

    fn v(g: &FloorplanGraph, x: u32, y: u32) -> VertexId {
        g.vertex_at((x, y).into()).unwrap()
    }

    #[test]
    fn head_on_conflict_resolved_optimally() {
        // Two agents crossing on a corridor with one passing bay.
        //   y=1: .....
        //   y=0: ..x..   -> wait, keep it open instead:
        let g = graph(".....\n.....");
        let p = MapfProblem::new(
            &g,
            vec![v(&g, 0, 0), v(&g, 4, 0)],
            vec![vec![v(&g, 4, 0)], vec![v(&g, 0, 0)]],
        );
        let sol = CbsPlanner::default().solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
        // Optimal sum of costs: one agent detours via row 1 (4 + 6 = 10)
        // or both swap rows partially; CBS guarantees the optimum, which
        // for this corridor is 10.
        assert_eq!(sol.sum_of_costs(), 10);
    }

    #[test]
    fn narrow_swap_is_unsolvable() {
        let g = graph("...");
        let p = MapfProblem::new(
            &g,
            vec![v(&g, 0, 0), v(&g, 2, 0)],
            vec![vec![v(&g, 2, 0)], vec![v(&g, 0, 0)]],
        );
        let out = CbsPlanner {
            max_expansions: 2_000,
            max_time: 32,
            ..CbsPlanner::default()
        }
        .solve(&p);
        assert!(out.is_err());
    }

    #[test]
    fn ecbs_solves_with_bounded_cost() {
        let g = graph(".....\n.....\n.....");
        let starts = vec![v(&g, 0, 0), v(&g, 4, 0), v(&g, 0, 2), v(&g, 4, 2)];
        let goals = vec![
            vec![v(&g, 4, 2)],
            vec![v(&g, 0, 2)],
            vec![v(&g, 4, 0)],
            vec![v(&g, 0, 0)],
        ];
        let p = MapfProblem::new(&g, starts.clone(), goals.clone());
        let optimal = CbsPlanner::default().solve(&p).unwrap();
        let ecbs = CbsPlanner {
            weight: 1.5,
            ..CbsPlanner::default()
        }
        .solve(&p)
        .unwrap();
        assert!(ecbs.validate(&g).is_empty());
        assert!(
            (ecbs.sum_of_costs() as f64) <= 1.5 * optimal.sum_of_costs() as f64 + 1e-9,
            "ecbs {} vs optimal {}",
            ecbs.sum_of_costs(),
            optimal.sum_of_costs()
        );
    }

    #[test]
    fn expansion_budget_reported() {
        // Force a timeout with a zero-expansion budget on a conflicting
        // instance.
        let g = graph(".....\n.....");
        let p = MapfProblem::new(
            &g,
            vec![v(&g, 0, 0), v(&g, 4, 0)],
            vec![vec![v(&g, 4, 0)], vec![v(&g, 0, 0)]],
        );
        let out = CbsPlanner {
            max_expansions: 0,
            ..CbsPlanner::default()
        }
        .solve(&p);
        assert!(matches!(out, Err(MapfError::Timeout { .. })));
    }

    #[test]
    #[should_panic(expected = "single-goal")]
    fn multi_goal_panics() {
        let g = graph("...");
        let p = MapfProblem::new(&g, vec![v(&g, 0, 0)], vec![vec![v(&g, 1, 0), v(&g, 2, 0)]]);
        let _ = CbsPlanner::default().solve(&p);
    }
}
