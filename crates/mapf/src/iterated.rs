//! The lifelong "Iterated" wrapper: repeatedly solve one-shot MAPF to every
//! agent's next waypoint, mirroring the paper's Iterated EECBS baseline.

use wsp_model::VertexId;

use crate::{CbsPlanner, MapfError, MapfProblem, MapfSolution, PrioritizedPlanner};

/// The inner one-shot solver an [`IteratedPlanner`] drives.
#[derive(Debug, Clone)]
pub enum InnerSolver {
    /// Bounded-suboptimal focal CBS (ECBS(w)); the paper's baseline
    /// configuration.
    Ecbs(CbsPlanner),
    /// Prioritized planning (faster, incomplete).
    Prioritized(PrioritizedPlanner),
}

/// Lifelong multi-goal planner: each iteration routes every agent to its
/// next waypoint with the inner solver, then advances the itineraries and
/// repeats until all waypoints are consumed.
///
/// This is the structure of Iterated EECBS as used in the paper's §V
/// comparison: the baseline is handed the same shelf/station visit
/// sequences that the co-design pipeline produced, and must find
/// collision-free timed paths realizing them.
#[derive(Debug, Clone)]
pub struct IteratedPlanner {
    /// The one-shot solver run every iteration.
    pub inner: InnerSolver,
    /// Hard cap on iterations (waypoint rounds).
    pub max_iterations: usize,
}

impl Default for IteratedPlanner {
    fn default() -> Self {
        IteratedPlanner {
            inner: InnerSolver::Ecbs(CbsPlanner {
                weight: 2.0,
                ..CbsPlanner::default()
            }),
            max_iterations: 256,
        }
    }
}

impl IteratedPlanner {
    /// Solves a multi-goal instance by iterated one-shot solving.
    ///
    /// # Errors
    ///
    /// Propagates the inner solver's failure, or returns
    /// [`MapfError::Timeout`] when the iteration cap is reached with
    /// waypoints outstanding.
    pub fn solve(&self, problem: &MapfProblem<'_>) -> Result<MapfSolution, MapfError> {
        let n = problem.agent_count();
        let mut position: Vec<VertexId> = problem.starts().to_vec();
        let mut remaining: Vec<std::collections::VecDeque<VertexId>> = problem
            .itineraries()
            .iter()
            .map(|it| it.iter().copied().collect())
            .collect();
        let mut full_paths: Vec<Vec<VertexId>> = position.iter().map(|&p| vec![p]).collect();

        for _iteration in 0..self.max_iterations {
            if remaining.iter().all(|r| r.is_empty()) {
                return Ok(MapfSolution { paths: full_paths });
            }
            // One-shot instance: each agent's next waypoint (agents with an
            // empty queue hold their position).
            let goals: Vec<Vec<VertexId>> = (0..n)
                .map(|a| vec![remaining[a].front().copied().unwrap_or(position[a])])
                .collect();
            let shot = MapfProblem::new(problem.graph(), position.clone(), goals)
                .with_max_time(problem.max_time());
            let solution = match &self.inner {
                InnerSolver::Ecbs(cbs) => cbs.solve(&shot)?,
                InnerSolver::Prioritized(pp) => pp.solve(&shot)?,
            };
            // Synchronize: every agent is padded to the iteration makespan.
            let makespan = solution.makespan();
            for a in 0..n {
                for t in 1..=makespan {
                    full_paths[a].push(solution.position(a, t));
                }
                position[a] = solution.position(a, makespan);
                if remaining[a].front() == Some(&position[a]) {
                    remaining[a].pop_front();
                }
                if full_paths[a].len() > problem.max_time() {
                    return Err(MapfError::Timeout {
                        expanded: full_paths[a].len(),
                    });
                }
            }
        }
        Err(MapfError::Timeout {
            expanded: self.max_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{FloorplanGraph, GridMap};

    fn graph(art: &str) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::from_ascii(art).unwrap())
    }

    fn v(g: &FloorplanGraph, x: u32, y: u32) -> VertexId {
        g.vertex_at((x, y).into()).unwrap()
    }

    #[test]
    fn single_agent_tour() {
        let g = graph(".....\n.....");
        let p = MapfProblem::new(
            &g,
            vec![v(&g, 0, 0)],
            vec![vec![v(&g, 4, 0), v(&g, 4, 1), v(&g, 0, 1)]],
        );
        let sol = IteratedPlanner::default().solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
        let path = &sol.paths[0];
        assert!(path.contains(&v(&g, 4, 0)));
        assert!(path.contains(&v(&g, 4, 1)));
        assert_eq!(*path.last().unwrap(), v(&g, 0, 1));
    }

    #[test]
    fn two_agents_interleaved_tours() {
        let g = graph(".....\n.....\n.....");
        let p = MapfProblem::new(
            &g,
            vec![v(&g, 0, 0), v(&g, 4, 2)],
            vec![
                vec![v(&g, 4, 0), v(&g, 0, 0)],
                vec![v(&g, 0, 2), v(&g, 4, 2)],
            ],
        );
        let sol = IteratedPlanner::default().solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
        assert_eq!(*sol.paths[0].last().unwrap(), v(&g, 0, 0));
        assert_eq!(*sol.paths[1].last().unwrap(), v(&g, 4, 2));
    }

    #[test]
    fn prioritized_inner_solver_works() {
        let g = graph(".....\n.....");
        let p = MapfProblem::new(
            &g,
            vec![v(&g, 0, 0), v(&g, 4, 1)],
            vec![vec![v(&g, 4, 0)], vec![v(&g, 0, 1)]],
        );
        let planner = IteratedPlanner {
            inner: InnerSolver::Prioritized(PrioritizedPlanner::default()),
            ..IteratedPlanner::default()
        };
        let sol = planner.solve(&p).unwrap();
        assert!(sol.validate(&g).is_empty());
    }

    #[test]
    fn iteration_cap_reported() {
        let g = graph("..");
        let p = MapfProblem::new(&g, vec![v(&g, 0, 0)], vec![vec![v(&g, 1, 0); 50]]);
        let planner = IteratedPlanner {
            max_iterations: 3,
            ..IteratedPlanner::default()
        };
        // 50 repeats of the same waypoint: each iteration consumes one
        // (agent already there? it must *reach* it; consecutive duplicates
        // are consumed one per round) -> cap hits.
        let out = planner.solve(&p);
        assert!(matches!(out, Err(MapfError::Timeout { .. })));
    }
}
