//! Space-time reservation tables shared by the sequential planners.
//!
//! Rebuilt on flat storage: per-timestep dense bitsets for vertex
//! occupancy and per-timestep dense move tables for edge-swap checks, both
//! indexed by [`VertexId`]. Every query is a couple of array loads — no
//! hashing, no allocation.

use wsp_model::VertexId;

/// Sentinel for "no reservation" in the dense `u32` tables.
const NONE: u32 = wsp_model::NO_INDEX;

/// Records which (vertex, time) and (edge, time) slots are taken by
/// already-planned agents, plus permanent "parked" reservations for agents
/// that have finished.
///
/// The table is sized for a fixed graph: construct it with
/// [`ReservationTable::new`] passing
/// [`FloorplanGraph::vertex_count`](wsp_model::FloorplanGraph::vertex_count).
/// Time buckets grow on demand as paths are reserved.
#[derive(Debug, Clone)]
pub struct ReservationTable {
    /// Number of vertices (`n`); all dense tables are sized by it.
    n: usize,
    /// `u64` words per time bucket in `vertex_bits`.
    words: usize,
    /// Bucket `t` spans `vertex_bits[t * words .. (t + 1) * words]`; bit
    /// `v` set means vertex `v` is reserved at time `t`.
    vertex_bits: Vec<u64>,
    /// Bucket `t` spans `move_to[t * n .. (t + 1) * n]`; entry `v` is the
    /// destination of the move reserved to depart `v` at time `t` (at most
    /// one, since `v` itself is exclusively reserved at `t`), or [`NONE`].
    move_to: Vec<u32>,
    /// `parked_from[v]` is the earliest time `v` is parked on forever, or
    /// [`NONE`].
    parked_from: Vec<u32>,
    /// `last_timed[v]` is `1 +` the latest time with a timed reservation
    /// on `v` (`0` = none); drives [`ReservationTable::free_forever`].
    last_timed: Vec<u32>,
    /// Number of allocated time buckets.
    horizon: usize,
}

impl ReservationTable {
    /// An empty table for a graph of `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        ReservationTable {
            n: vertex_count,
            words: vertex_count.div_ceil(64),
            vertex_bits: Vec::new(),
            move_to: Vec::new(),
            parked_from: vec![NONE; vertex_count],
            last_timed: vec![0; vertex_count],
            horizon: 0,
        }
    }

    /// The vertex count this table was sized for.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    fn grow_to(&mut self, t: usize) {
        if t >= self.horizon {
            let new_horizon = (t + 1).next_power_of_two();
            self.vertex_bits.resize(new_horizon * self.words, 0);
            self.move_to.resize(new_horizon * self.n, NONE);
            self.horizon = new_horizon;
        }
    }

    fn reserve_vertex(&mut self, v: VertexId, t: usize) {
        self.grow_to(t);
        self.vertex_bits[t * self.words + v.index() / 64] |= 1u64 << (v.index() % 64);
        self.last_timed[v.index()] = self.last_timed[v.index()].max(t as u32 + 1);
    }

    /// Reserves every slot of a timed path, parking the agent at the final
    /// vertex from its arrival time onward.
    pub fn reserve_path(&mut self, path: &[VertexId]) {
        for (t, &v) in path.iter().enumerate() {
            self.reserve_vertex(v, t);
            if t > 0 {
                let u = path[t - 1];
                if u != v {
                    self.move_to[(t - 1) * self.n + u.index()] = v.0;
                }
            }
        }
        if let Some(&last) = path.last() {
            self.park(last, path.len().saturating_sub(1));
        }
    }

    /// Reserves `v` permanently from time `t` onward.
    pub fn park(&mut self, v: VertexId, t: usize) {
        let slot = &mut self.parked_from[v.index()];
        *slot = (*slot).min(t as u32);
    }

    /// Whether vertex `v` is free at time `t`.
    pub fn vertex_free(&self, v: VertexId, t: usize) -> bool {
        if t < self.horizon
            && self.vertex_bits[t * self.words + v.index() / 64] & (1u64 << (v.index() % 64)) != 0
        {
            return false;
        }
        // `NONE` is `u32::MAX`, so unparked vertices always pass this test.
        (t as u32) < self.parked_from[v.index()]
    }

    /// Whether the move `u → v` starting at time `t` is free of edge-swap
    /// reservations.
    pub fn edge_free(&self, u: VertexId, v: VertexId, t: usize) -> bool {
        t >= self.horizon || self.move_to[t * self.n + v.index()] != u.0
    }

    /// Whether `v` stays free forever from time `t` on (needed to finish a
    /// path there).
    pub fn free_forever(&self, v: VertexId, t: usize) -> bool {
        self.parked_from[v.index()] == NONE && self.last_timed[v.index()] <= t as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn table() -> ReservationTable {
        ReservationTable::new(16)
    }

    #[test]
    fn path_reservation_blocks_slots() {
        let mut rt = table();
        rt.reserve_path(&[v(0), v(1), v(2)]);
        assert!(!rt.vertex_free(v(0), 0));
        assert!(!rt.vertex_free(v(1), 1));
        assert!(rt.vertex_free(v(1), 0));
        // Edge swap v1->v0 at t=0 is blocked by the move v0->v1.
        assert!(!rt.edge_free(v(1), v(0), 0));
        assert!(rt.edge_free(v(1), v(0), 1));
        // Parked at v2 from t=2 onward.
        assert!(!rt.vertex_free(v(2), 2));
        assert!(!rt.vertex_free(v(2), 99));
        assert!(rt.vertex_free(v(2), 1));
    }

    #[test]
    fn parking_takes_earliest_time() {
        let mut rt = table();
        rt.park(v(5), 10);
        rt.park(v(5), 4);
        assert!(rt.vertex_free(v(5), 3));
        assert!(!rt.vertex_free(v(5), 4));
    }

    #[test]
    fn free_forever_checks_future() {
        let mut rt = table();
        rt.reserve_path(&[v(0), v(1)]);
        // v0 is reserved at t=0 only; free forever from t=1.
        assert!(rt.free_forever(v(0), 1));
        assert!(!rt.free_forever(v(0), 0));
        // v1 is parked.
        assert!(!rt.free_forever(v(1), 5));
    }

    #[test]
    fn waits_do_not_create_edge_reservations() {
        let mut rt = table();
        rt.reserve_path(&[v(3), v(3), v(4)]);
        // The wait at v3 must not block any swap; the move v3->v4 at t=1
        // blocks the counter-move v4->v3 at t=1.
        assert!(rt.edge_free(v(4), v(3), 0));
        assert!(!rt.edge_free(v(4), v(3), 1));
    }

    #[test]
    fn queries_beyond_horizon_are_free() {
        let mut rt = table();
        rt.reserve_vertex(v(1), 2);
        assert!(rt.vertex_free(v(1), 1000));
        assert!(rt.edge_free(v(0), v(1), 1000));
    }
}
