//! Space-time reservation tables shared by the sequential planners.
//!
//! Storage is *adaptive per time bucket* so memory stays proportional to
//! the number of reservations actually made, not to `horizon × vertices`:
//! each bucket starts as a sorted slot list (one entry per reserved vertex,
//! carrying its departure, so occupancy and edge-swap lookups share one
//! binary search) and is promoted to the PR 1 dense layout — occupancy
//! bitset plus per-vertex departure row, O(1) queries — only once its
//! occupancy crosses the ~1.5% density threshold where tens of agents
//! sharing a timestep justify the per-vertex cost. Paper-scale maps, where
//! agent teams crowd a few hundred vertices, promote almost immediately
//! and keep PR 1's speed; 100k-vertex maps with a handful of agents stay
//! sparse and never pay O(horizon × vertices) memory. See
//! [`ReservationTable::memory_bytes`] /
//! [`ReservationTable::dense_equivalent_bytes`] and the `scaling` bench.

use wsp_model::VertexId;

/// Sentinel for "no reservation" in the `u32` slot tables.
const NONE: u32 = wsp_model::NO_INDEX;

/// How a [`ReservationTable`] stores each time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoragePolicy {
    /// Sparse slot lists, promoted per bucket to a dense bitset once the
    /// bucket's occupancy crosses the density threshold (the default).
    #[default]
    Adaptive,
    /// Never promote: pure sorted-list buckets regardless of density
    /// (reference backend for the equivalence property tests).
    ForceSparse,
    /// Dense bitsets from the first reservation in every bucket — the PR 1
    /// occupancy layout (reference backend for the equivalence property
    /// tests and the memory-regression baseline).
    ForceDense,
}

/// One reserved vertex in a sparse bucket (or one departure in a move
/// list): the vertex and the destination of the move reserved to depart it
/// this step, or [`NONE`].
#[derive(Debug, Clone, Copy)]
struct Slot {
    vertex: u32,
    move_to: u32,
}

/// One time bucket of reservations.
#[derive(Debug, Clone)]
enum Bucket {
    /// Sorted by `vertex`; binary-searched occupancy and departure lookups.
    Sparse(Vec<Slot>),
    /// The PR 1 dense layout: occupancy bitset plus a per-vertex departure
    /// row, both O(1) to query — paid for only in buckets whose occupancy
    /// crossed the density threshold. `touched` lists the reserved
    /// vertices so [`ReservationTable::reset`] clears in O(occupancy),
    /// not O(vertices).
    Dense {
        bits: Vec<u64>,
        move_to: Vec<u32>,
        touched: Vec<u32>,
    },
}

impl Bucket {
    fn contains(&self, v: u32) -> bool {
        match self {
            Bucket::Sparse(slots) => slots.binary_search_by_key(&v, |s| s.vertex).is_ok(),
            Bucket::Dense { bits, .. } => bits[(v / 64) as usize] & (1u64 << (v % 64)) != 0,
        }
    }

    /// The destination reserved to depart `v` this step, or [`NONE`].
    fn move_from(&self, v: u32) -> u32 {
        match self {
            Bucket::Sparse(slots) => match slots.binary_search_by_key(&v, |s| s.vertex) {
                Ok(at) => slots[at].move_to,
                Err(_) => NONE,
            },
            Bucket::Dense { move_to, .. } => move_to[v as usize],
        }
    }

    fn insert_vertex(&mut self, v: u32) {
        match self {
            Bucket::Sparse(slots) => {
                if let Err(at) = slots.binary_search_by_key(&v, |s| s.vertex) {
                    slots.insert(
                        at,
                        Slot {
                            vertex: v,
                            move_to: NONE,
                        },
                    );
                }
            }
            Bucket::Dense { bits, touched, .. } => {
                let word = &mut bits[(v / 64) as usize];
                if *word & (1u64 << (v % 64)) == 0 {
                    *word |= 1u64 << (v % 64);
                    touched.push(v);
                }
            }
        }
    }

    /// Records the departure `from → to`. `from` must already be reserved
    /// in this bucket ([`ReservationTable::reserve_path`] reserves every
    /// vertex before recording its departure) — a sparse slot insert here
    /// would create an occupancy the dense backend doesn't have.
    fn set_move(&mut self, from: u32, to: u32) {
        match self {
            Bucket::Sparse(slots) => match slots.binary_search_by_key(&from, |s| s.vertex) {
                Ok(at) => slots[at].move_to = to,
                Err(_) => unreachable!("set_move on unreserved vertex v{from}"),
            },
            Bucket::Dense { move_to, .. } => move_to[from as usize] = to,
        }
    }

    /// Occupied-slot count of a sparse bucket (promotion trigger).
    fn sparse_len(&self) -> Option<usize> {
        match self {
            Bucket::Sparse(slots) => Some(slots.len()),
            Bucket::Dense { .. } => None,
        }
    }

    /// Heap bytes owned by this bucket.
    fn heap_bytes(&self) -> usize {
        match self {
            Bucket::Sparse(slots) => slots.capacity() * std::mem::size_of::<Slot>(),
            Bucket::Dense {
                bits,
                move_to,
                touched,
            } => bits.capacity() * 8 + move_to.capacity() * 4 + touched.capacity() * 4,
        }
    }

    /// Empties the bucket in O(occupancy), keeping its storage (and a
    /// promoted bucket's dense layout) for reuse.
    fn clear(&mut self) {
        match self {
            Bucket::Sparse(slots) => slots.clear(),
            Bucket::Dense {
                bits,
                move_to,
                touched,
            } => {
                for &v in touched.iter() {
                    bits[(v / 64) as usize] &= !(1u64 << (v % 64));
                    move_to[v as usize] = NONE;
                }
                touched.clear();
            }
        }
    }
}

/// Records which (vertex, time) and (edge, time) slots are taken by
/// already-planned agents, plus permanent "parked" reservations for agents
/// that have finished.
///
/// The table is sized for a fixed graph: construct it with
/// [`ReservationTable::new`] passing
/// [`FloorplanGraph::vertex_count`](wsp_model::FloorplanGraph::vertex_count).
/// Time buckets grow on demand as paths are reserved, and each bucket's
/// storage adapts to its occupancy (see [`StoragePolicy`]).
///
/// # Examples
///
/// ```
/// use wsp_mapf::ReservationTable;
/// use wsp_model::VertexId;
///
/// let mut rt = ReservationTable::new(100_000);
/// rt.reserve_path(&[VertexId(7), VertexId(8), VertexId(8), VertexId(9)]);
/// assert!(!rt.vertex_free(VertexId(8), 1)); // occupied while passing
/// assert!(rt.vertex_free(VertexId(8), 5)); // freed afterwards
/// assert!(!rt.vertex_free(VertexId(9), 100)); // parked at the goal forever
/// assert!(!rt.edge_free(VertexId(9), VertexId(8), 2)); // no counter-swap
///
/// // Sparse buckets: a 512-step path costs slots, not 512 dense
/// // 100k-entry rows (which would be ~200 MB).
/// let long: Vec<VertexId> = (0..512).map(VertexId).collect();
/// rt.reserve_path(&long);
/// assert!(rt.memory_bytes() < rt.dense_equivalent_bytes() / 100);
/// ```
#[derive(Debug, Clone)]
pub struct ReservationTable {
    /// Number of vertices (`n`); the per-vertex parked tables and the dense
    /// bitsets (where promoted) are sized by it.
    n: usize,
    /// `u64` words per dense occupancy bitset.
    words: usize,
    /// Bucket storage policy.
    policy: StoragePolicy,
    /// Sparse occupancy above which an Adaptive bucket is promoted to a
    /// bitset (chosen so the bitset is no larger than the slot list).
    promote_at: usize,
    /// Allocated bucket storage, indexed by `t`; only the first
    /// [`active`](Self::active) buckets hold reservations (the rest are
    /// cleared leftovers kept for reuse after a [`reset`](Self::reset)).
    buckets: Vec<Bucket>,
    /// Logical horizon: 1 + the latest reserved timestep.
    active: usize,
    /// `parked_from[v]` is the earliest time `v` is parked on forever, or
    /// [`NONE`].
    parked_from: Vec<u32>,
    /// `last_timed[v]` is `1 +` the latest time with a timed reservation
    /// on `v` (`0` = none); drives [`ReservationTable::free_forever`].
    last_timed: Vec<u32>,
    /// Vertices whose `parked_from`/`last_timed` entries were written —
    /// the touched list [`reset`](Self::reset) clears instead of
    /// re-initializing O(vertices) state.
    touched_vertices: Vec<u32>,
}

impl ReservationTable {
    /// An empty adaptive table for a graph of `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        Self::with_policy(vertex_count, StoragePolicy::default())
    }

    /// An empty table with an explicit bucket storage policy.
    pub fn with_policy(vertex_count: usize, policy: StoragePolicy) -> Self {
        let words = vertex_count.div_ceil(64);
        ReservationTable {
            n: vertex_count,
            words,
            policy,
            // Promote at ~1.5% occupancy (n/64 slots): the dense layout
            // costs `4.125n` bytes per bucket, so paying it only when tens
            // of agents share one timestep keeps memory proportional to
            // actual occupancy while the paper-scale maps — where dozens of
            // agents crowd a few hundred vertices — retain PR 1's O(1)
            // query speed. The floor of 4 keeps tiny test graphs honest.
            promote_at: words.max(4),
            buckets: Vec::new(),
            active: 0,
            parked_from: vec![NONE; vertex_count],
            last_timed: vec![0; vertex_count],
            touched_vertices: Vec::new(),
        }
    }

    /// Empties the table in O(reservations made), reusing all allocated
    /// storage: bucket slot lists (and promoted dense layouts) are
    /// cleared through their touched lists, and the per-vertex parked /
    /// last-timed tables are unwritten entry by entry. After a reset the
    /// table answers every query exactly like a freshly constructed one
    /// (property-tested in `tests/reservation_reset.rs`) — this is what
    /// lets `wsp-sim` hold one table per simulation instead of paying an
    /// O(vertices) rebuild on every repair event.
    pub fn reset(&mut self) {
        for bucket in &mut self.buckets[..self.active] {
            bucket.clear();
        }
        self.active = 0;
        for &v in &self.touched_vertices {
            self.parked_from[v as usize] = NONE;
            self.last_timed[v as usize] = 0;
        }
        self.touched_vertices.clear();
    }

    /// Records that `v`'s parked/last-timed state is about to be written
    /// (so [`reset`](Self::reset) can undo it).
    fn touch(&mut self, v: usize) {
        if self.parked_from[v] == NONE && self.last_timed[v] == 0 {
            self.touched_vertices.push(v as u32);
        }
    }

    /// The vertex count this table was sized for.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The bucket storage policy.
    pub fn policy(&self) -> StoragePolicy {
        self.policy
    }

    /// Number of active time buckets (1 + the latest reserved timestep).
    pub fn horizon(&self) -> usize {
        self.active
    }

    fn empty_bucket(&self) -> Bucket {
        match self.policy {
            StoragePolicy::ForceDense => Bucket::Dense {
                bits: vec![0; self.words],
                move_to: vec![NONE; self.n],
                touched: Vec::new(),
            },
            _ => Bucket::Sparse(Vec::new()),
        }
    }

    fn bucket_mut(&mut self, t: usize) -> &mut Bucket {
        // Buckets past `active` are cleared leftovers from a reset; grow
        // the allocation only beyond what was ever reserved.
        while self.buckets.len() <= t {
            let b = self.empty_bucket();
            self.buckets.push(b);
        }
        self.active = self.active.max(t + 1);
        &mut self.buckets[t]
    }

    /// Promotes bucket `t` to a bitset if adaptive and past the threshold.
    fn maybe_promote(&mut self, t: usize) {
        if self.policy != StoragePolicy::Adaptive {
            return;
        }
        let Some(len) = self.buckets[t].sparse_len() else {
            return;
        };
        if len < self.promote_at {
            return;
        }
        let Bucket::Sparse(slots) = std::mem::replace(
            &mut self.buckets[t],
            Bucket::Dense {
                bits: vec![0; self.words],
                move_to: vec![NONE; self.n],
                touched: Vec::new(),
            },
        ) else {
            unreachable!("sparse_len returned Some");
        };
        let Bucket::Dense {
            bits,
            move_to,
            touched,
        } = &mut self.buckets[t]
        else {
            unreachable!("just installed");
        };
        for slot in slots {
            bits[(slot.vertex / 64) as usize] |= 1u64 << (slot.vertex % 64);
            if slot.move_to != NONE {
                move_to[slot.vertex as usize] = slot.move_to;
            }
            touched.push(slot.vertex);
        }
    }

    fn reserve_vertex(&mut self, v: VertexId, t: usize) {
        self.touch(v.index());
        self.bucket_mut(t).insert_vertex(v.0);
        self.maybe_promote(t);
        self.last_timed[v.index()] = self.last_timed[v.index()].max(t as u32 + 1);
    }

    /// Reserves every slot of a timed path, parking the agent at the final
    /// vertex from its arrival time onward.
    pub fn reserve_path(&mut self, path: &[VertexId]) {
        for (t, &v) in path.iter().enumerate() {
            self.reserve_vertex(v, t);
            if t > 0 {
                let u = path[t - 1];
                if u != v {
                    self.buckets[t - 1].set_move(u.0, v.0);
                }
            }
        }
        if let Some(&last) = path.last() {
            self.park(last, path.len().saturating_sub(1));
        }
    }

    /// Reserves `v` permanently from time `t` onward.
    pub fn park(&mut self, v: VertexId, t: usize) {
        self.touch(v.index());
        let slot = &mut self.parked_from[v.index()];
        *slot = (*slot).min(t as u32);
    }

    /// Whether vertex `v` is free at time `t`.
    pub fn vertex_free(&self, v: VertexId, t: usize) -> bool {
        if t < self.active && self.buckets[t].contains(v.0) {
            return false;
        }
        // `NONE` is `u32::MAX`, so unparked vertices always pass this test.
        (t as u32) < self.parked_from[v.index()]
    }

    /// Whether the move `u → v` starting at time `t` is free of edge-swap
    /// reservations.
    pub fn edge_free(&self, u: VertexId, v: VertexId, t: usize) -> bool {
        t >= self.active || self.buckets[t].move_from(v.0) != u.0
    }

    /// Whether `v` stays free forever from time `t` on (needed to finish a
    /// path there).
    pub fn free_forever(&self, v: VertexId, t: usize) -> bool {
        self.parked_from[v.index()] == NONE && self.last_timed[v.index()] <= t as u32
    }

    /// The earliest time from which `v` is free forever, or `None` if `v`
    /// is parked on permanently. Space-time A* folds this into its
    /// heuristic for park-at-goal queries: no admissible plan can finish
    /// before this time, so lifting `f` to it prunes the whole
    /// wait-out-the-traffic search band.
    pub fn earliest_free_forever(&self, v: VertexId) -> Option<usize> {
        (self.parked_from[v.index()] == NONE).then(|| self.last_timed[v.index()] as usize)
    }

    /// Approximate heap bytes currently held by the table (buckets plus the
    /// two per-vertex parked tables). Monotone in the reservations made, so
    /// the value after a solve is the solve's peak.
    pub fn memory_bytes(&self) -> usize {
        let buckets: usize = self.buckets.iter().map(Bucket::heap_bytes).sum();
        buckets
            + self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self.parked_from.capacity() * 4
            + self.last_timed.capacity() * 4
            + self.touched_vertices.capacity() * 4
    }

    /// Bytes the PR 1 dense layout (per-`t` occupancy bitset plus per-`t`
    /// `u32` move table, both sized by `vertex_count`) would hold at this
    /// table's current horizon — the O(horizon × vertices) baseline the
    /// scaling benches compare against.
    pub fn dense_equivalent_bytes(&self) -> usize {
        self.active * (self.words * 8 + self.n * 4) + self.n * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn table() -> ReservationTable {
        ReservationTable::new(16)
    }

    #[test]
    fn path_reservation_blocks_slots() {
        let mut rt = table();
        rt.reserve_path(&[v(0), v(1), v(2)]);
        assert!(!rt.vertex_free(v(0), 0));
        assert!(!rt.vertex_free(v(1), 1));
        assert!(rt.vertex_free(v(1), 0));
        // Edge swap v1->v0 at t=0 is blocked by the move v0->v1.
        assert!(!rt.edge_free(v(1), v(0), 0));
        assert!(rt.edge_free(v(1), v(0), 1));
        // Parked at v2 from t=2 onward.
        assert!(!rt.vertex_free(v(2), 2));
        assert!(!rt.vertex_free(v(2), 99));
        assert!(rt.vertex_free(v(2), 1));
    }

    #[test]
    fn parking_takes_earliest_time() {
        let mut rt = table();
        rt.park(v(5), 10);
        rt.park(v(5), 4);
        assert!(rt.vertex_free(v(5), 3));
        assert!(!rt.vertex_free(v(5), 4));
    }

    #[test]
    fn free_forever_checks_future() {
        let mut rt = table();
        rt.reserve_path(&[v(0), v(1)]);
        // v0 is reserved at t=0 only; free forever from t=1.
        assert!(rt.free_forever(v(0), 1));
        assert!(!rt.free_forever(v(0), 0));
        // v1 is parked.
        assert!(!rt.free_forever(v(1), 5));
    }

    #[test]
    fn waits_do_not_create_edge_reservations() {
        let mut rt = table();
        rt.reserve_path(&[v(3), v(3), v(4)]);
        // The wait at v3 must not block any swap; the move v3->v4 at t=1
        // blocks the counter-move v4->v3 at t=1.
        assert!(rt.edge_free(v(4), v(3), 0));
        assert!(!rt.edge_free(v(4), v(3), 1));
    }

    #[test]
    fn queries_beyond_horizon_are_free() {
        let mut rt = table();
        rt.reserve_path(&[v(0), v(1)]);
        assert!(rt.vertex_free(v(3), 1000));
        assert!(rt.edge_free(v(0), v(3), 1000));
    }

    #[test]
    fn adaptive_buckets_promote_past_the_density_threshold() {
        let n = 4096usize;
        let mut rt = ReservationTable::new(n);
        assert_eq!(rt.promote_at, 64); // n / 64
                                       // Reserve one dense wave at t=0: every vertex of the first rows.
        for i in 0..200u32 {
            rt.reserve_vertex(v(i), 0);
        }
        assert!(matches!(rt.buckets[0], Bucket::Dense { .. }));
        // A lone reservation at t=1 stays sparse.
        rt.reserve_vertex(v(0), 1);
        assert!(matches!(rt.buckets[1], Bucket::Sparse(_)));
        // Queries agree across representations.
        for i in 0..210u32 {
            assert_eq!(rt.vertex_free(v(i), 0), i >= 200);
        }
    }

    #[test]
    fn promotion_preserves_pending_moves() {
        let n = 4096usize;
        let mut rt = ReservationTable::new(n);
        // A long path at increasing vertices creates moves in bucket t for
        // each t; then flood bucket 0 past the threshold.
        rt.reserve_path(&[v(10), v(11), v(12)]);
        for i in 100..200u32 {
            rt.reserve_vertex(v(i), 0);
        }
        assert!(matches!(rt.buckets[0], Bucket::Dense { .. }));
        // The v10 -> v11 move at t=0 survived the promotion.
        assert!(!rt.edge_free(v(11), v(10), 0));
        assert!(rt.edge_free(v(10), v(11), 0));
    }

    #[test]
    fn forced_backends_answer_identically_on_a_fixed_scenario() {
        let paths: [&[VertexId]; 3] = [
            &[v(0), v(1), v(2), v(3)],
            &[v(8), v(8), v(9)],
            &[v(12), v(13)],
        ];
        let mut tables = [
            ReservationTable::with_policy(16, StoragePolicy::Adaptive),
            ReservationTable::with_policy(16, StoragePolicy::ForceSparse),
            ReservationTable::with_policy(16, StoragePolicy::ForceDense),
        ];
        for table in &mut tables {
            for path in paths {
                table.reserve_path(path);
            }
        }
        let [a, s, d] = &tables;
        for t in 0..8 {
            for x in 0..16u32 {
                assert_eq!(a.vertex_free(v(x), t), s.vertex_free(v(x), t));
                assert_eq!(a.vertex_free(v(x), t), d.vertex_free(v(x), t));
                assert_eq!(a.free_forever(v(x), t), s.free_forever(v(x), t));
                assert_eq!(a.free_forever(v(x), t), d.free_forever(v(x), t));
                for y in 0..16u32 {
                    assert_eq!(a.edge_free(v(x), v(y), t), s.edge_free(v(x), v(y), t));
                    assert_eq!(a.edge_free(v(x), v(y), t), d.edge_free(v(x), v(y), t));
                }
            }
        }
    }

    #[test]
    fn reset_answers_like_a_fresh_table() {
        let n = 4096usize;
        let mut rt = ReservationTable::new(n);
        // Promote bucket 0, park a vertex, run a long path.
        for i in 0..200u32 {
            rt.reserve_vertex(v(i), 0);
        }
        rt.reserve_path(&[v(10), v(11), v(12)]);
        assert!(matches!(rt.buckets[0], Bucket::Dense { .. }));
        rt.reset();
        assert_eq!(rt.horizon(), 0);
        // The promoted bucket keeps its dense layout but is empty.
        assert!(matches!(rt.buckets[0], Bucket::Dense { .. }));
        let fresh = ReservationTable::new(n);
        for t in 0..6 {
            for x in 0..220u32 {
                assert_eq!(rt.vertex_free(v(x), t), fresh.vertex_free(v(x), t));
                assert_eq!(rt.free_forever(v(x), t), fresh.free_forever(v(x), t));
            }
        }
        // Reuse after reset behaves like first use.
        rt.reserve_path(&[v(5), v(6)]);
        let mut oracle = ReservationTable::new(n);
        oracle.reserve_path(&[v(5), v(6)]);
        for t in 0..4 {
            for x in 0..20u32 {
                assert_eq!(rt.vertex_free(v(x), t), oracle.vertex_free(v(x), t));
                for y in 0..20u32 {
                    assert_eq!(rt.edge_free(v(x), v(y), t), oracle.edge_free(v(x), v(y), t));
                }
            }
        }
        assert_eq!(rt.horizon(), oracle.horizon());
    }

    #[test]
    fn sparse_memory_is_sublinear_in_horizon_times_vertices() {
        let n = 100_000usize;
        let mut rt = ReservationTable::new(n);
        // One 256-step path: the dense layout would hold 256 buckets of
        // ~412 KB each; the sparse table holds 256 one-slot buckets.
        let path: Vec<VertexId> = (0..256u32).map(v).collect();
        rt.reserve_path(&path);
        assert!(
            rt.memory_bytes() < rt.dense_equivalent_bytes() / 10,
            "sparse {} vs dense-equivalent {}",
            rt.memory_bytes(),
            rt.dense_equivalent_bytes()
        );
    }
}
