//! Space-time reservation tables shared by the sequential planners.

use std::collections::{HashMap, HashSet};

use wsp_model::VertexId;

/// Records which (vertex, time) and (edge, time) slots are taken by
/// already-planned agents, plus permanent "parked" reservations for agents
/// that have finished.
#[derive(Debug, Clone, Default)]
pub struct ReservationTable {
    vertex: HashSet<(VertexId, usize)>,
    edge: HashSet<(VertexId, VertexId, usize)>,
    parked: HashMap<VertexId, usize>,
}

impl ReservationTable {
    /// An empty table.
    pub fn new() -> Self {
        ReservationTable::default()
    }

    /// Reserves every slot of a timed path, parking the agent at the final
    /// vertex from its arrival time onward.
    pub fn reserve_path(&mut self, path: &[VertexId]) {
        for (t, &v) in path.iter().enumerate() {
            self.vertex.insert((v, t));
            if t > 0 {
                let u = path[t - 1];
                if u != v {
                    self.edge.insert((u, v, t - 1));
                }
            }
        }
        if let Some(&last) = path.last() {
            self.park(last, path.len().saturating_sub(1));
        }
    }

    /// Reserves `v` permanently from time `t` onward.
    pub fn park(&mut self, v: VertexId, t: usize) {
        match self.parked.get_mut(&v) {
            Some(existing) => *existing = (*existing).min(t),
            None => {
                self.parked.insert(v, t);
            }
        }
    }

    /// Whether vertex `v` is free at time `t`.
    pub fn vertex_free(&self, v: VertexId, t: usize) -> bool {
        if self.vertex.contains(&(v, t)) {
            return false;
        }
        match self.parked.get(&v) {
            Some(&from) => t < from,
            None => true,
        }
    }

    /// Whether the move `u → v` starting at time `t` is free of edge-swap
    /// reservations.
    pub fn edge_free(&self, u: VertexId, v: VertexId, t: usize) -> bool {
        !self.edge.contains(&(v, u, t))
    }

    /// Whether `v` stays free forever from time `t` on (needed to finish a
    /// path there).
    pub fn free_forever(&self, v: VertexId, t: usize) -> bool {
        if self.parked.contains_key(&v) {
            return false;
        }
        // Any future timed reservation on v blocks parking there.
        // Timed reservations are finite; scan is bounded by table size.
        !self.vertex.iter().any(|&(rv, rt)| rv == v && rt >= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn path_reservation_blocks_slots() {
        let mut rt = ReservationTable::new();
        rt.reserve_path(&[v(0), v(1), v(2)]);
        assert!(!rt.vertex_free(v(0), 0));
        assert!(!rt.vertex_free(v(1), 1));
        assert!(rt.vertex_free(v(1), 0));
        // Edge swap v1->v0 at t=0 is blocked by the move v0->v1.
        assert!(!rt.edge_free(v(1), v(0), 0));
        assert!(rt.edge_free(v(1), v(0), 1));
        // Parked at v2 from t=2 onward.
        assert!(!rt.vertex_free(v(2), 2));
        assert!(!rt.vertex_free(v(2), 99));
        assert!(rt.vertex_free(v(2), 1));
    }

    #[test]
    fn parking_takes_earliest_time() {
        let mut rt = ReservationTable::new();
        rt.park(v(5), 10);
        rt.park(v(5), 4);
        assert!(rt.vertex_free(v(5), 3));
        assert!(!rt.vertex_free(v(5), 4));
    }

    #[test]
    fn free_forever_checks_future() {
        let mut rt = ReservationTable::new();
        rt.reserve_path(&[v(0), v(1)]);
        // v0 is reserved at t=0 only; free forever from t=1.
        assert!(rt.free_forever(v(0), 1));
        assert!(!rt.free_forever(v(0), 0));
        // v1 is parked.
        assert!(!rt.free_forever(v(1), 5));
    }
}
