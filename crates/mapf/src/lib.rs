//! Search-based multi-agent path finding (MAPF): the baseline family the
//! paper compares against (§V, "Iterated EECBS").
//!
//! The authors benchmark their contract-based methodology against Iterated
//! EECBS [Li et al., AAAI'21], a state-of-the-art bounded-suboptimal
//! search-based planner, by asking it to route every agent through the same
//! sequence of shelves and stations that the synthesized plan visits. This
//! crate re-implements that baseline family from scratch:
//!
//! * [`SpaceTimeAstar`] — single-agent A* over (vertex, time) with
//!   reservation tables, wait moves, and an optional focal layer;
//! * [`PrioritizedPlanner`] — sequential (HCA*-style) planning for agent
//!   teams with multi-goal itineraries;
//! * [`CbsPlanner`] — Conflict-Based Search, optimal at `w = 1` and
//!   bounded-suboptimal focal ECBS(w) for `w > 1`;
//! * [`IteratedPlanner`] — the lifelong wrapper that feeds each agent its
//!   next waypoint and replans, mirroring "Iterated EECBS".
//!
//! All solvers emit [`MapfSolution`]s that can be validated for vertex and
//! edge conflicts with [`MapfSolution::validate`], and cross-checked
//! against the co-design pipeline through the shared `wsp-model` plan
//! checker.
//!
//! # Examples
//!
//! ```
//! use wsp_mapf::{MapfProblem, PrioritizedPlanner};
//! use wsp_model::{FloorplanGraph, GridMap};
//!
//! let grid = GridMap::from_ascii("....\n....")?;
//! let graph = FloorplanGraph::from_grid(&grid);
//! let a = graph.vertex_at((0, 0).into()).unwrap();
//! let b = graph.vertex_at((3, 0).into()).unwrap();
//! // Two agents swapping sides.
//! let problem = MapfProblem::new(&graph, vec![a, b], vec![vec![b], vec![a]]);
//! let solution = PrioritizedPlanner::default().solve(&problem)?;
//! assert!(solution.validate(&graph).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod astar;
mod cbs;
mod iterated;
mod prioritized;
mod problem;
mod reservation;

pub use astar::{Constraints, PlanQuery, SearchScratch, SegmentPath, SpaceTimeAstar};
pub use cbs::CbsPlanner;
pub use iterated::{InnerSolver, IteratedPlanner};
pub use prioritized::PrioritizedPlanner;
pub use problem::{Conflict, MapfError, MapfProblem, MapfSolution};
pub use reservation::{ReservationTable, StoragePolicy};
