//! Space-time A*: single-agent shortest paths over (vertex, time) with
//! wait moves, reservations, CBS constraints, and an optional focal layer
//! for bounded-suboptimal search.

use std::collections::{BTreeSet, HashMap, HashSet};

use wsp_model::{FloorplanGraph, VertexId};

use crate::ReservationTable;

/// CBS-style hard constraints for one agent.
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    /// Forbidden (vertex, time) pairs.
    pub vertex: HashSet<(VertexId, usize)>,
    /// Forbidden (from, to, departure-time) moves.
    pub edge: HashSet<(VertexId, VertexId, usize)>,
}

impl Constraints {
    /// Whether occupying `v` at `t` is allowed.
    pub fn allows_vertex(&self, v: VertexId, t: usize) -> bool {
        !self.vertex.contains(&(v, t))
    }

    /// Whether the move `u → v` departing at `t` is allowed.
    pub fn allows_edge(&self, u: VertexId, v: VertexId, t: usize) -> bool {
        !self.edge.contains(&(u, v, t))
    }

    /// The latest time at which `v` is constrained (an agent may only
    /// finish at `v` strictly after this).
    pub fn latest_vertex_constraint(&self, v: VertexId) -> Option<usize> {
        self.vertex
            .iter()
            .filter(|&&(cv, _)| cv == v)
            .map(|&(_, t)| t)
            .max()
    }
}

/// A query for one path segment.
#[derive(Debug, Clone, Copy)]
pub struct PlanQuery<'a> {
    /// Start vertex.
    pub start: VertexId,
    /// Absolute timestep at which the agent stands on `start`.
    pub start_time: usize,
    /// Goal vertex of this segment.
    pub goal: VertexId,
    /// Reservations of already-planned agents (prioritized planning).
    pub reservations: Option<&'a ReservationTable>,
    /// Hard constraints of this agent (CBS).
    pub constraints: Option<&'a Constraints>,
    /// Other agents' committed paths, for focal conflict counting.
    pub conflict_paths: Option<&'a [Vec<VertexId>]>,
    /// Whether the agent must be able to stay at `goal` forever
    /// (final segment) rather than merely touch it (intermediate waypoint).
    pub require_parkable: bool,
}

/// The space-time A* searcher.
///
/// With `focal_weight = 1.0` this is plain optimal A*; with `w > 1` it runs
/// a focal search returning a path of cost at most `w ×` optimal while
/// minimizing conflicts against [`PlanQuery::conflict_paths`] — the
/// low-level of ECBS.
#[derive(Debug, Clone)]
pub struct SpaceTimeAstar {
    /// Hard horizon on path length (timesteps).
    pub max_time: usize,
    /// Focal suboptimality factor `w ≥ 1`.
    pub focal_weight: f64,
}

impl Default for SpaceTimeAstar {
    fn default() -> Self {
        SpaceTimeAstar {
            max_time: 512,
            focal_weight: 1.0,
        }
    }
}

/// A found segment: the timed path (absolute; `path[0]` is at
/// `query.start_time`) and the optimal-cost lower bound `f_min` observed
/// (used by ECBS's high level).
#[derive(Debug, Clone)]
pub struct SegmentPath {
    /// `path[i]` is the vertex at time `start_time + i`.
    pub path: Vec<VertexId>,
    /// Lower bound on the optimal segment cost.
    pub f_min: usize,
}

impl SpaceTimeAstar {
    /// Plans one segment.
    ///
    /// Returns `None` if no path exists within `max_time`.
    pub fn plan(&self, graph: &FloorplanGraph, query: &PlanQuery<'_>) -> Option<SegmentPath> {
        let heuristic = graph.bfs_distances(query.goal);
        if heuristic[query.start.index()] == u32::MAX {
            return None;
        }
        let min_end = query
            .constraints
            .map(|c| c.latest_vertex_constraint(query.goal).map_or(0, |t| t + 1))
            .unwrap_or(0);

        // Node table: since every step costs 1, g = t is determined by the
        // key (vertex, time); entries only compete on conflict count.
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        struct Key {
            v: VertexId,
            t: usize,
        }
        // key -> (fewest conflicts seen, parent achieving it).
        let mut best: HashMap<Key, (usize, Option<Key>)> = HashMap::new();
        let mut closed: HashSet<Key> = HashSet::new();
        // Ordered open set: (f, conflicts, seq, key). BTreeSet gives both
        // f_min (first element) and a scannable focal range.
        let mut open: BTreeSet<(usize, usize, u64, VertexId, usize)> = BTreeSet::new();
        let mut seq = 0u64;

        let count_conflicts = |u: VertexId, v: VertexId, t_arrive: usize| -> usize {
            let Some(paths) = query.conflict_paths else {
                return 0;
            };
            let mut n = 0;
            for p in paths {
                if p.is_empty() {
                    continue;
                }
                let at = |time: usize| *p.get(time).unwrap_or(p.last().expect("non-empty"));
                if at(t_arrive) == v {
                    n += 1;
                }
                if t_arrive > 0 && u != v && at(t_arrive) == u && at(t_arrive - 1) == v {
                    n += 1;
                }
            }
            n
        };

        let h0 = heuristic[query.start.index()] as usize;
        best.insert(
            Key {
                v: query.start,
                t: query.start_time,
            },
            (0, None),
        );
        open.insert((
            query.start_time + h0,
            0,
            seq,
            query.start,
            query.start_time,
        ));
        seq += 1;

        while !open.is_empty() {
            let f_min = open.first().expect("non-empty").0;
            // Focal selection: among f <= w * f_min, minimize conflicts.
            let bound = if self.focal_weight > 1.0 {
                (self.focal_weight * f_min as f64).floor() as usize
            } else {
                f_min
            };
            let chosen = *open
                .range(..=(bound, usize::MAX, u64::MAX, VertexId(u32::MAX), usize::MAX))
                .min_by_key(|&&(f, c, _, _, _)| (c, f))
                .expect("range contains at least the f_min node");
            open.remove(&chosen);
            let (_, conflicts, _, v, t) = chosen;
            let key = Key { v, t };
            if closed.contains(&key) {
                continue;
            }
            // Stale entry: a cheaper-conflict duplicate was queued later.
            if best.get(&key).is_some_and(|&(c, _)| c < conflicts) {
                continue;
            }
            closed.insert(key);

            // Goal test.
            if v == query.goal && t >= min_end {
                let parkable = match (query.require_parkable, query.reservations) {
                    (true, Some(rt)) => rt.free_forever(v, t),
                    _ => true,
                };
                if parkable {
                    // Reconstruct along best-conflict parents.
                    let mut rev = vec![v];
                    let mut cur = key;
                    while let Some(&(_, Some(p))) = best.get(&cur) {
                        rev.push(p.v);
                        cur = p;
                    }
                    rev.reverse();
                    return Some(SegmentPath { path: rev, f_min });
                }
            }

            if t + 1 > self.max_time {
                continue;
            }

            // Expand: wait + moves.
            let mut push = |to: VertexId| {
                let nt = t + 1;
                let nkey = Key { v: to, t: nt };
                if closed.contains(&nkey) {
                    return;
                }
                if let Some(rt) = query.reservations {
                    if !rt.vertex_free(to, nt) || !rt.edge_free(v, to, t) {
                        return;
                    }
                }
                if let Some(cs) = query.constraints {
                    if !cs.allows_vertex(to, nt) || !cs.allows_edge(v, to, t) {
                        return;
                    }
                }
                let h = heuristic[to.index()];
                if h == u32::MAX {
                    return;
                }
                let f = nt + h as usize;
                let c = conflicts + count_conflicts(v, to, nt);
                let improves = match best.get(&nkey) {
                    Some(&(bc, _)) => c < bc,
                    None => true,
                };
                if improves {
                    best.insert(nkey, (c, Some(key)));
                    open.insert((f, c, seq, to, nt));
                    seq += 1;
                }
            };
            push(v); // wait
            for &n in graph.neighbors(v) {
                push(n);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::GridMap;

    fn graph(art: &str) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::from_ascii(art).unwrap())
    }

    fn v(g: &FloorplanGraph, x: u32, y: u32) -> VertexId {
        g.vertex_at((x, y).into()).unwrap()
    }

    #[test]
    fn straight_line_optimal() {
        let g = graph(".....");
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 4, 0),
            reservations: None,
            constraints: None,
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert_eq!(seg.path.len(), 5);
        assert_eq!(seg.f_min, 4);
    }

    #[test]
    fn routes_around_reservations() {
        // A crossing agent sweeps (1,1) -> (1,0) -> (2,0) and parks there.
        let g = graph("...\n...");
        let mut rt = ReservationTable::new();
        rt.reserve_path(&[v(&g, 1, 1), v(&g, 1, 0), v(&g, 2, 0)]);
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 1),
            reservations: Some(&rt),
            constraints: None,
            conflict_paths: None,
            require_parkable: true,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert_eq!(*seg.path.first().unwrap(), v(&g, 0, 0));
        assert_eq!(*seg.path.last().unwrap(), v(&g, 2, 1));
        assert!(seg.path.len() >= 4);
        // Verify the path respects every reservation slot.
        for (t, &pv) in seg.path.iter().enumerate() {
            assert!(rt.vertex_free(pv, t), "cell {pv} taken at t={t}");
        }
    }

    #[test]
    fn cbs_constraints_respected() {
        let g = graph("...");
        let mut cs = Constraints::default();
        cs.vertex.insert((v(&g, 1, 0), 1));
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: Some(&cs),
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        // Must wait one step: 0,0 -> wait -> 1,0 -> 2,0.
        assert_eq!(seg.path.len(), 4);
        assert_ne!(seg.path[1], v(&g, 1, 0));
    }

    #[test]
    fn goal_constraint_forces_late_arrival() {
        let g = graph("...");
        let mut cs = Constraints::default();
        cs.vertex.insert((v(&g, 2, 0), 5));
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: Some(&cs),
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert!(seg.path.len() >= 7); // arrive at t >= 6
    }

    #[test]
    fn unreachable_goal_is_none() {
        let g = graph(".x.");
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: None,
            conflict_paths: None,
            require_parkable: false,
        };
        assert!(SpaceTimeAstar::default().plan(&g, &q).is_none());
    }

    #[test]
    fn focal_prefers_conflict_free_detour() {
        let g = graph("...\n...");
        // Another agent parks on the straight route's middle cell.
        let other = vec![vec![v(&g, 1, 0); 6]];
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: None,
            conflict_paths: Some(&other),
            require_parkable: false,
        };
        let focal = SpaceTimeAstar {
            focal_weight: 2.0,
            ..SpaceTimeAstar::default()
        };
        let seg = focal.plan(&g, &q).unwrap();
        // The detour via row y=1 has zero conflicts and cost 4 <= 2 * 2.
        assert!(!seg.path.contains(&v(&g, 1, 0)));
    }

    #[test]
    fn start_time_offsets_are_respected() {
        let g = graph("..");
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 7,
            goal: v(&g, 1, 0),
            reservations: None,
            constraints: None,
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert_eq!(seg.path.len(), 2);
        assert_eq!(seg.f_min, 8); // f accounts for the absolute clock
    }
}
