//! Space-time A*: single-agent shortest paths over (vertex, time) with
//! wait moves, reservations, CBS constraints, and an optional focal layer
//! for bounded-suboptimal search.
//!
//! The search state is stored flat: one open-addressed, frontier-sized
//! layer map per reached time layer (see [`LayerMap`]), so the expansion
//! loop touches only array slots and the CSR neighbour slices of the graph
//! — no hasher, and memory proportional to the states actually reached
//! rather than to `horizon × vertices`.

use std::collections::BTreeSet;

use wsp_model::{FloorplanGraph, VertexId};

use crate::ReservationTable;

/// CBS-style hard constraints for one agent.
///
/// Stored as sorted vectors (constraint sets are tiny — one entry per CBS
/// branch on the path from the root), so membership checks in the A*
/// expansion loop are binary searches over contiguous memory.
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    /// Forbidden (time, vertex) pairs, sorted.
    vertex: Vec<(u32, VertexId)>,
    /// Forbidden (departure-time, from, to) moves, sorted.
    edge: Vec<(u32, VertexId, VertexId)>,
}

impl Constraints {
    /// Forbids occupying `v` at time `t`.
    pub fn forbid_vertex(&mut self, v: VertexId, t: usize) {
        let key = (t as u32, v);
        if let Err(at) = self.vertex.binary_search(&key) {
            self.vertex.insert(at, key);
        }
    }

    /// Forbids the move `from → to` departing at time `t`.
    pub fn forbid_edge(&mut self, from: VertexId, to: VertexId, t: usize) {
        let key = (t as u32, from, to);
        if let Err(at) = self.edge.binary_search(&key) {
            self.edge.insert(at, key);
        }
    }

    /// Whether occupying `v` at `t` is allowed.
    pub fn allows_vertex(&self, v: VertexId, t: usize) -> bool {
        self.vertex.binary_search(&(t as u32, v)).is_err()
    }

    /// Whether the move `u → v` departing at `t` is allowed.
    pub fn allows_edge(&self, u: VertexId, v: VertexId, t: usize) -> bool {
        self.edge.binary_search(&(t as u32, u, v)).is_err()
    }

    /// The latest time at which `v` is constrained (an agent may only
    /// finish at `v` strictly after this).
    pub fn latest_vertex_constraint(&self, v: VertexId) -> Option<usize> {
        self.vertex
            .iter()
            .rev()
            .find(|&&(_, cv)| cv == v)
            .map(|&(t, _)| t as usize)
    }
}

/// A query for one path segment.
#[derive(Debug, Clone, Copy)]
pub struct PlanQuery<'a> {
    /// Start vertex.
    pub start: VertexId,
    /// Absolute timestep at which the agent stands on `start`.
    pub start_time: usize,
    /// Goal vertex of this segment.
    pub goal: VertexId,
    /// Reservations of already-planned agents (prioritized planning).
    pub reservations: Option<&'a ReservationTable>,
    /// Hard constraints of this agent (CBS).
    pub constraints: Option<&'a Constraints>,
    /// Other agents' committed paths, for focal conflict counting.
    pub conflict_paths: Option<&'a [Vec<VertexId>]>,
    /// Whether the agent must be able to stay at `goal` forever
    /// (final segment) rather than merely touch it (intermediate waypoint).
    pub require_parkable: bool,
}

/// The space-time A* searcher.
///
/// With `focal_weight = 1.0` this is plain optimal A*; with `w > 1` it runs
/// a focal search returning a path of cost at most `w ×` optimal while
/// minimizing conflicts against [`PlanQuery::conflict_paths`] — the
/// low-level of ECBS.
#[derive(Debug, Clone)]
pub struct SpaceTimeAstar {
    /// Hard horizon on path length (timesteps).
    pub max_time: usize,
    /// Focal suboptimality factor `w ≥ 1`.
    pub focal_weight: f64,
}

impl Default for SpaceTimeAstar {
    fn default() -> Self {
        SpaceTimeAstar {
            max_time: 512,
            focal_weight: 1.0,
        }
    }
}

/// A found segment: the timed path (absolute; `path[0]` is at
/// `query.start_time`) and the optimal-cost lower bound `f_min` observed
/// (used by ECBS's high level).
#[derive(Debug, Clone)]
pub struct SegmentPath {
    /// `path[i]` is the vertex at time `start_time + i`.
    pub path: Vec<VertexId>,
    /// Lower bound on the optimal segment cost.
    pub f_min: usize,
}

/// Sentinel for unvisited/empty slots in the layer maps.
const UNVISITED: u32 = wsp_model::NO_INDEX;

/// Reusable scratch for [`SpaceTimeAstar`]: the BFS heuristic field (an
/// O(vertices) buffer recomputed per segment) and the per-time-layer maps,
/// kept across searches so multi-segment and multi-agent planning loops
/// (prioritized planning runs one search per itinerary leg per agent) stop
/// allocating per segment. The prioritized planner threads one scratch
/// through every search of a solve automatically; callers driving
/// [`SpaceTimeAstar::plan_with_scratch`] directly get the same benefit.
#[derive(Debug, Default)]
pub struct SearchScratch {
    heuristic: Vec<u32>,
    /// Touched-list for the depth-bounded heuristic field; paired with
    /// `heuristic` whenever the bounded BFS maintains it.
    heuristic_touched: Vec<u32>,
    /// Whether `heuristic` was last written by the full-graph BFS (every
    /// entry finite where reachable) rather than the bounded one — the
    /// bounded path must rebuild from scratch after a dense fill, since
    /// its touched-list no longer covers the finite entries.
    heuristic_dense: bool,
    layers: Vec<LayerMap>,
}

impl SearchScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        SearchScratch::default()
    }
}

/// One time layer of the search, stored as an open-addressed table sized by
/// the layer's *frontier* rather than by the whole graph. Slots are indexed
/// straight off the dense [`VertexId`] bits (a Fibonacci scramble plus
/// linear probing) — no hasher, no per-vertex allocation, O(reached) memory
/// per layer instead of the former O(vertex_count) dense rows, which is
/// what keeps space-time A* viable on ~100k-vertex maps.
///
/// Since every step costs 1, `g = t` is fixed by the layer; entries only
/// compete on conflict count.
#[derive(Debug, Default)]
struct LayerMap {
    /// Vertex id per slot ([`UNVISITED`] = empty). Length is a power of 2.
    keys: Vec<u32>,
    /// Fewest conflicts with which (v, t) was reached.
    best: Vec<u32>,
    /// The predecessor vertex at `t - 1` achieving `best` ([`UNVISITED`]
    /// for the root).
    parent: Vec<u32>,
    /// Whether (v, t) has been expanded.
    closed: Vec<bool>,
    /// Occupied slots.
    len: usize,
}

impl LayerMap {
    /// Smallest allocated capacity (slots); must be a power of 2.
    const MIN_CAPACITY: usize = 64;

    /// The slot holding `key`, or the empty slot where it belongs.
    fn probe(&self, key: u32) -> usize {
        let mask = self.keys.len() - 1;
        // Fibonacci scramble: spreads consecutive grid ids across slots
        // using only index arithmetic on the id.
        let mut at = (key.wrapping_mul(0x9e37_79b9) as usize) & mask;
        while self.keys[at] != UNVISITED && self.keys[at] != key {
            at = (at + 1) & mask;
        }
        at
    }

    /// The slot of `key`, if present.
    fn find(&self, key: u32) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let at = self.probe(key);
        (self.keys[at] == key).then_some(at)
    }

    /// The slot of `key`, inserting an unvisited entry if absent. Keeps the
    /// load factor at or below 1/2.
    fn entry(&mut self, key: u32) -> usize {
        if self.keys.is_empty() {
            self.grow();
        }
        let mut at = self.probe(key);
        if self.keys[at] == key {
            return at;
        }
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
            at = self.probe(key);
        }
        self.keys[at] = key;
        self.best[at] = UNVISITED;
        self.parent[at] = UNVISITED;
        self.closed[at] = false;
        self.len += 1;
        at
    }

    /// Empties the map while keeping its allocation (for scratch reuse);
    /// `best`/`parent`/`closed` need no wipe — [`entry`](Self::entry)
    /// initializes them on insertion. A no-op on already-empty maps, so
    /// the per-search reset sweep pays a table wipe only for the layers
    /// the *previous* search actually populated (not for every layer the
    /// deepest search of the scratch's lifetime ever reached).
    fn reset(&mut self) {
        if self.len == 0 {
            return;
        }
        self.keys.fill(UNVISITED);
        self.len = 0;
    }

    fn grow(&mut self) {
        let capacity = (self.keys.len() * 2).max(Self::MIN_CAPACITY);
        let old = std::mem::replace(
            self,
            LayerMap {
                keys: vec![UNVISITED; capacity],
                best: vec![UNVISITED; capacity],
                parent: vec![UNVISITED; capacity],
                closed: vec![false; capacity],
                len: 0,
            },
        );
        for (slot, &key) in old.keys.iter().enumerate() {
            if key == UNVISITED {
                continue;
            }
            let at = self.probe(key);
            self.keys[at] = key;
            self.best[at] = old.best[slot];
            self.parent[at] = old.parent[slot];
            self.closed[at] = old.closed[slot];
            self.len += 1;
        }
    }
}

/// Lazily grown stack of time layers, indexed by `t - start_time`, borrowed
/// from a [`SearchScratch`]. Unreached layers own no heap memory.
#[derive(Debug)]
struct LayerTable<'s> {
    start_time: usize,
    layers: &'s mut Vec<LayerMap>,
}

impl LayerTable<'_> {
    fn layer(&mut self, t: usize) -> &mut LayerMap {
        let rel = t - self.start_time;
        if rel >= self.layers.len() {
            self.layers.resize_with(rel + 1, LayerMap::default);
        }
        &mut self.layers[rel]
    }

    /// The recorded parent of (v, t), if any (`None` when the layer was
    /// never reached or the slot is a root).
    fn parent_of(&self, v: VertexId, t: usize) -> Option<VertexId> {
        let rel = t.checked_sub(self.start_time)?;
        let layer = self.layers.get(rel)?;
        let at = layer.find(v.0)?;
        let p = layer.parent[at];
        (p != UNVISITED).then_some(VertexId(p))
    }
}

impl SpaceTimeAstar {
    /// Plans one segment.
    ///
    /// Returns `None` if no path exists within `max_time`.
    pub fn plan(&self, graph: &FloorplanGraph, query: &PlanQuery<'_>) -> Option<SegmentPath> {
        self.plan_with_scratch(graph, query, &mut SearchScratch::new())
    }

    /// [`plan`](Self::plan) reusing caller-owned [`SearchScratch`] buffers,
    /// the allocation-light entry point for planners that run many segment
    /// searches over the same graph.
    pub fn plan_with_scratch(
        &self,
        graph: &FloorplanGraph,
        query: &PlanQuery<'_>,
        scratch: &mut SearchScratch,
    ) -> Option<SegmentPath> {
        let SearchScratch {
            heuristic,
            heuristic_touched,
            heuristic_dense,
            layers,
        } = scratch;
        // With no focal band (weight <= 1.0) a state whose heuristic
        // exceeds the remaining time budget can never reach the goal in
        // time nor outrank a viable state in the open-set order, so the
        // field only needs exact values within the budget: a depth-bounded
        // BFS with a touched-list reset makes deadline-capped searches
        // (the sim's catch-up repairs) cost O(budget area), not
        // O(vertices). Focal searches (ECBS) can expand beyond-budget
        // states out of f-order and keep the full field.
        if self.focal_weight <= 1.0 {
            if *heuristic_dense {
                heuristic.clear();
            }
            *heuristic_dense = false;
            let cap = self.max_time.saturating_sub(query.start_time) as u32;
            graph.bfs_distances_bounded_into(query.goal, cap, heuristic, heuristic_touched);
        } else {
            graph.bfs_distances_into(query.goal, heuristic);
            *heuristic_dense = true;
        }
        if heuristic[query.start.index()] == u32::MAX {
            return None;
        }
        let min_end = query
            .constraints
            .map(|c| c.latest_vertex_constraint(query.goal).map_or(0, |t| t + 1))
            .unwrap_or(0);
        // Deadline lift for park-at-goal queries: the agent cannot finish
        // before the goal is free forever, so every state's f is at least
        // that time (max of two consistent heuristics stays consistent). A
        // permanently parked goal has no plan at all.
        let earliest_park = match (query.require_parkable, query.reservations) {
            (true, Some(rt)) => rt.earliest_free_forever(query.goal)?,
            _ => 0,
        };

        for layer in layers.iter_mut() {
            layer.reset();
        }
        let mut layers = LayerTable {
            start_time: query.start_time,
            layers,
        };
        // Ordered open set: (f, conflicts, depth_seq, vertex, time).
        // BTreeSet gives both f_min (first element) and a scannable focal
        // range. `depth_seq` breaks f/conflict ties toward *larger t*
        // (deeper states first — admissible for any tie-break among equal
        // f): warehouse floors are corridor mazes whose equal-f bands can
        // hold tens of thousands of states, and depth-first tie-breaking
        // walks one shortest path through the band instead of flooding it.
        let mut open: BTreeSet<(usize, usize, u64, VertexId, usize)> = BTreeSet::new();
        let mut seq = 0u64;
        let depth_seq = |t: usize, seq: u64| {
            ((self.max_time + 1).saturating_sub(t) as u64) << 32 | (seq & 0xFFFF_FFFF)
        };

        let count_conflicts = |u: VertexId, v: VertexId, t_arrive: usize| -> usize {
            let Some(paths) = query.conflict_paths else {
                return 0;
            };
            let mut n = 0;
            for p in paths {
                if p.is_empty() {
                    continue;
                }
                let at = |time: usize| *p.get(time).unwrap_or(p.last().expect("non-empty"));
                if at(t_arrive) == v {
                    n += 1;
                }
                if t_arrive > 0 && u != v && at(t_arrive) == u && at(t_arrive - 1) == v {
                    n += 1;
                }
            }
            n
        };

        let h0 = heuristic[query.start.index()] as usize;
        let root_layer = layers.layer(query.start_time);
        let root_slot = root_layer.entry(query.start.0);
        root_layer.best[root_slot] = 0;
        open.insert((
            (query.start_time + h0).max(earliest_park),
            0,
            depth_seq(query.start_time, seq),
            query.start,
            query.start_time,
        ));
        seq += 1;

        while !open.is_empty() {
            let f_min = open.first().expect("non-empty").0;
            // Focal selection: among f <= w * f_min, minimize conflicts.
            let bound = if self.focal_weight > 1.0 {
                (self.focal_weight * f_min as f64).floor() as usize
            } else {
                f_min
            };
            let chosen = *open
                .range(..=(bound, usize::MAX, u64::MAX, VertexId(u32::MAX), usize::MAX))
                .min_by_key(|&&(f, c, _, _, _)| (c, f))
                .expect("range contains at least the f_min node");
            open.remove(&chosen);
            let (_, conflicts, _, v, t) = chosen;
            let layer = layers.layer(t);
            let slot = layer.entry(v.0);
            if layer.closed[slot] {
                continue;
            }
            // Stale entry: a cheaper-conflict duplicate was queued later.
            if (layer.best[slot] as usize) < conflicts {
                continue;
            }
            layer.closed[slot] = true;

            // Goal test.
            if v == query.goal && t >= min_end {
                let parkable = match (query.require_parkable, query.reservations) {
                    (true, Some(rt)) => rt.free_forever(v, t),
                    _ => true,
                };
                if parkable {
                    // Reconstruct along best-conflict parents.
                    let mut rev = vec![v];
                    let (mut cv, mut ct) = (v, t);
                    while let Some(p) = layers.parent_of(cv, ct) {
                        rev.push(p);
                        cv = p;
                        ct -= 1;
                    }
                    rev.reverse();
                    return Some(SegmentPath { path: rev, f_min });
                }
            }

            if t + 1 > self.max_time {
                continue;
            }

            // Expand: wait + moves along the CSR neighbour slice.
            let nt = t + 1;
            let mut push = |layers: &mut LayerTable, to: VertexId| {
                if let Some(rt) = query.reservations {
                    if !rt.vertex_free(to, nt) || !rt.edge_free(v, to, t) {
                        return;
                    }
                }
                if let Some(cs) = query.constraints {
                    if !cs.allows_vertex(to, nt) || !cs.allows_edge(v, to, t) {
                        return;
                    }
                }
                let h = heuristic[to.index()];
                if h == u32::MAX {
                    return;
                }
                let next = layers.layer(nt);
                let slot = next.entry(to.0);
                if next.closed[slot] {
                    return;
                }
                let f = (nt + h as usize).max(earliest_park);
                let c = conflicts + count_conflicts(v, to, nt);
                if (c as u32) < next.best[slot] {
                    next.best[slot] = c as u32;
                    next.parent[slot] = v.0;
                    open.insert((f, c, depth_seq(nt, seq), to, nt));
                    seq += 1;
                }
            };
            push(&mut layers, v); // wait
            for &n in graph.neighbors(v) {
                push(&mut layers, n);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::GridMap;

    fn graph(art: &str) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::from_ascii(art).unwrap())
    }

    fn v(g: &FloorplanGraph, x: u32, y: u32) -> VertexId {
        g.vertex_at((x, y).into()).unwrap()
    }

    #[test]
    fn straight_line_optimal() {
        let g = graph(".....");
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 4, 0),
            reservations: None,
            constraints: None,
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert_eq!(seg.path.len(), 5);
        assert_eq!(seg.f_min, 4);
    }

    #[test]
    fn routes_around_reservations() {
        // A crossing agent sweeps (1,1) -> (1,0) -> (2,0) and parks there.
        let g = graph("...\n...");
        let mut rt = ReservationTable::new(g.vertex_count());
        rt.reserve_path(&[v(&g, 1, 1), v(&g, 1, 0), v(&g, 2, 0)]);
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 1),
            reservations: Some(&rt),
            constraints: None,
            conflict_paths: None,
            require_parkable: true,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert_eq!(*seg.path.first().unwrap(), v(&g, 0, 0));
        assert_eq!(*seg.path.last().unwrap(), v(&g, 2, 1));
        assert!(seg.path.len() >= 4);
        // Verify the path respects every reservation slot.
        for (t, &pv) in seg.path.iter().enumerate() {
            assert!(rt.vertex_free(pv, t), "cell {pv} taken at t={t}");
        }
    }

    #[test]
    fn cbs_constraints_respected() {
        let g = graph("...");
        let mut cs = Constraints::default();
        cs.forbid_vertex(v(&g, 1, 0), 1);
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: Some(&cs),
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        // Must wait one step: 0,0 -> wait -> 1,0 -> 2,0.
        assert_eq!(seg.path.len(), 4);
        assert_ne!(seg.path[1], v(&g, 1, 0));
    }

    #[test]
    fn goal_constraint_forces_late_arrival() {
        let g = graph("...");
        let mut cs = Constraints::default();
        cs.forbid_vertex(v(&g, 2, 0), 5);
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: Some(&cs),
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert!(seg.path.len() >= 7); // arrive at t >= 6
    }

    #[test]
    fn unreachable_goal_is_none() {
        let g = graph(".x.");
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: None,
            conflict_paths: None,
            require_parkable: false,
        };
        assert!(SpaceTimeAstar::default().plan(&g, &q).is_none());
    }

    #[test]
    fn focal_prefers_conflict_free_detour() {
        let g = graph("...\n...");
        // Another agent parks on the straight route's middle cell.
        let other = vec![vec![v(&g, 1, 0); 6]];
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 0,
            goal: v(&g, 2, 0),
            reservations: None,
            constraints: None,
            conflict_paths: Some(&other),
            require_parkable: false,
        };
        let focal = SpaceTimeAstar {
            focal_weight: 2.0,
            ..SpaceTimeAstar::default()
        };
        let seg = focal.plan(&g, &q).unwrap();
        // The detour via row y=1 has zero conflicts and cost 4 <= 2 * 2.
        assert!(!seg.path.contains(&v(&g, 1, 0)));
    }

    #[test]
    fn start_time_offsets_are_respected() {
        let g = graph("..");
        let q = PlanQuery {
            start: v(&g, 0, 0),
            start_time: 7,
            goal: v(&g, 1, 0),
            reservations: None,
            constraints: None,
            conflict_paths: None,
            require_parkable: false,
        };
        let seg = SpaceTimeAstar::default().plan(&g, &q).unwrap();
        assert_eq!(seg.path.len(), 2);
        assert_eq!(seg.f_min, 8); // f accounts for the absolute clock
    }

    #[test]
    fn constraint_membership_checks() {
        let g = graph("...");
        let (a, b) = (v(&g, 0, 0), v(&g, 1, 0));
        let mut cs = Constraints::default();
        cs.forbid_vertex(a, 3);
        cs.forbid_vertex(a, 3); // idempotent
        cs.forbid_edge(a, b, 2);
        assert!(!cs.allows_vertex(a, 3));
        assert!(cs.allows_vertex(a, 2));
        assert!(!cs.allows_edge(a, b, 2));
        assert!(cs.allows_edge(b, a, 2));
        assert_eq!(cs.latest_vertex_constraint(a), Some(3));
        assert_eq!(cs.latest_vertex_constraint(b), None);
    }
}
