//! Helpers shared by the map builders: perimeter station placement and
//! round-robin shelf stocking. Crate-private — the public surface is the
//! generator functions themselves.

use rand::rngs::StdRng;
use rand::Rng;
use wsp_model::{CellKind, Coord, Direction, GridMap, ModelError, ProductId, Warehouse};

/// Places `n_stations` distinct station cells on the perimeter return —
/// right column and bottom row, which the snake covers with
/// shelf-access-free components — drawing positions from `rng` until the
/// count is met.
pub(crate) fn place_perimeter_stations(
    grid: &mut GridMap,
    rng: &mut StdRng,
    n_stations: usize,
) -> Result<Vec<Coord>, ModelError> {
    let (width, height) = (grid.width(), grid.height());
    let mut station_cells: Vec<Coord> = Vec::new();
    while station_cells.len() < n_stations {
        let at = if rng.gen_range(0..2) == 0 {
            Coord::new(width - 1, rng.gen_range(2..height as u64 - 2) as u32)
        } else {
            Coord::new(rng.gen_range(3..width as u64 - 3) as u32, 0)
        };
        if !station_cells.contains(&at) {
            station_cells.push(at);
            grid.set(at, CellKind::Station)?;
        }
    }
    Ok(station_cells)
}

/// Assigns product `k = i mod products` to the `i`-th shelf cell and
/// stocks `units_per_slot` at its canonical access vertex (the southern
/// aisle if traversable, else the northern one).
pub(crate) fn stock_round_robin(
    warehouse: &mut Warehouse,
    shelf_cells: &[Coord],
    products: u32,
    units_per_slot: u64,
) -> Result<(), ModelError> {
    for (i, &cell) in shelf_cells.iter().enumerate() {
        let product = ProductId((i as u32) % products);
        let access = cell
            .step(Direction::South)
            .and_then(|c| warehouse.graph().vertex_at(c))
            .or_else(|| {
                cell.step(Direction::North)
                    .and_then(|c| warehouse.graph().vertex_at(c))
            })
            .expect("every shelf has an adjacent aisle by construction");
        warehouse.stock(access, product, units_per_slot)?;
    }
    Ok(())
}
