//! The shared *zoned* warehouse layout and its traffic-system designer.
//!
//! ```text
//!   y = H-1   → → → → → → → → →   top lane (east)
//!   (spare)   . . . . . . . . .   unused padding rows
//!   ladder    ↑ [aisle east / shelf rows]*  ↓  left lane feeds aisles,
//!             ↑ ...                         ↓  right lane drains them
//!   y = d     ← ← ← ← ← ← ← ← ←   distributor lane (west), feeds strips
//!   queue     ┌─┐ ┌─┐ ┌─┐ ┌─┐     serpentine station-queue strips
//!   zone      └─┘ └─┘ └─┘ └─┘     (one station bay per strip)
//!   y = 0     ← ← ← ← ← ← ← ← ←   collector lane (west), back to left lane
//! ```
//!
//! Junction discipline: every merge happens at a component *entry* and
//! every branch at a component *exit*, and every component ends up with
//! 1–2 inlets and 1–2 outlets, as §IV-A requires. Long lanes are chopped
//! into chains of components no longer than
//! [`ZonedLayout::max_component_len`]; the serpentine queue strips stay
//! whole (their length deliberately sets `m`, maximizing station-queue
//! capacity per Property 4.1).

use std::collections::HashMap;

use wsp_model::{Coord, VertexId, Warehouse};
use wsp_traffic::{ComponentId, TrafficError, TrafficSystem, TrafficSystemBuilder};

/// Geometry of a zoned warehouse; the grid builder and the traffic
/// designer must agree on one of these.
#[derive(Debug, Clone)]
pub struct ZonedLayout {
    /// Total grid width.
    pub width: u32,
    /// Total grid height.
    pub height: u32,
    /// Number of serpentine rows in the station-queue zone
    /// (`y = 1 ..= queue_rows`).
    pub queue_rows: u32,
    /// Number of station-queue strips (each gets one station bay).
    pub strips: u32,
    /// Ladder aisle rows (ascending `y`); shelf rows sit between them.
    pub aisle_ys: Vec<u32>,
    /// Maximum component length for chopped lanes.
    pub max_component_len: usize,
}

impl ZonedLayout {
    /// The distributor lane row (directly above the queue zone).
    pub fn distributor_y(&self) -> u32 {
        self.queue_rows + 1
    }

    /// Width of one strip (interior width divided evenly; any remainder
    /// stays unused).
    pub fn strip_width(&self) -> u32 {
        (self.width - 2) / self.strips
    }

    /// The column span `[xl, xr]` of strip `s`.
    pub fn strip_span(&self, s: u32) -> (u32, u32) {
        let sw = self.strip_width();
        (1 + s * sw, s * sw + sw)
    }

    /// The serpentine path of strip `s`, entry first: boustrophedon from
    /// the top queue row down to `y = 1`.
    pub fn strip_path(&self, s: u32) -> Vec<(u32, u32)> {
        let (xl, xr) = self.strip_span(s);
        let mut cells = Vec::new();
        for (i, y) in (1..=self.queue_rows).rev().enumerate() {
            if i % 2 == 0 {
                cells.extend((xl..=xr).map(|x| (x, y)));
            } else {
                cells.extend((xl..=xr).rev().map(|x| (x, y)));
            }
        }
        cells
    }

    /// The station-bay cell of strip `s`: the middle of its final
    /// serpentine row.
    pub fn station_cell(&self, s: u32) -> (u32, u32) {
        let (xl, xr) = self.strip_span(s);
        (xl + (xr - xl) / 2, 1)
    }

    /// All station-bay cells.
    pub fn station_cells(&self) -> Vec<(u32, u32)> {
        (0..self.strips).map(|s| self.station_cell(s)).collect()
    }

    /// The exit column of strip `s`'s serpentine (parity-dependent).
    fn strip_exit_col(&self, s: u32) -> u32 {
        let (xl, xr) = self.strip_span(s);
        if self.queue_rows % 2 == 1 {
            xr
        } else {
            xl
        }
    }

    /// Builds and validates the traffic system for this layout over the
    /// given warehouse.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrafficError`] if the layout and grid disagree
    /// (e.g. a lane cell is not traversable) or a composition rule breaks.
    pub fn build_traffic(&self, warehouse: &Warehouse) -> Result<TrafficSystem, TrafficError> {
        let mut b = TrafficSystemBuilder::new();
        let (w, h, d) = (self.width, self.height, self.distributor_y());
        let lmax = self.max_component_len.max(2);

        let vertex = |x: u32, y: u32| -> Result<VertexId, TrafficError> {
            warehouse.graph().vertex_at(Coord::new(x, y)).ok_or(
                // Report layout/grid disagreements as a broken path on a
                // placeholder id; callers treat any error as fatal.
                TrafficError::BrokenPath {
                    component: ComponentId(u32::MAX),
                    at: ((x as usize) << 16) | y as usize,
                },
            )
        };

        // Adds a run of cells as a chain of <= lmax components; returns
        // (first, last) ids.
        let chain = |b: &mut TrafficSystemBuilder,
                     cells: &[(u32, u32)]|
         -> Result<(ComponentId, ComponentId), TrafficError> {
            debug_assert!(!cells.is_empty(), "empty lane run");
            let mut ids: Vec<ComponentId> = Vec::new();
            let mut at = 0usize;
            for size in wsp_traffic::chop_balanced(cells.len(), lmax) {
                let chunk = &cells[at..at + size];
                at += size;
                let path: Result<Vec<VertexId>, TrafficError> =
                    chunk.iter().map(|&(x, y)| vertex(x, y)).collect();
                ids.push(b.add_component(path?));
            }
            for pair in ids.windows(2) {
                b.connect(pair[0], pair[1]);
            }
            Ok((ids[0], *ids.last().expect("non-empty chain")))
        };

        // ---- Left lane (north): (0,1) .. (0,H-1); exits at aisle rows. ----
        let mut left_exit_at: HashMap<u32, ComponentId> = HashMap::new();
        let mut prev_left: Option<ComponentId> = None;
        let mut left_first: Option<ComponentId> = None;
        let mut seg_start = 1u32;
        for &a in self.aisle_ys.iter().chain(std::iter::once(&(h - 1))) {
            let cells: Vec<(u32, u32)> = (seg_start..=a).map(|y| (0, y)).collect();
            let (first, last) = chain(&mut b, &cells)?;
            if let Some(p) = prev_left {
                b.connect(p, first);
            }
            left_first.get_or_insert(first);
            left_exit_at.insert(a, last);
            prev_left = Some(last);
            seg_start = a + 1;
        }
        let left_top_exit = *left_exit_at.get(&(h - 1)).expect("top segment exists");
        let left_first = left_first.expect("left lane non-empty");

        // ---- Top lane (east): (1,H-1) .. (W-1,H-1). ----
        let top_cells: Vec<(u32, u32)> = (1..w).map(|x| (x, h - 1)).collect();
        let (top_first, top_last) = chain(&mut b, &top_cells)?;
        b.connect(left_top_exit, top_first);

        // ---- Right lane (south): (W-1,H-2) .. (W-1,d); a new segment
        // starts at every aisle level so aisle merges land on entries. ----
        let mut aisles_desc: Vec<u32> = self.aisle_ys.clone();
        aisles_desc.sort_unstable_by(|x, y| y.cmp(x));
        let mut starts: Vec<u32> = Vec::new();
        if aisles_desc.first() != Some(&(h - 2)) {
            starts.push(h - 2);
        }
        starts.extend(aisles_desc.iter().copied());
        let mut right_entry_at: HashMap<u32, ComponentId> = HashMap::new();
        let mut prev_right: Option<ComponentId> = None;
        let mut right_first_entry: Option<ComponentId> = None;
        for (i, &top_of_seg) in starts.iter().enumerate() {
            let bottom = match starts.get(i + 1) {
                Some(&next_start) => next_start + 1,
                None => d,
            };
            let cells: Vec<(u32, u32)> = (bottom..=top_of_seg).rev().map(|y| (w - 1, y)).collect();
            let (first, last) = chain(&mut b, &cells)?;
            if let Some(p) = prev_right {
                b.connect(p, first);
            }
            right_entry_at.insert(top_of_seg, first);
            right_first_entry.get_or_insert(first);
            prev_right = Some(last);
        }
        let right_first = right_first_entry.expect("right lane non-empty");
        let right_last = prev_right.expect("right lane non-empty");
        b.connect(top_last, right_first);

        // ---- Aisles (east): (1,a) .. (W-2,a). ----
        for &a in &self.aisle_ys {
            let cells: Vec<(u32, u32)> = (1..=w - 2).map(|x| (x, a)).collect();
            let (first, last) = chain(&mut b, &cells)?;
            b.connect(left_exit_at[&a], first);
            b.connect(last, right_entry_at[&a]);
        }

        // ---- Distributor (west): (W-2,d) .. (xl_0,d); exits at strip
        // entry columns. ----
        let entry_cols: Vec<u32> = (0..self.strips).map(|s| self.strip_span(s).0).collect();
        let mut cols_desc = entry_cols.clone();
        cols_desc.sort_unstable_by(|x, y| y.cmp(x));
        let mut dist_exit_at: HashMap<u32, ComponentId> = HashMap::new();
        let mut prev_dist: Option<ComponentId> = None;
        let mut seg_east = w - 2;
        for &xc in &cols_desc {
            let cells: Vec<(u32, u32)> = (xc..=seg_east).rev().map(|x| (x, d)).collect();
            let (first, last) = chain(&mut b, &cells)?;
            match prev_dist {
                Some(p) => b.connect(p, first),
                None => b.connect(right_last, first),
            };
            dist_exit_at.insert(xc, last);
            prev_dist = Some(last);
            seg_east = xc.saturating_sub(1);
        }

        // ---- Strips: one serpentine component each. ----
        let mut strip_ids: Vec<ComponentId> = Vec::new();
        for s in 0..self.strips {
            let path: Result<Vec<VertexId>, TrafficError> = self
                .strip_path(s)
                .iter()
                .map(|&(x, y)| vertex(x, y))
                .collect();
            let id = b.add_component(path?);
            let (xl, _) = self.strip_span(s);
            b.connect(dist_exit_at[&xl], id);
            strip_ids.push(id);
        }

        // ---- Collector (west): from the easternmost strip exit to (0,0);
        // entries at strip exit columns. ----
        let mut exits: Vec<(u32, ComponentId)> = (0..self.strips)
            .map(|s| (self.strip_exit_col(s), strip_ids[s as usize]))
            .collect();
        exits.sort_unstable_by_key(|x| std::cmp::Reverse(x.0));
        let mut prev_coll: Option<ComponentId> = None;
        for (i, &(xe, strip)) in exits.iter().enumerate() {
            let west_end = match exits.get(i + 1) {
                Some(&(next_xe, _)) => next_xe + 1,
                None => 0,
            };
            let cells: Vec<(u32, u32)> = (west_end..=xe).rev().map(|x| (x, 0)).collect();
            let (first, last) = chain(&mut b, &cells)?;
            b.connect(strip, first);
            if let Some(p) = prev_coll {
                b.connect(p, first);
            }
            prev_coll = Some(last);
        }
        let coll_last = prev_coll.expect("at least one strip");
        b.connect(coll_last, left_first);

        b.build(warehouse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{CellKind, Direction, GridMap};

    /// A minimal zoned map: 2 strips, 2 queue rows, 2 aisles with one shelf
    /// row between them.
    fn tiny_layout() -> (Warehouse, ZonedLayout) {
        let layout = ZonedLayout {
            width: 11,
            height: 9,
            queue_rows: 2,
            strips: 2,
            aisle_ys: vec![4, 6],
            max_component_len: 6,
        };
        let mut grid = GridMap::new(layout.width, layout.height).unwrap();
        // Shelf row between the aisles (y = 5).
        for x in 1..=layout.width - 2 {
            grid.set(Coord::new(x, 5), CellKind::Shelf).unwrap();
        }
        for (x, y) in layout.station_cells() {
            grid.set(Coord::new(x, y), CellKind::Station).unwrap();
        }
        let warehouse =
            Warehouse::from_grid_with_access(&grid, &[Direction::North, Direction::South]).unwrap();
        (warehouse, layout)
    }

    #[test]
    fn tiny_layout_builds_valid_traffic() {
        let (w, layout) = tiny_layout();
        let ts = layout.build_traffic(&w).expect("valid zoned design");
        assert!(ts.is_strongly_connected());
        assert_eq!(ts.station_queues().count(), 2);
        assert!(ts.shelving_rows().count() >= 2); // both aisles touch shelves
                                                  // Strips are the longest components: m = 2 * strip width.
        assert_eq!(ts.max_component_len(), (layout.strip_width() * 2) as usize);
    }

    #[test]
    fn strip_paths_are_connected_serpentines() {
        let (_, layout) = tiny_layout();
        for s in 0..layout.strips {
            let path = layout.strip_path(s);
            assert_eq!(
                path.len(),
                (layout.strip_width() * layout.queue_rows) as usize
            );
            for pair in path.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let dist = a.0.abs_diff(b.0) + a.1.abs_diff(b.1);
                assert_eq!(dist, 1, "serpentine must be 4-connected");
            }
        }
    }

    #[test]
    fn station_cells_lie_on_strip_paths() {
        let (_, layout) = tiny_layout();
        for s in 0..layout.strips {
            let cell = layout.station_cell(s);
            assert!(layout.strip_path(s).contains(&cell));
        }
    }

    #[test]
    fn all_components_respect_max_len_except_strips() {
        let (w, layout) = tiny_layout();
        let ts = layout.build_traffic(&w).unwrap();
        let strip_len = (layout.strip_width() * layout.queue_rows) as usize;
        for c in ts.components() {
            assert!(
                c.len() <= layout.max_component_len || c.len() == strip_len,
                "{c} too long"
            );
        }
    }
}
