//! Parameterized sorting-center topology variants — the candidate family
//! `wsp-explore` sweeps.
//!
//! [`sorting_center`](crate::sorting_center) reproduces the paper's one
//! fixed design; [`sorting_center_variant`] generalizes it along the
//! co-design knobs the paper treats as free choices: the aisle pitch
//! (vertical distance between one-way aisles), the chute field shape
//! (rows × columns and horizontal spacing), the ring's travel
//! [`RingOrientation`], the number and placement of station bays on the
//! perimeter return, and the lane-chop granularity (which sets the cycle
//! time `t_c = 2m`). Every variant satisfies the §IV-A composition rules
//! by construction, so each one is a valid input to the full pipeline —
//! and the family is entirely deterministic: the same parameters always
//! produce the byte-identical instance, which is what lets the parallel
//! explorer promise thread-count-independent results.

use wsp_model::{CellKind, Coord, Direction, GridMap, ProductCatalog, ProductId, Warehouse};
use wsp_traffic::RingOrientation;

use crate::{MapInstance, SnakeLayout};

/// Stock per chute (the paper models chutes as holding "an arbitrary
/// amount"; matches [`sorting_center`](crate::sorting_center)).
const UNITS_PER_CHUTE: u64 = 1_000_000_000;

/// The co-design knobs of a sorting-center variant.
///
/// [`SortingCenterParams::paper`] is the starting point; the explorer
/// perturbs fields from there. [`validate`](SortingCenterParams::validate)
/// spells out the legal ranges.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortingCenterParams {
    /// Number of chute rows (one per shelf block). Must be odd — the
    /// snake's perimeter return needs an even aisle count, and a variant
    /// has `chute_rows + 1` aisles. The paper's design has 5.
    pub chute_rows: u32,
    /// Chutes per row (the paper's design has 8).
    pub chute_cols: u32,
    /// Horizontal spacing between chutes in cells, `2..=4` (paper: 3).
    /// Sets the grid width: `3 + (chute_cols - 1) · chute_step + 5`.
    pub chute_step: u32,
    /// Vertical distance between consecutive one-way aisles, `2..=4`
    /// (paper: 2). With pitch > 2 the extra block rows are solid storage
    /// (obstacles) and every chute keeps only its southern aisle access.
    pub aisle_pitch: u32,
    /// Number of station bays placed on the perimeter return, `1..=8`
    /// (paper: 4).
    pub stations: u32,
    /// Rotates the evenly spaced station placement along the perimeter
    /// slot list; any value is legal (taken modulo the slot count).
    pub station_offset: u32,
    /// Caps how many chutes are stocked/placed (the paper places 36 of the
    /// 40 uniform positions its grid admits). Placement stops once the cap
    /// is reached, scanning rows bottom to top.
    pub max_products: u32,
    /// Maximum component length for the ring chop (the lane-design
    /// granularity knob; the longest component sets `t_c = 2m`).
    pub max_component_len: usize,
    /// Travel direction of the snake ring.
    pub orientation: RingOrientation,
}

impl SortingCenterParams {
    /// The paper's sorting-center geometry expressed in this family
    /// (29-wide, 5×8 chutes, pitch 2, 4 stations, forward ring).
    pub fn paper() -> Self {
        SortingCenterParams {
            chute_rows: 5,
            chute_cols: 8,
            chute_step: 3,
            aisle_pitch: 2,
            stations: 4,
            station_offset: 0,
            max_products: 36,
            max_component_len: 90,
            orientation: RingOrientation::Forward,
        }
    }

    /// Grid width implied by the chute field.
    pub fn width(&self) -> u32 {
        3 + (self.chute_cols - 1) * self.chute_step + 5
    }

    /// Grid height implied by the aisle ladder (top aisle + 3, like the
    /// paper map).
    pub fn height(&self) -> u32 {
        self.top_aisle_y() + 3
    }

    /// The aisle rows, ascending: `1, 1 + pitch, …`.
    pub fn aisle_ys(&self) -> Vec<u32> {
        (0..=self.chute_rows)
            .map(|k| 1 + k * self.aisle_pitch)
            .collect()
    }

    fn top_aisle_y(&self) -> u32 {
        1 + self.chute_rows * self.aisle_pitch
    }

    /// A short deterministic label for reports and benchmark output.
    pub fn label(&self) -> String {
        format!(
            "rows{}x{} p{} step{} pitch{} st{}+{} len{} {}",
            self.chute_rows,
            self.chute_cols,
            self.max_products,
            self.chute_step,
            self.aisle_pitch,
            self.stations,
            self.station_offset,
            self.max_component_len,
            match self.orientation {
                RingOrientation::Forward => "fwd",
                RingOrientation::Reversed => "rev",
            }
        )
    }

    /// Checks the knobs are inside the family's legal ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated range.
    pub fn validate(&self) -> Result<(), String> {
        if self.chute_rows == 0 || self.chute_rows % 2 == 0 {
            return Err(format!(
                "chute_rows must be odd and positive (got {}): the snake needs an even aisle count",
                self.chute_rows
            ));
        }
        if self.chute_cols < 2 {
            return Err(format!(
                "chute_cols must be at least 2 (got {})",
                self.chute_cols
            ));
        }
        if !(2..=4).contains(&self.chute_step) {
            return Err(format!(
                "chute_step must be in 2..=4 (got {})",
                self.chute_step
            ));
        }
        if !(2..=4).contains(&self.aisle_pitch) {
            return Err(format!(
                "aisle_pitch must be in 2..=4 (got {})",
                self.aisle_pitch
            ));
        }
        if !(1..=8).contains(&self.stations) {
            return Err(format!("stations must be in 1..=8 (got {})", self.stations));
        }
        if self.max_products == 0 {
            return Err("max_products must be positive".to_string());
        }
        if self.max_component_len < 4 {
            return Err(format!(
                "max_component_len must be at least 4 (got {})",
                self.max_component_len
            ));
        }
        Ok(())
    }

    /// The perimeter cells eligible to host station bays, in a fixed
    /// deterministic order (down the right column, then west along the
    /// bottom row), corners excluded. Matches where the paper's Fig. 5
    /// puts its bins.
    fn station_slots(&self) -> Vec<(u32, u32)> {
        let (w, h) = (self.width(), self.height());
        let mut slots: Vec<(u32, u32)> = Vec::new();
        slots.extend((2..h - 2).rev().map(|y| (w - 1, y)));
        slots.extend((2..w - 2).rev().map(|x| (x, 0)));
        slots
    }
}

/// Builds a sorting-center variant: the chute grid, the inventory (chute
/// `i` stocks product `ρ_i`), the station bays, and the validated snake
/// traffic system.
///
/// # Errors
///
/// Returns the parameter-range violation from
/// [`SortingCenterParams::validate`], or propagates grid/traffic
/// construction failures (which indicate a builder bug, not a bad knob
/// setting — every in-range variant composes validly).
pub fn sorting_center_variant(
    params: &SortingCenterParams,
) -> Result<MapInstance, Box<dyn std::error::Error>> {
    params.validate()?;
    let (width, height) = (params.width(), params.height());
    let aisle_ys = params.aisle_ys();
    let layout = SnakeLayout {
        width,
        height,
        aisle_ys: aisle_ys.clone(),
        max_component_len: params.max_component_len,
        orientation: params.orientation,
    };

    let mut grid = GridMap::new(width, height)?;
    // Chute rows sit directly above each aisle except the top one; any
    // deeper block rows (pitch > 2) are solid storage.
    let mut chute_cells: Vec<Coord> = Vec::new();
    for k in 0..params.chute_rows {
        let below = aisle_ys[k as usize];
        let above = aisle_ys[k as usize + 1];
        for y in below + 1..above {
            if y == below + 1 {
                // The chute row: uniformly spaced chutes, walkable floor
                // between them (as on the paper map), capped at
                // `max_products`.
                for x in (3..)
                    .step_by(params.chute_step as usize)
                    .take_while(|&x| x <= width - 5)
                {
                    if (chute_cells.len() as u32) < params.max_products {
                        let at = Coord::new(x, y);
                        grid.set(at, CellKind::Shelf)?;
                        chute_cells.push(at);
                    }
                }
            } else {
                // Deeper block rows (pitch > 2) are solid storage across
                // the whole shelf span — no free-floor corridors.
                for x in 3..=width - 5 {
                    grid.set(Coord::new(x, y), CellKind::Obstacle)?;
                }
            }
        }
    }

    // Station bays, evenly rotated over the perimeter slots.
    let slots = params.station_slots();
    let n = params.stations as usize;
    let offset = params.station_offset as usize % slots.len();
    for i in 0..n {
        let (x, y) = slots[(offset + i * slots.len() / n) % slots.len()];
        grid.set(Coord::new(x, y), CellKind::Station)?;
    }

    let mut warehouse =
        Warehouse::from_grid_with_access(&grid, &[Direction::North, Direction::South])?;
    warehouse.set_catalog(ProductCatalog::with_len(chute_cells.len()));
    for (i, &cell) in chute_cells.iter().enumerate() {
        let access = cell
            .step(Direction::South)
            .and_then(|c| warehouse.graph().vertex_at(c))
            .expect("chute has a southern aisle by construction");
        warehouse.stock(access, ProductId(i as u32), UNITS_PER_CHUTE)?;
    }

    let traffic = layout.build_traffic(&warehouse)?;
    Ok(MapInstance {
        name: "Sorting Variant",
        products: chute_cells.len() as u32,
        station_bays: params.stations,
        shelves: warehouse.shelf_count(),
        warehouse,
        traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_reproduce_the_paper_footprint() {
        let p = SortingCenterParams::paper();
        assert_eq!(p.width(), 29);
        assert_eq!(p.height(), 14);
        assert_eq!(p.aisle_ys(), vec![1, 3, 5, 7, 9, 11]);
        let map = sorting_center_variant(&p).unwrap();
        assert_eq!(map.warehouse.grid().cell_count(), 406);
        assert_eq!(map.products, 36); // the paper's chute count
        assert!(map.traffic.is_strongly_connected());
        // Identical component structure to the hand-built paper map.
        let paper = crate::sorting_center().unwrap();
        assert_eq!(
            map.traffic.component_count(),
            paper.traffic.component_count()
        );
        assert_eq!(map.traffic.cycle_time(), paper.traffic.cycle_time());
    }

    #[test]
    fn every_in_range_knob_combination_validates() {
        for chute_rows in [3u32, 5] {
            for aisle_pitch in [2u32, 3] {
                for stations in [1u32, 3, 6] {
                    for orientation in [RingOrientation::Forward, RingOrientation::Reversed] {
                        let p = SortingCenterParams {
                            chute_rows,
                            aisle_pitch,
                            stations,
                            orientation,
                            chute_cols: 6,
                            chute_step: 3,
                            station_offset: stations, // arbitrary rotation
                            max_products: 36,
                            max_component_len: 40,
                        };
                        let map = sorting_center_variant(&p)
                            .unwrap_or_else(|e| panic!("{}: {e}", p.label()));
                        assert!(map.traffic.is_strongly_connected(), "{}", p.label());
                        assert!(map.traffic.station_queues().count() >= 1, "{}", p.label());
                        assert_eq!(
                            map.products,
                            (chute_rows * 6).min(p.max_products),
                            "{}",
                            p.label()
                        );
                        for k in 0..map.products {
                            assert!(
                                map.warehouse.location_matrix().total_units(ProductId(k)) > 0,
                                "{}: product {k} unstocked",
                                p.label()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn variants_are_deterministic_in_their_parameters() {
        let p = SortingCenterParams {
            station_offset: 7,
            orientation: RingOrientation::Reversed,
            ..SortingCenterParams::paper()
        };
        let a = sorting_center_variant(&p).unwrap();
        let b = sorting_center_variant(&p).unwrap();
        assert_eq!(a.warehouse.grid().to_ascii(), b.warehouse.grid().to_ascii());
        assert_eq!(a.products, b.products);
    }

    #[test]
    fn out_of_range_knobs_are_rejected() {
        let even_rows = SortingCenterParams {
            chute_rows: 4,
            ..SortingCenterParams::paper()
        };
        assert!(sorting_center_variant(&even_rows).is_err());
        let wild_pitch = SortingCenterParams {
            aisle_pitch: 9,
            ..SortingCenterParams::paper()
        };
        assert!(wild_pitch.validate().is_err());
        let no_stations = SortingCenterParams {
            stations: 0,
            ..SortingCenterParams::paper()
        };
        assert!(no_stations.validate().is_err());
    }

    #[test]
    fn deep_pitch_keeps_only_southern_chute_access() {
        let p = SortingCenterParams {
            aisle_pitch: 3,
            ..SortingCenterParams::paper()
        };
        let map = sorting_center_variant(&p).unwrap();
        // Block interior rows contribute no vertices anywhere in the
        // shelf span — chute columns and the cells between them alike
        // (solid storage, no free-floor corridors).
        let grid = map.warehouse.grid();
        for x in 3..=grid.width() - 5 {
            assert!(
                map.warehouse.graph().vertex_at(Coord::new(x, 3)).is_none(),
                "interior cell ({x}, 3) is walkable"
            );
        }
        assert!(grid.cell_count() > 406); // taller map than the paper's
        assert!(map.traffic.is_strongly_connected());
    }
}
