//! The *snake* topology designer: one boustrophedon ring through every
//! aisle, chopped into near-uniform components — the layout visible in the
//! paper's Fig. 4.
//!
//! Throughput analysis (see DESIGN.md): under Property 4.1 a component of
//! length `ℓ` admits `⌊ℓ/2⌋` agents per cycle period `t_c = 2m`, so a
//! chain's steady-state throughput is `min ℓ / (4m)` agents per timestep —
//! maximized when all components share one length (`ℓ = m` → 1/4 per
//! step). The snake makes every component the same length, and spreading
//! the station cells across different components lets one agent deliver
//! several times per revolution, multiplying deliverable units per period
//! beyond the single-station bound.

use wsp_model::{Coord, VertexId, Warehouse};
use wsp_traffic::{
    chop_balanced, ComponentId, RingOrientation, TrafficError, TrafficSystem, TrafficSystemBuilder,
};

/// Geometry of a snake-designed warehouse.
#[derive(Debug, Clone)]
pub struct SnakeLayout {
    /// Total grid width.
    pub width: u32,
    /// Total grid height.
    pub height: u32,
    /// Aisle rows (ascending). Rows between consecutive aisles hold
    /// shelves; the ring traverses aisles alternately east/west.
    pub aisle_ys: Vec<u32>,
    /// Maximum (and target) component length; the chopper balances pieces.
    pub max_component_len: usize,
    /// Travel direction of the ring (a co-design knob; [`Forward`] is the
    /// paper's Fig. 4 direction).
    ///
    /// [`Forward`]: RingOrientation::Forward
    pub orientation: RingOrientation,
}

impl SnakeLayout {
    /// West end of every aisle.
    pub fn aisle_lo(&self) -> u32 {
        2
    }

    /// East end of every aisle.
    pub fn aisle_hi(&self) -> u32 {
        self.width - 3
    }

    /// The full ring, in travel order, plus the index where the
    /// perimeter-return section starts. The ring snakes east/west through
    /// every aisle (climbing at alternating sides), then returns around the
    /// full map perimeter — the stretch that hosts the station bays, since
    /// perimeter cells are never shelf-adjacent (no MixedKind conflicts).
    ///
    /// # Panics
    ///
    /// Panics on fewer than two aisles, an odd aisle count, or a first
    /// aisle at `y = 0` (the perimeter needs the bottom row).
    pub fn ring_sections(&self) -> (Vec<(u32, u32)>, usize) {
        let n = self.aisle_ys.len();
        assert!(n >= 2, "snake needs at least two aisles");
        assert!(
            n % 2 == 0,
            "snake perimeter return needs an even aisle count"
        );
        let a_first = self.aisle_ys[0];
        assert!(a_first >= 1, "first aisle must leave the bottom row free");
        let (lo, hi) = (self.aisle_lo(), self.aisle_hi());
        let (w, h) = (self.width, self.height);
        let mut cells: Vec<(u32, u32)> = Vec::new();

        for (i, &a) in self.aisle_ys.iter().enumerate() {
            let eastbound = i % 2 == 0;
            if eastbound {
                cells.extend((lo..=hi).map(|x| (x, a)));
            } else {
                cells.extend((lo..=hi).rev().map(|x| (x, a)));
            }
            if let Some(&next) = self.aisle_ys.get(i + 1) {
                let col = if eastbound { hi + 1 } else { lo - 1 };
                cells.extend((a..=next).map(|y| (col, y)));
            }
        }
        let perimeter_start = cells.len();

        // Perimeter return (last aisle ran westbound, ending at (lo, a_last)):
        // west to the left edge, up to the top row, east along it, down the
        // right edge, west along the bottom row, and up to close the ring.
        let a_last = *self.aisle_ys.last().expect("non-empty");
        cells.push((lo - 1, a_last));
        cells.extend((a_last..h).map(|y| (0u32, y)));
        cells.extend((1..w).map(|x| (x, h - 1)));
        cells.extend((0..h - 1).rev().map(|y| (w - 1, y)));
        cells.extend((1..w - 1).rev().map(|x| (x, 0)));
        cells.push((0, 0));
        cells.extend((1..=a_first).map(|y| (0u32, y)));
        cells.push((1, a_first));
        (cells, perimeter_start)
    }

    /// The ring without section information.
    pub fn ring_cells(&self) -> Vec<(u32, u32)> {
        self.ring_sections().0
    }

    /// Builds the ring as a cyclically connected chain of components of
    /// near-equal length `≤ max_component_len`, then validates it.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrafficError`] on a layout/grid mismatch or rule
    /// violation.
    pub fn build_traffic(&self, warehouse: &Warehouse) -> Result<TrafficSystem, TrafficError> {
        let (ring, perimeter_start) = self.ring_sections();
        // Chop the aisle section and the perimeter section separately so
        // station-bearing perimeter components never contain shelf-access
        // cells (the MixedKind rule). Reversing flips both sections' travel
        // order (the cell set, and with it the kind classification, is
        // unchanged).
        let mut aisle = ring[..perimeter_start].to_vec();
        let mut perimeter = ring[perimeter_start..].to_vec();
        self.orientation.apply(&mut aisle);
        self.orientation.apply(&mut perimeter);

        let mut b = TrafficSystemBuilder::new();
        let mut ids: Vec<ComponentId> = Vec::new();
        for section in [&aisle, &perimeter] {
            let mut at = 0usize;
            for size in chop_balanced(section.len(), self.max_component_len) {
                let chunk = &section[at..at + size];
                at += size;
                let path: Result<Vec<VertexId>, TrafficError> = chunk
                    .iter()
                    .map(|&(x, y)| {
                        warehouse.graph().vertex_at(Coord::new(x, y)).ok_or(
                            TrafficError::BrokenPath {
                                component: ComponentId(u32::MAX),
                                at: ((x as usize) << 16) | y as usize,
                            },
                        )
                    })
                    .collect();
                ids.push(b.add_component(path?));
            }
        }
        for i in 0..ids.len() {
            b.connect(ids[i], ids[(i + 1) % ids.len()]);
        }
        b.build(warehouse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{CellKind, Direction, GridMap};

    fn demo_layout() -> (Warehouse, SnakeLayout) {
        let layout = SnakeLayout {
            width: 12,
            height: 9,
            aisle_ys: vec![1, 3, 5, 7],
            max_component_len: 12,
            orientation: RingOrientation::Forward,
        };
        let mut grid = GridMap::new(layout.width, layout.height).unwrap();
        // Shelf rows between aisles.
        for &y in &[2u32, 4, 6] {
            for x in 3..=layout.width - 4 {
                grid.set(Coord::new(x, y), CellKind::Shelf).unwrap();
            }
        }
        // Stations on the perimeter return (right column / bottom row).
        grid.set(Coord::new(11, 4), CellKind::Station).unwrap();
        grid.set(Coord::new(6, 0), CellKind::Station).unwrap();
        let w =
            Warehouse::from_grid_with_access(&grid, &[Direction::North, Direction::South]).unwrap();
        (w, layout)
    }

    #[test]
    fn ring_is_a_simple_adjacent_cycle() {
        let (_, layout) = demo_layout();
        let ring = layout.ring_cells();
        let mut seen = std::collections::HashSet::new();
        for &c in &ring {
            assert!(seen.insert(c), "ring revisits {c:?}");
        }
        for i in 0..ring.len() {
            let a = ring[i];
            let b = ring[(i + 1) % ring.len()];
            assert_eq!(
                a.0.abs_diff(b.0) + a.1.abs_diff(b.1),
                1,
                "ring breaks adjacency {a:?} -> {b:?}"
            );
        }
    }

    #[test]
    fn snake_builds_valid_traffic() {
        let (w, layout) = demo_layout();
        let ts = layout.build_traffic(&w).expect("valid snake");
        assert!(ts.is_strongly_connected());
        assert_eq!(ts.station_queues().count(), 2);
        assert!(ts.shelving_rows().count() >= 2);
        for c in ts.components() {
            assert!(c.len() <= layout.max_component_len);
            assert!(ts.inlets(c.id()).len() == 1 && ts.outlets(c.id()).len() == 1);
        }
    }

    #[test]
    fn reversed_orientation_builds_an_equally_valid_ring() {
        let (w, mut layout) = demo_layout();
        layout.orientation = RingOrientation::Reversed;
        let ts = layout.build_traffic(&w).expect("valid reversed snake");
        assert!(ts.is_strongly_connected());
        assert_eq!(ts.station_queues().count(), 2);
        assert!(ts.shelving_rows().count() >= 2);
        // Same cell coverage, opposite arc directions: the reversed design
        // must differ from the forward one in at least one entry vertex.
        let forward = {
            let mut f = layout.clone();
            f.orientation = RingOrientation::Forward;
            f.build_traffic(&w).unwrap()
        };
        assert_eq!(ts.component_count(), forward.component_count());
        let entries: Vec<_> = ts.components().iter().map(|c| c.entry()).collect();
        let fwd_entries: Vec<_> = forward.components().iter().map(|c| c.entry()).collect();
        assert_ne!(entries, fwd_entries);
    }

    #[test]
    fn perimeter_components_hold_no_shelf_access() {
        let (w, layout) = demo_layout();
        let ts = layout.build_traffic(&w).unwrap();
        // Every station queue is access-free by the sectioned chop.
        for q in ts.station_queues() {
            for &v in ts.component(q).path() {
                assert!(!w.is_shelf_access(v));
            }
        }
    }

    #[test]
    fn sections_split_where_declared() {
        let (_, layout) = demo_layout();
        let (ring, perimeter_start) = layout.ring_sections();
        assert!(perimeter_start > 0 && perimeter_start < ring.len());
        // The perimeter section starts right after the last aisle cell.
        let (lo, _) = (layout.aisle_lo(), 0);
        assert_eq!(
            ring[perimeter_start],
            (lo - 1, *layout.aisle_ys.last().unwrap())
        );
    }
}
