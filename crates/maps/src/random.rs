//! Randomized scenario generation: parameterized block warehouses and
//! Zipf-skewed workloads, for stress-testing the pipeline beyond the three
//! paper instances.
//!
//! Both generators are deterministic in their `seed`, so scenarios can be
//! named in bug reports and benchmarks ("block 5x20 seed 7").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsp_model::{CellKind, Coord, Direction, GridMap, ProductCatalog, Warehouse, Workload};

use crate::util::{place_perimeter_stations, stock_round_robin};
use crate::{MapInstance, SnakeLayout};

/// Stock placed per (shelf cell, product); ample, as on the paper maps.
const UNITS_PER_SLOT: u64 = 100_000;

/// Builds a randomized Kiva-style block warehouse: `rows` two-row shelf
/// blocks separated by one-way aisles, `cols` shelf columns per row, with
/// seed-dependent shelf thinning, station placement, and product count —
/// co-designed with a snake traffic system exactly like the paper maps.
///
/// `rows` is rounded up to odd (the snake's perimeter return needs an even
/// aisle count) and clamped to at least 1; `cols` is clamped to at least 4.
///
/// # Errors
///
/// Propagates grid or traffic construction failures (the generated layouts
/// satisfy the §IV-A composition rules by construction, so failures
/// indicate a bug rather than an unlucky seed).
///
/// # Examples
///
/// ```
/// use wsp_maps::random_block_warehouse;
///
/// let map = random_block_warehouse(3, 12, 42)?;
/// assert!(map.traffic.is_strongly_connected());
/// assert!(map.shelves > 0);
/// let workload = map.uniform_workload(50);
/// assert_eq!(workload.total_units(), 50);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn random_block_warehouse(
    rows: u32,
    cols: u32,
    seed: u64,
) -> Result<MapInstance, Box<dyn std::error::Error>> {
    let rows = rows.max(1) | 1; // odd => even aisle count for the snake
    let cols = cols.max(4);
    let width = cols + 6; // shelves span x = 3 ..= width - 4
    let height = 3 * rows + 3;
    let mut rng = StdRng::seed_from_u64(seed);

    let aisle_ys: Vec<u32> = (0..=rows).map(|k| 3 * k + 1).collect();
    let shelf_ys: Vec<u32> = (0..rows).flat_map(|k| [3 * k + 2, 3 * k + 3]).collect();
    let mut layout = SnakeLayout {
        width,
        height,
        aisle_ys,
        max_component_len: 65,
        orientation: wsp_traffic::RingOrientation::Forward,
    };
    // Chop the ring into ~4 components: capacity ⌊len/2⌋ must admit one
    // loaded flow per demanded product (integer per-period rates), while
    // the cycle time t_c = 2·max_len still has to leave enough periods in
    // the horizon — ring/4 balances both on small maps; 65 matches the
    // paper maps once rings grow past ~260 cells.
    layout.max_component_len = (layout.ring_cells().len() / 4).clamp(12, 65);

    let mut grid = GridMap::new(width, height)?;
    // Randomly thinned shelf field: each slot kept with ~7/8 probability,
    // thinned slots become obstacles (holes in the block, as in real
    // fulfillment floors).
    let mut shelf_cells: Vec<Coord> = Vec::new();
    for &y in &shelf_ys {
        for x in 3..=width - 4 {
            let at = Coord::new(x, y);
            if rng.gen_range(0..8) < 7 {
                grid.set(at, CellKind::Shelf)?;
                shelf_cells.push(at);
            } else {
                grid.set(at, CellKind::Obstacle)?;
            }
        }
    }

    // 2-4 stations on the perimeter return.
    let n_stations = rng.gen_range(2..5) as usize;
    place_perimeter_stations(&mut grid, &mut rng, n_stations)?;

    let mut warehouse =
        Warehouse::from_grid_with_access(&grid, &[Direction::North, Direction::South])?;
    // Integer flow synthesis needs >= 1 delivery/period per demanded
    // product, so the catalog must stay small relative to the ring's agent
    // capacity: scale it with the shelf field instead of the paper maps'
    // 36-120 products.
    let max_products = (shelf_cells.len() as u64 / 8).clamp(4, 32);
    let products = rng.gen_range(4..max_products + 1) as u32;
    warehouse.set_catalog(ProductCatalog::with_len(products as usize));
    stock_round_robin(&mut warehouse, &shelf_cells, products, UNITS_PER_SLOT)?;

    let traffic = layout.build_traffic(&warehouse)?;
    Ok(MapInstance {
        name: "Random Block",
        shelves: warehouse.shelf_count(),
        warehouse,
        traffic,
        products,
        station_bays: n_stations as u32,
    })
}

impl MapInstance {
    /// A Zipf-skewed workload: `total_units` distributed over the catalog
    /// with popularity `∝ 1 / rank^exponent`, the product-to-rank
    /// assignment shuffled by `seed`. `exponent = 0` degenerates to (a
    /// permutation of) the uniform workload; real order streams are
    /// typically `0.5 ..= 1.5`.
    ///
    /// The result always sums to exactly `total_units` (rounding residue
    /// goes to the most popular ranks).
    pub fn zipf_workload(&self, total_units: u64, exponent: f64, seed: u64) -> Workload {
        let n = self.products as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        // Shuffle which product gets which popularity rank.
        let mut rank_to_product: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        rank_to_product.shuffle(&mut rng);

        let weights: Vec<f64> = (0..n)
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let mut demands = vec![0u64; n];
        let mut assigned = 0u64;
        for (rank, &product) in rank_to_product.iter().enumerate() {
            let share = ((total_units as f64) * weights[rank] / total_weight).floor() as u64;
            demands[product] = share;
            assigned += share;
        }
        // Hand the rounding residue to the most popular ranks, one unit
        // each, so totals are exact.
        let mut residue = total_units - assigned;
        let mut rank = 0usize;
        while residue > 0 {
            demands[rank_to_product[rank % n]] += 1;
            residue -= 1;
            rank += 1;
        }
        Workload::from_demands(demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::ProductId;

    #[test]
    fn random_maps_build_valid_traffic_across_seeds() {
        for seed in 0..6u64 {
            let map = random_block_warehouse(3, 10, seed).expect("builds");
            assert!(map.traffic.is_strongly_connected(), "seed {seed}");
            assert!(map.shelves > 0);
            assert!((2..=4).contains(&map.station_bays), "seed {seed}");
            assert!(map.traffic.station_queues().count() >= 1, "seed {seed}");
            // Every product is stocked (round-robin over >= products cells).
            for k in 0..map.products {
                assert!(
                    map.warehouse.location_matrix().total_units(ProductId(k)) > 0,
                    "seed {seed}: product {k} unstocked"
                );
            }
        }
    }

    #[test]
    fn random_maps_are_deterministic_in_the_seed() {
        let a = random_block_warehouse(3, 8, 9).unwrap();
        let b = random_block_warehouse(3, 8, 9).unwrap();
        assert_eq!(a.warehouse.grid().to_ascii(), b.warehouse.grid().to_ascii());
        assert_eq!(a.products, b.products);
    }

    #[test]
    fn rows_normalized_to_snake_compatible_values() {
        // Even `rows` is rounded up; the traffic must still validate.
        let map = random_block_warehouse(2, 6, 3).expect("builds");
        assert!(map.traffic.is_strongly_connected());
    }

    #[test]
    fn zipf_workload_totals_are_exact() {
        let map = random_block_warehouse(3, 10, 1).unwrap();
        for total in [1u64, 37, 160, 999] {
            let w = map.zipf_workload(total, 1.0, 5);
            assert_eq!(w.total_units(), total);
            assert_eq!(w.len(), map.products as usize);
        }
    }

    #[test]
    fn zipf_workload_is_skewed_and_deterministic() {
        let map = crate::sorting_center().unwrap();
        let w1 = map.zipf_workload(3_600, 1.0, 7);
        let w2 = map.zipf_workload(3_600, 1.0, 7);
        assert_eq!(w1.iter().collect::<Vec<_>>(), w2.iter().collect::<Vec<_>>());
        // The hottest product dominates the uniform share; the coldest is
        // well under it.
        let uniform_share = 3_600 / map.products as u64;
        let max = (0..map.products)
            .map(|k| w1.demand(ProductId(k)))
            .max()
            .unwrap();
        let min = (0..map.products)
            .map(|k| w1.demand(ProductId(k)))
            .min()
            .unwrap();
        assert!(max > 2 * uniform_share, "max {max} not skewed");
        assert!(min < uniform_share, "min {min} not skewed");
    }

    #[test]
    fn zipf_seed_changes_the_permutation() {
        let map = crate::sorting_center().unwrap();
        let a = map.zipf_workload(1_000, 1.2, 1);
        let b = map.zipf_workload(1_000, 1.2, 2);
        assert_ne!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        assert_eq!(a.total_units(), b.total_units());
    }
}
