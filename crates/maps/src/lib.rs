//! The paper's evaluation maps: Kiva-style fulfillment centers and a
//! package sorting center, each co-generated with a validated traffic
//! system (§V, Figs. 4 and 5).
//!
//! All three maps share one *zoned* layout (module [`zoned`]) consisting
//! of, bottom to top: a collector lane, a zone of serpentine station-queue
//! strips, a distributor lane, a ladder of shelf rows and one-way aisles,
//! and a top lane; one-way vertical lanes on the left and right edges close
//! the ring. Every generated design satisfies all §IV-A composition rules
//! by construction (and the test suite re-validates each).
//!
//! Exact instance statistics versus the paper are tabulated in
//! EXPERIMENTS.md; shelf, station-bay, and product counts match the paper,
//! while total cell counts differ slightly where Property 4.1 station-queue
//! capacity forces a larger queue zone (see DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use wsp_maps::sorting_center;
//!
//! let map = sorting_center()?;
//! assert_eq!(map.warehouse.grid().cell_count(), 406); // paper-exact
//! assert_eq!(map.products, 36);
//! assert_eq!(map.station_bays, 4);
//! let workload = map.uniform_workload(160);
//! assert_eq!(workload.total_units(), 160);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod instances;
mod random;
mod scaled;
mod snake;
mod util;
mod variants;
pub mod zoned;

pub use instances::{fulfillment_center_1, fulfillment_center_2, sorting_center, MapInstance};
pub use random::random_block_warehouse;
pub use scaled::scaled_warehouse;
pub use snake::SnakeLayout;
pub use variants::{sorting_center_variant, SortingCenterParams};
