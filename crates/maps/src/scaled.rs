//! Production-scale scenario generation: parameterized warehouse layouts
//! from ~10k to ~200k vertices, for exercising the MAPF/realize stack far
//! beyond the paper's three evaluation maps.
//!
//! [`scaled_warehouse`] generalizes
//! [`random_block_warehouse`](crate::random_block_warehouse) along two
//! axes: the shelf field grows with `rows × cols`, and `aisle_pitch`
//! controls the vertical distance between one-way aisles — pitch 3
//! reproduces the paper's two-row Kiva blocks, larger pitches produce
//! deep zoned blocks whose interior rows are solid storage (modeled as
//! obstacles, since only aisle-adjacent rows are reachable). The vertex
//! count scales as ~`rows × cols`, so `scaled_warehouse(101, 1000, 3, s)`
//! is a ~105k-vertex instance. Pair with
//! [`MapInstance::zipf_workload`](crate::MapInstance::zipf_workload) for
//! skewed order streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsp_model::{CellKind, Coord, Direction, GridMap, ProductCatalog, Warehouse};

use crate::util::{place_perimeter_stations, stock_round_robin};
use crate::{MapInstance, SnakeLayout};

/// Stock placed per (shelf cell, product); ample, as on the paper maps.
const UNITS_PER_SLOT: u64 = 100_000;

/// Builds a seed-deterministic warehouse of roughly `rows × cols` vertices:
/// `rows` shelf blocks separated by one-way aisles every `aisle_pitch`
/// grid rows, `cols` shelf columns per row, with seed-dependent shelf
/// thinning, station placement, and product count — co-designed with a
/// snake traffic system exactly like the paper maps.
///
/// `rows` is rounded up to odd (the snake's perimeter return needs an even
/// aisle count) and clamped to at least 1; `cols` is clamped to at least 4;
/// `aisle_pitch` is clamped to `2..=9`. With pitch ≥ 4 each block keeps
/// only its two aisle-adjacent shelf rows reachable; the interior rows
/// become solid storage (obstacles).
///
/// The station count and product catalog scale with the shelf field, so
/// workloads built with
/// [`MapInstance::uniform_workload`](crate::MapInstance::uniform_workload)
/// or [`MapInstance::zipf_workload`](crate::MapInstance::zipf_workload)
/// stay meaningful at every size.
///
/// # Errors
///
/// Propagates grid or traffic construction failures (the generated layouts
/// satisfy the §IV-A composition rules by construction, so failures
/// indicate a bug rather than an unlucky seed).
///
/// # Examples
///
/// ```
/// use wsp_maps::scaled_warehouse;
///
/// // A small member of the family; grow rows/cols for 10k-200k vertices.
/// let map = scaled_warehouse(5, 40, 4, 7)?;
/// assert!(map.traffic.is_strongly_connected());
/// assert!(map.warehouse.graph().vertex_count() > 5 * 40);
/// let workload = map.zipf_workload(500, 1.0, 7);
/// assert_eq!(workload.total_units(), 500);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn scaled_warehouse(
    rows: u32,
    cols: u32,
    aisle_pitch: u32,
    seed: u64,
) -> Result<MapInstance, Box<dyn std::error::Error>> {
    let rows = rows.max(1) | 1; // odd => even aisle count for the snake
    let cols = cols.max(4);
    let pitch = aisle_pitch.clamp(2, 9);
    let width = cols + 6; // shelves span x = 3 ..= width - 4
    let height = pitch * rows + 3;
    let mut rng = StdRng::seed_from_u64(seed);

    let aisle_ys: Vec<u32> = (0..=rows).map(|k| pitch * k + 1).collect();
    let mut layout = SnakeLayout {
        width,
        height,
        aisle_ys: aisle_ys.clone(),
        max_component_len: 65,
        orientation: wsp_traffic::RingOrientation::Forward,
    };
    // Same balance as `random_block_warehouse`: ~4 components on small
    // rings, the paper maps' 65-cell pieces once rings grow past ~260.
    layout.max_component_len = (layout.ring_cells().len() / 4).clamp(12, 65);

    let mut grid = GridMap::new(width, height)?;
    // Shelf field: in every block, the aisle-adjacent rows hold thinned
    // shelves (~7/8 kept); interior rows (pitch >= 4) are solid storage.
    let mut shelf_cells: Vec<Coord> = Vec::new();
    for k in 0..rows {
        let below = aisle_ys[k as usize];
        let above = aisle_ys[k as usize + 1];
        for y in below + 1..above {
            let reachable = y == below + 1 || y == above - 1;
            for x in 3..=width - 4 {
                let at = Coord::new(x, y);
                if reachable && rng.gen_range(0..8) < 7 {
                    grid.set(at, CellKind::Shelf)?;
                    shelf_cells.push(at);
                } else {
                    grid.set(at, CellKind::Obstacle)?;
                }
            }
        }
    }

    // Stations on the perimeter return, their count scaling with the
    // shelf field.
    let n_stations = (2 + shelf_cells.len() / 2_000).clamp(2, 16);
    place_perimeter_stations(&mut grid, &mut rng, n_stations)?;

    let mut warehouse =
        Warehouse::from_grid_with_access(&grid, &[Direction::North, Direction::South])?;
    let max_products = (shelf_cells.len() as u64 / 8).clamp(4, 64);
    let products = rng.gen_range(4..max_products + 1) as u32;
    warehouse.set_catalog(ProductCatalog::with_len(products as usize));
    stock_round_robin(&mut warehouse, &shelf_cells, products, UNITS_PER_SLOT)?;

    let traffic = layout.build_traffic(&warehouse)?;
    Ok(MapInstance {
        name: "Scaled Warehouse",
        shelves: warehouse.shelf_count(),
        warehouse,
        traffic,
        products,
        station_bays: n_stations as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::ProductId;

    #[test]
    fn pitch_three_matches_block_structure_and_validates() {
        for seed in 0..3u64 {
            let map = scaled_warehouse(3, 12, 3, seed).expect("builds");
            assert!(map.traffic.is_strongly_connected(), "seed {seed}");
            assert!(map.shelves > 0);
            assert!(map.traffic.station_queues().count() >= 1);
            for k in 0..map.products {
                assert!(
                    map.warehouse.location_matrix().total_units(ProductId(k)) > 0,
                    "seed {seed}: product {k} unstocked"
                );
            }
        }
    }

    #[test]
    fn deep_blocks_keep_only_aisle_adjacent_shelves() {
        let map = scaled_warehouse(3, 16, 6, 1).expect("builds");
        assert!(map.traffic.is_strongly_connected());
        // Interior block rows contribute no vertices: the graph must stay
        // connected around them, and every shelf is stockable.
        assert!(map.shelves > 0);
        // With pitch 6, each block holds 5 interior rows but only 2 shelf
        // rows; the 3 middle rows are obstacles.
        let grid = map.warehouse.grid();
        let interior_y = 1 + 3; // aisle at y=1, shelves at 2 and 6
        for x in 3..=grid.width() - 4 {
            assert!(map
                .warehouse
                .graph()
                .vertex_at(Coord::new(x, interior_y))
                .is_none());
        }
    }

    #[test]
    fn deterministic_in_the_seed() {
        let a = scaled_warehouse(3, 10, 4, 9).unwrap();
        let b = scaled_warehouse(3, 10, 4, 9).unwrap();
        assert_eq!(a.warehouse.grid().to_ascii(), b.warehouse.grid().to_ascii());
        assert_eq!(a.products, b.products);
        assert_eq!(a.station_bays, b.station_bays);
    }

    #[test]
    fn vertex_count_scales_with_rows_times_cols() {
        let small = scaled_warehouse(5, 40, 3, 2).unwrap();
        let large = scaled_warehouse(11, 160, 3, 2).unwrap();
        let (s, l) = (
            small.warehouse.graph().vertex_count(),
            large.warehouse.graph().vertex_count(),
        );
        // ~rows*cols each: 200 -> 1760 expected ratio ~8.
        assert!(l > 5 * s, "small {s}, large {l}");
    }

    #[test]
    fn ten_thousand_vertex_instance_builds_and_validates() {
        let map = scaled_warehouse(31, 320, 3, 5).expect("builds");
        let n = map.warehouse.graph().vertex_count();
        assert!(n >= 10_000, "only {n} vertices");
        assert!(map.traffic.is_strongly_connected());
        assert!(map.warehouse.graph().is_connected());
        assert!((2..=16).contains(&(map.station_bays as usize)));
    }
}
