//! The three §V evaluation instances: two fulfillment centers and the
//! sorting center, with inventories and uniform workload helpers.
//!
//! All three use the [`SnakeLayout`](crate::SnakeLayout) designer (the
//! topology visible in the paper's Fig. 4); stations are spread across the
//! ring so agents can deliver several times per revolution (see the
//! throughput analysis in DESIGN.md).

use wsp_model::{
    CellKind, Coord, Direction, GridMap, ProductCatalog, ProductId, Warehouse, Workload,
};
use wsp_traffic::TrafficSystem;

use crate::snake::SnakeLayout;

/// Stock placed per (shelf cell, product) on fulfillment maps. The paper
/// reports no stock-outs on workloads of ≤ 1440 units, so stock is ample
/// and the §IV-D stock-rate bound `f_in ≤ UNITS_AT/q_c` stays slack.
const FULFILLMENT_UNITS_PER_SLOT: u64 = 100_000;

/// Stock per chute on the sorting map (the paper models chutes as shelves
/// holding "an arbitrary amount").
const SORTING_UNITS_PER_CHUTE: u64 = 1_000_000_000;

/// A generated evaluation map: warehouse + traffic system + the headline
/// statistics quoted with Table I.
#[derive(Debug, Clone)]
pub struct MapInstance {
    /// Short name used in benchmark output ("Sorting Center", …).
    pub name: &'static str,
    /// The warehouse (grid, graph, inventory).
    pub warehouse: Warehouse,
    /// The co-designed traffic system.
    pub traffic: TrafficSystem,
    /// Number of unique products stocked.
    pub products: u32,
    /// Number of logical station bays (the paper's "stations").
    pub station_bays: u32,
    /// Shelf (or chute) cells on the grid.
    pub shelves: usize,
}

impl MapInstance {
    /// A workload of `total_units` spread as evenly as possible over all
    /// products (the remainder goes to the lowest product ids), matching
    /// the Table I workload construction.
    pub fn uniform_workload(&self, total_units: u64) -> Workload {
        let n = self.products as u64;
        let base = total_units / n;
        let remainder = (total_units % n) as usize;
        let demands: Vec<u64> = (0..self.products as usize)
            .map(|k| base + u64::from(k < remainder))
            .collect();
        Workload::from_demands(demands)
    }
}

/// Builds "Fulfillment 1": the real Kiva-style map of \[10\] — 560 shelves,
/// 4 station bays, 55 products, 47×23 = 1081 cells (paper: 1071; see
/// EXPERIMENTS.md for the deviation analysis).
///
/// # Errors
///
/// Propagates grid/traffic construction failures (none occur for the fixed
/// parameters; the signature keeps the builder honest).
pub fn fulfillment_center_1() -> Result<MapInstance, Box<dyn std::error::Error>> {
    build_fulfillment(FulfillmentParams {
        name: "Fulfillment 1",
        width: 47,
        shelf_blocks: 7,
        target_shelves: 560,
        products: 55,
        station_bays: 4,
        station_cells: &[(46, 16), (46, 8), (30, 0), (12, 0)],
        height: 24,
        max_component_len: 65,
    })
}

/// Builds "Fulfillment 2": the synthetic map based on \[10\] — 240 shelves,
/// 1 station bay (two service cells; see DESIGN.md §station throughput),
/// 120 products, 61×13 = 793 cells (paper-exact).
///
/// # Errors
///
/// Propagates grid/traffic construction failures.
pub fn fulfillment_center_2() -> Result<MapInstance, Box<dyn std::error::Error>> {
    build_fulfillment(FulfillmentParams {
        name: "Fulfillment 2",
        width: 61,
        shelf_blocks: 3,
        target_shelves: 240,
        products: 120,
        station_bays: 1,
        station_cells: &[(60, 6), (30, 0)],
        height: 13,
        max_component_len: 65,
    })
}

struct FulfillmentParams {
    name: &'static str,
    width: u32,
    /// Number of 2-row shelf blocks; aisles sit at `y = 3k`.
    shelf_blocks: u32,
    target_shelves: u32,
    products: u32,
    station_bays: u32,
    station_cells: &'static [(u32, u32)],
    height: u32,
    max_component_len: usize,
}

fn build_fulfillment(p: FulfillmentParams) -> Result<MapInstance, Box<dyn std::error::Error>> {
    // Aisles at y = 1, 4, 7, …; shelf-row pairs between them; the bottom
    // row and the rows above the top aisle belong to the perimeter return.
    let aisle_ys: Vec<u32> = (0..=p.shelf_blocks).map(|k| 3 * k + 1).collect();
    let shelf_ys: Vec<u32> = (0..p.shelf_blocks)
        .flat_map(|k| [3 * k + 2, 3 * k + 3])
        .collect();
    let layout = SnakeLayout {
        width: p.width,
        height: p.height,
        aisle_ys,
        max_component_len: p.max_component_len,
        orientation: wsp_traffic::RingOrientation::Forward,
    };

    let mut grid = GridMap::new(p.width, p.height)?;
    // Shelves span x = 3 .. width-4 (inside the aisle span and climb cols).
    let mut placed = 0u32;
    let mut shelf_cells: Vec<Coord> = Vec::new();
    for &y in &shelf_ys {
        for x in 3..=p.width - 4 {
            let at = Coord::new(x, y);
            if placed < p.target_shelves {
                grid.set(at, CellKind::Shelf)?;
                shelf_cells.push(at);
                placed += 1;
            } else {
                grid.set(at, CellKind::Obstacle)?;
            }
        }
    }
    for &(x, y) in p.station_cells {
        grid.set(Coord::new(x, y), CellKind::Station)?;
    }

    let mut warehouse =
        Warehouse::from_grid_with_access(&grid, &[Direction::North, Direction::South])?;
    warehouse.set_catalog(ProductCatalog::with_len(p.products as usize));
    crate::util::stock_round_robin(
        &mut warehouse,
        &shelf_cells,
        p.products,
        FULFILLMENT_UNITS_PER_SLOT,
    )?;

    let traffic = layout.build_traffic(&warehouse)?;
    Ok(MapInstance {
        name: p.name,
        shelves: warehouse.shelf_count(),
        warehouse,
        traffic,
        products: p.products,
        station_bays: p.station_bays,
    })
}

/// Builds the sorting center of \[11\]: 29×14 = 406 cells (paper-exact),
/// 36 chutes (matching Table I's 36 unique products; the §V prose says 32 —
/// see EXPERIMENTS.md), 4 bins.
///
/// Chute `i` is modeled as a shelf holding an effectively unlimited stock
/// of product `ρ_i`; bins are the station bays (§V's reduction, with
/// pickup/drop-off roles swapped when reading the plan back).
///
/// # Errors
///
/// Propagates grid/traffic construction failures.
pub fn sorting_center() -> Result<MapInstance, Box<dyn std::error::Error>> {
    let width = 29u32;
    let height = 14u32; // top aisle at y = 11, perimeter top row at 13
    let layout = SnakeLayout {
        width,
        height,
        aisle_ys: vec![1, 3, 5, 7, 9, 11],
        max_component_len: 90,
        orientation: wsp_traffic::RingOrientation::Forward,
    };

    let mut grid = GridMap::new(width, height)?;
    let mut chute_cells: Vec<Coord> = Vec::new();
    let mut remaining = 36u32;
    for &y in &[2u32, 4, 6, 8, 10] {
        // Uniformly spaced chutes: x = 3, 6, …, 24.
        for x in (3..=width - 5).step_by(3) {
            if remaining == 0 {
                break;
            }
            let at = Coord::new(x, y);
            grid.set(at, CellKind::Shelf)?;
            chute_cells.push(at);
            remaining -= 1;
        }
    }
    // Bins on the perimeter return, as in the paper's Fig. 5.
    for &(x, y) in &[(28u32, 10u32), (28, 4), (20, 0), (8, 0)] {
        grid.set(Coord::new(x, y), CellKind::Station)?;
    }

    let mut warehouse =
        Warehouse::from_grid_with_access(&grid, &[Direction::North, Direction::South])?;
    warehouse.set_catalog(ProductCatalog::with_len(chute_cells.len()));
    for (i, &cell) in chute_cells.iter().enumerate() {
        let access = cell
            .step(Direction::South)
            .and_then(|c| warehouse.graph().vertex_at(c))
            .expect("chute has a southern aisle by construction");
        warehouse.stock(access, ProductId(i as u32), SORTING_UNITS_PER_CHUTE)?;
    }

    let traffic = layout.build_traffic(&warehouse)?;
    Ok(MapInstance {
        name: "Sorting Center",
        products: chute_cells.len() as u32,
        station_bays: 4,
        shelves: warehouse.shelf_count(),
        warehouse,
        traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorting_center_matches_paper_stats() {
        let map = sorting_center().unwrap();
        assert_eq!(map.warehouse.grid().cell_count(), 406); // paper-exact
        assert_eq!(map.shelves, 36);
        assert_eq!(map.products, 36);
        assert_eq!(map.station_bays, 4);
        assert!(map.traffic.is_strongly_connected());
    }

    #[test]
    fn fulfillment_1_matches_paper_stats() {
        let map = fulfillment_center_1().unwrap();
        assert_eq!(map.shelves, 560);
        assert_eq!(map.products, 55);
        assert_eq!(map.station_bays, 4);
        assert_eq!(map.warehouse.grid().cell_count(), 1128); // paper: 1071
        assert!(map.traffic.is_strongly_connected());
    }

    #[test]
    fn fulfillment_2_matches_paper_stats() {
        let map = fulfillment_center_2().unwrap();
        assert_eq!(map.shelves, 240);
        assert_eq!(map.products, 120);
        assert_eq!(map.station_bays, 1);
        assert_eq!(map.warehouse.grid().cell_count(), 793); // paper-exact
        assert!(map.traffic.is_strongly_connected());
    }

    #[test]
    fn uniform_workloads_hit_totals() {
        let map = sorting_center().unwrap();
        for total in [160u64, 320, 480] {
            let w = map.uniform_workload(total);
            assert_eq!(w.total_units(), total);
            assert_eq!(w.demanded_products(), 36);
        }
    }

    #[test]
    fn every_product_is_stocked() {
        for map in [
            sorting_center().unwrap(),
            fulfillment_center_1().unwrap(),
            fulfillment_center_2().unwrap(),
        ] {
            for k in 0..map.products {
                assert!(
                    map.warehouse.location_matrix().total_units(ProductId(k)) > 0,
                    "{}: product {k} unstocked",
                    map.name
                );
            }
        }
    }

    #[test]
    fn stations_live_on_access_free_components() {
        for map in [
            sorting_center().unwrap(),
            fulfillment_center_1().unwrap(),
            fulfillment_center_2().unwrap(),
        ] {
            for q in map.traffic.station_queues() {
                for &v in map.traffic.component(q).path() {
                    assert!(!map.warehouse.is_shelf_access(v), "{}: mixed", map.name);
                }
            }
        }
    }

    #[test]
    fn renders_like_figure_4_and_5() {
        let map = sorting_center().unwrap();
        let art = wsp_traffic::render_traffic_system(&map.warehouse, &map.traffic);
        assert!(art.contains('!'));
        assert!(art.contains('#'));
        assert_eq!(art.lines().count(), 14);
    }
}
