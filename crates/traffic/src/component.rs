//! Traffic-system components: disjoint simple paths acting as one-way roads.

use std::fmt;

use wsp_model::{VertexId, Warehouse};

/// Index of a component within a [`TrafficSystem`](crate::TrafficSystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// The classification of a component (§IV-A): what its vertices provide
/// access to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Contains shelf-access vertices; agents pick products up here.
    ShelvingRow,
    /// Contains station vertices; agents drop products off here.
    StationQueue,
    /// Contains neither; pure connective tissue.
    Transport,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ComponentKind::ShelvingRow => "shelving row",
            ComponentKind::StationQueue => "station queue",
            ComponentKind::Transport => "transport",
        })
    }
}

/// A one-way road: a simple path of floorplan vertices. Agents enter at
/// [`Component::entry`], advance along [`Component::path`], and leave from
/// [`Component::exit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    id: ComponentId,
    kind: ComponentKind,
    path: Vec<VertexId>,
}

impl Component {
    /// Creates a component, deriving its kind from the warehouse: a path
    /// containing shelf-access vertices is a shelving row, one containing
    /// stations is a station queue, otherwise a transport.
    ///
    /// Kind conflicts (both shelf access and stations) are reported by
    /// [`TrafficSystemBuilder::build`](crate::TrafficSystemBuilder::build),
    /// not here.
    pub(crate) fn classify(id: ComponentId, path: Vec<VertexId>, warehouse: &Warehouse) -> Self {
        let has_shelf = path.iter().any(|&v| warehouse.is_shelf_access(v));
        let has_station = path.iter().any(|&v| warehouse.is_station(v));
        let kind = if has_shelf {
            ComponentKind::ShelvingRow
        } else if has_station {
            ComponentKind::StationQueue
        } else {
            ComponentKind::Transport
        };
        Component { id, kind, path }
    }

    /// The component's id.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// The component's kind.
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The vertices of the path, entry first.
    pub fn path(&self) -> &[VertexId] {
        &self.path
    }

    /// Number of vertices `|Cᵢ|`.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Components are never empty (validated at build time).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// The vertex agents enter at.
    ///
    /// # Panics
    ///
    /// Panics if the component is empty (cannot happen for built systems).
    pub fn entry(&self) -> VertexId {
        *self.path.first().expect("component is non-empty")
    }

    /// The vertex agents exit from.
    ///
    /// # Panics
    ///
    /// Panics if the component is empty (cannot happen for built systems).
    pub fn exit(&self) -> VertexId {
        *self.path.last().expect("component is non-empty")
    }

    /// The vertex following `v` on the path (the paper's `NEXT(Cᵢ, u)`), or
    /// `None` if `v` is the exit or not on the path.
    pub fn next(&self, v: VertexId) -> Option<VertexId> {
        let pos = self.path.iter().position(|&u| u == v)?;
        self.path.get(pos + 1).copied()
    }

    /// Position of `v` on the path (0 = entry).
    pub fn position(&self, v: VertexId) -> Option<usize> {
        self.path.iter().position(|&u| u == v)
    }

    /// The agent-cycle capacity `⌊|Cᵢ|/2⌋` of Property 4.1.
    pub fn capacity(&self) -> usize {
        self.len() / 2
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {} cells)", self.id, self.kind, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Coord, GridMap};

    fn demo_warehouse() -> Warehouse {
        // y=1: shelf + 2 empty; y=0: empty, station, empty.
        let grid = GridMap::from_ascii("#..\n.@.").unwrap();
        Warehouse::from_grid(&grid).unwrap()
    }

    fn vertex(w: &Warehouse, x: u32, y: u32) -> VertexId {
        w.graph().vertex_at(Coord::new(x, y)).unwrap()
    }

    #[test]
    fn classification_by_content() {
        let w = demo_warehouse();
        // (0,0) is adjacent to shelf (0,1): shelf-access vertex.
        let row = Component::classify(ComponentId(0), vec![vertex(&w, 0, 0)], &w);
        assert_eq!(row.kind(), ComponentKind::ShelvingRow);
        let queue = Component::classify(ComponentId(1), vec![vertex(&w, 1, 0)], &w);
        assert_eq!(queue.kind(), ComponentKind::StationQueue);
        let transport = Component::classify(ComponentId(2), vec![vertex(&w, 2, 1)], &w);
        assert_eq!(transport.kind(), ComponentKind::Transport);
    }

    #[test]
    fn entry_exit_next() {
        let w = demo_warehouse();
        let path = vec![vertex(&w, 2, 0), vertex(&w, 2, 1), vertex(&w, 1, 1)];
        let c = Component::classify(ComponentId(0), path.clone(), &w);
        assert_eq!(c.entry(), path[0]);
        assert_eq!(c.exit(), path[2]);
        assert_eq!(c.next(path[0]), Some(path[1]));
        assert_eq!(c.next(path[2]), None);
        assert_eq!(c.position(path[1]), Some(1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn capacity_floors() {
        let w = demo_warehouse();
        let c1 = Component::classify(ComponentId(0), vec![vertex(&w, 2, 1)], &w);
        assert_eq!(c1.capacity(), 0);
        let c4 = Component::classify(
            ComponentId(1),
            vec![
                vertex(&w, 1, 1),
                vertex(&w, 2, 1),
                vertex(&w, 2, 0),
                vertex(&w, 1, 0),
            ],
            &w,
        );
        assert_eq!(c4.capacity(), 2);
    }
}
