//! Topology design helpers: the building blocks map generators use to carve
//! grids into traffic systems, plus a generic perimeter-loop designer.
//!
//! The *co-design* knob of the paper is exactly here: the same warehouse
//! admits many traffic systems, and which one is chosen changes the capacity
//! constraints handed to flow synthesis. The paper-scale designers
//! (fulfillment center, sorting center) live in `wsp-maps`, where the layout
//! parameters are known; this module provides the shared mechanics.

use wsp_model::{Coord, Warehouse};

use crate::{ComponentId, TrafficError, TrafficSystem, TrafficSystemBuilder};

/// Travel direction of a ring-shaped lane design — one of the co-design
/// knobs swept by `wsp-explore`.
///
/// Reversing a ring keeps the cell set (and therefore the shelf/station
/// coverage) identical but flips every component's entry/exit and the arc
/// directions, which changes where merges land relative to stations and
/// shelving rows — and with them the capacity constraints handed to flow
/// synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RingOrientation {
    /// The designer's natural travel order (the paper's Fig. 4 direction).
    #[default]
    Forward,
    /// The same cells traversed in the opposite direction.
    Reversed,
}

impl RingOrientation {
    /// Applies the orientation to a run of cells in forward travel order.
    pub fn apply<T>(self, cells: &mut [T]) {
        if self == RingOrientation::Reversed {
            cells.reverse();
        }
    }
}

/// Splits a run of `len` cells into near-equal chunks of at most `max_len`
/// cells, returning the chunk sizes (all within one cell of each other, so
/// no trailing sliver component ends up with zero capacity).
///
/// This is the balancing rule every ring designer uses when chopping lanes
/// into components; `max_len` is the *lane-design granularity knob*: the
/// longest component sets the cycle time `t_c = 2m` (Property 4.1), while
/// shorter components mean more hop boundaries per revolution.
///
/// # Examples
///
/// ```
/// use wsp_traffic::chop_balanced;
///
/// assert_eq!(chop_balanced(10, 4), vec![4, 3, 3]);
/// assert_eq!(chop_balanced(8, 4), vec![4, 4]);
/// assert_eq!(chop_balanced(3, 9), vec![3]);
/// ```
pub fn chop_balanced(len: usize, max_len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let max_len = max_len.max(2);
    let pieces = len.div_ceil(max_len);
    let base = len / pieces;
    let extra = len % pieces; // the first `extra` chunks get one more cell
    (0..pieces).map(|i| base + usize::from(i < extra)).collect()
}

/// A straight run of grid cells, the basic brick of lane-based designs.
///
/// # Examples
///
/// ```
/// use wsp_traffic::LaneSpec;
///
/// let lane = LaneSpec::straight((2, 5), (5, 5));
/// assert_eq!(lane.coords(), &[(2, 5), (3, 5), (4, 5), (5, 5)]);
/// let down = LaneSpec::straight((1, 3), (1, 1));
/// assert_eq!(down.coords(), &[(1, 3), (1, 2), (1, 1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSpec {
    coords: Vec<(u32, u32)>,
}

impl LaneSpec {
    /// A horizontal or vertical run from `from` to `to`, inclusive, in
    /// travel order.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints share neither a row nor a column.
    pub fn straight(from: (u32, u32), to: (u32, u32)) -> Self {
        assert!(
            from.0 == to.0 || from.1 == to.1,
            "lane endpoints {from:?} and {to:?} are not aligned"
        );
        let mut coords = Vec::new();
        if from.1 == to.1 {
            let y = from.1;
            if from.0 <= to.0 {
                coords.extend((from.0..=to.0).map(|x| (x, y)));
            } else {
                coords.extend((to.0..=from.0).rev().map(|x| (x, y)));
            }
        } else {
            let x = from.0;
            if from.1 <= to.1 {
                coords.extend((from.1..=to.1).map(|y| (x, y)));
            } else {
                coords.extend((to.1..=from.1).rev().map(|y| (x, y)));
            }
        }
        LaneSpec { coords }
    }

    /// The cells of the lane, in travel order.
    pub fn coords(&self) -> &[(u32, u32)] {
        &self.coords
    }

    /// Appends another lane's cells (e.g. to turn a corner). The first cell
    /// of `other` must continue the path; duplicates are the caller's
    /// responsibility and are caught by traffic-system validation.
    pub fn then(mut self, other: LaneSpec) -> LaneSpec {
        self.coords.extend(other.coords);
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the lane has no cells.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

/// Designs a single clockwise perimeter loop around a rectangular warehouse,
/// chopped into components of at most `max_len` cells.
///
/// Requires every border cell to be traversable and every shelf-access and
/// station vertex to lie on the border (otherwise validation fails). Useful
/// for small demonstration warehouses and as the simplest complete designer.
///
/// # Errors
///
/// Returns the first [`TrafficError`] if the perimeter design violates the
/// composition rules (e.g. interior shelf access left uncovered).
pub fn design_perimeter_loop(
    warehouse: &Warehouse,
    max_len: usize,
) -> Result<TrafficSystem, TrafficError> {
    let grid = warehouse.grid();
    let (w, h) = (grid.width(), grid.height());
    // Clockwise from the bottom-left corner: up, right, down, left.
    let mut ring: Vec<(u32, u32)> = Vec::new();
    ring.extend((0..h).map(|y| (0, y)));
    ring.extend((1..w).map(|x| (x, h - 1)));
    ring.extend((0..h - 1).rev().map(|y| (w - 1, y)));
    ring.extend((1..w - 1).rev().map(|x| (x, 0)));

    let mut builder = TrafficSystemBuilder::new();
    let mut ids: Vec<ComponentId> = Vec::new();
    // Avoid a trailing 1-cell component (capacity 0): fold a short remainder
    // into the previous chunk by splitting the ring evenly.
    let mut at = 0usize;
    for size in chop_balanced(ring.len(), max_len) {
        ids.push(push_chunk(&mut builder, warehouse, &ring[at..at + size])?);
        at += size;
    }
    for i in 0..ids.len() {
        builder.connect(ids[i], ids[(i + 1) % ids.len()]);
    }
    builder.build(warehouse)
}

fn push_chunk(
    builder: &mut TrafficSystemBuilder,
    warehouse: &Warehouse,
    chunk: &[(u32, u32)],
) -> Result<ComponentId, TrafficError> {
    builder
        .add_component_coords(warehouse, chunk.iter().copied())
        .map_err(|_| {
            // A border cell was not traversable: report it as a broken path
            // on the component about to be created.
            TrafficError::BrokenPath {
                component: ComponentId(builder.component_count() as u32),
                at: 0,
            }
        })
}

/// Returns `true` if every border cell of the warehouse grid is traversable
/// (the precondition of [`design_perimeter_loop`]).
pub fn perimeter_is_open(warehouse: &Warehouse) -> bool {
    let grid = warehouse.grid();
    let (w, h) = (grid.width(), grid.height());
    let border = (0..w)
        .flat_map(|x| [(x, 0), (x, h - 1)])
        .chain((0..h).flat_map(|y| [(0, y), (w - 1, y)]));
    border
        .map(|(x, y)| Coord::new(x, y))
        .all(|c| grid.get(c).is_some_and(|k| k.is_traversable()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Direction, GridMap};

    #[test]
    fn lane_spec_directions() {
        assert_eq!(
            LaneSpec::straight((0, 0), (2, 0)).coords(),
            &[(0, 0), (1, 0), (2, 0)]
        );
        assert_eq!(
            LaneSpec::straight((2, 0), (0, 0)).coords(),
            &[(2, 0), (1, 0), (0, 0)]
        );
        assert_eq!(
            LaneSpec::straight((0, 2), (0, 0)).coords(),
            &[(0, 2), (0, 1), (0, 0)]
        );
        let single = LaneSpec::straight((3, 3), (3, 3));
        assert_eq!(single.len(), 1);
        assert!(!single.is_empty());
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn diagonal_lane_panics() {
        let _ = LaneSpec::straight((0, 0), (1, 1));
    }

    #[test]
    fn then_concatenates_corners() {
        let l = LaneSpec::straight((0, 0), (2, 0)).then(LaneSpec::straight((2, 1), (2, 2)));
        assert_eq!(l.coords(), &[(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]);
    }

    /// 5x4 map with a shelf block in the middle and stations on the border.
    fn border_warehouse() -> Warehouse {
        // y=3: .....   y=2: .##..   y=1: .....   y=0: ..@..
        let grid = GridMap::from_ascii(".....\n.##..\n.....\n..@..").unwrap();
        Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap()
    }

    #[test]
    fn perimeter_loop_fails_with_interior_access() {
        // Shelf access (0,2) is on the border (covered), but (3,2) is
        // interior, so the perimeter loop must fail with UncoveredVertex.
        let w = border_warehouse();
        let err = design_perimeter_loop(&w, 4).unwrap_err();
        assert!(matches!(err, TrafficError::UncoveredVertex { .. }));
    }

    #[test]
    fn perimeter_loop_succeeds_when_everything_is_on_the_border() {
        // Shelf at (1,1) of a 3x3 with east/west access on border columns?
        // access cells: (0,1) and (2,1) — both border. Station (1,0) border.
        let grid = GridMap::from_ascii("...\n#..\n.@.").unwrap();
        // Shelf at (0,1): access east only -> (1,1) which is interior of a
        // 3x3... instead put shelf in the middle: "." rows
        let _ = grid;
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        let ts = design_perimeter_loop(&w, 3).expect("valid perimeter design");
        assert!(ts.is_strongly_connected());
        assert!(ts.shelving_rows().count() >= 1);
        assert_eq!(ts.station_queues().count(), 1);
        // All components between 2 and 3 cells: capacity >= 1.
        for c in ts.components() {
            assert!(c.capacity() >= 1, "{c} has zero capacity");
        }
    }

    #[test]
    fn chop_balanced_sizes_are_even_and_bounded() {
        for len in 1..200usize {
            for max in 2..12usize {
                let sizes = chop_balanced(len, max);
                assert_eq!(sizes.iter().sum::<usize>(), len, "len {len} max {max}");
                assert!(sizes.iter().all(|&s| s <= max));
                let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "unbalanced {sizes:?} for len {len} max {max}");
            }
        }
        assert!(chop_balanced(0, 4).is_empty());
    }

    #[test]
    fn orientation_applies_in_place() {
        let mut cells = vec![1, 2, 3];
        RingOrientation::Forward.apply(&mut cells);
        assert_eq!(cells, [1, 2, 3]);
        RingOrientation::Reversed.apply(&mut cells);
        assert_eq!(cells, [3, 2, 1]);
        assert_eq!(RingOrientation::default(), RingOrientation::Forward);
    }

    #[test]
    fn perimeter_openness_check() {
        let w = border_warehouse();
        assert!(perimeter_is_open(&w));
        let grid = GridMap::from_ascii("#..\n..@\n.#.").unwrap();
        let closed = Warehouse::from_grid(&grid).unwrap();
        assert!(!perimeter_is_open(&closed));
    }
}
