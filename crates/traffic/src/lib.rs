//! Warehouse traffic systems: one-way road components, composition rules,
//! validation, and topology designers (§IV-A of the paper).
//!
//! A traffic system divides the traversable vertices of a warehouse
//! floorplan into disjoint simple paths called [`Component`]s. Agents enter
//! a component at its *entry* vertex, advance along the path, and exit from
//! its *exit* vertex into the entry of a successor component. Components are
//! classified by what they contain:
//!
//! * [`ComponentKind::ShelvingRow`] — contains shelf-access vertices;
//! * [`ComponentKind::StationQueue`] — contains station vertices;
//! * [`ComponentKind::Transport`] — contains neither.
//!
//! The paper's head/tail naming is inconsistent between §IV-A and
//! Algorithm 1 (see DESIGN.md §3.1); this crate uses the unambiguous
//! `entry`/`exit` convention throughout.
//!
//! # Examples
//!
//! ```
//! use wsp_model::{Direction, GridMap, Warehouse};
//! use wsp_traffic::TrafficSystemBuilder;
//!
//! // A shelf accessed from the east and a station, joined by a 2-component ring.
//! let grid = GridMap::from_ascii("#..\n.@.")?; // row y=1: shelf,empty,empty
//! let warehouse = Warehouse::from_grid_with_access(&grid, &[Direction::East])?;
//! let mut b = TrafficSystemBuilder::new();
//! let top = b.add_component_coords(&warehouse, [(1, 1), (2, 1)])?;
//! let bottom = b.add_component_coords(&warehouse, [(2, 0), (1, 0)])?;
//! b.connect(top, bottom);
//! b.connect(bottom, top);
//! let ts = b.build(&warehouse)?;
//! assert_eq!(ts.component_count(), 2);
//! assert!(ts.is_strongly_connected());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod component;
mod design;
mod render;
mod scc;
mod system;

pub use component::{Component, ComponentId, ComponentKind};
pub use design::{
    chop_balanced, design_perimeter_loop, perimeter_is_open, LaneSpec, RingOrientation,
};
pub use render::{describe_traffic_system, render_traffic_system};
pub use system::{TrafficError, TrafficSystem, TrafficSystemBuilder};
