//! Traffic systems: validated compositions of components.

use std::fmt;

use wsp_model::{VertexId, Warehouse};

use crate::component::{Component, ComponentId, ComponentKind};
use crate::scc::strongly_connected_components;

/// Sentinel for "no owning component" in the dense owner tables.
const NO_COMPONENT: u32 = wsp_model::NO_INDEX;

/// Ways a traffic-system design can violate the composition rules of §IV-A.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrafficError {
    /// A component has no vertices.
    EmptyComponent {
        /// The offending component.
        component: ComponentId,
    },
    /// A component visits the same vertex twice (paths must be simple).
    RepeatedVertex {
        /// The offending component.
        component: ComponentId,
        /// The repeated vertex.
        vertex: VertexId,
    },
    /// A component references a vertex id outside the warehouse's
    /// floorplan graph (e.g. built against a different warehouse).
    UnknownVertex {
        /// The offending component.
        component: ComponentId,
        /// The out-of-range vertex id.
        vertex: VertexId,
    },
    /// A vertex belongs to two components (components must be disjoint).
    VertexShared {
        /// The vertex in both components.
        vertex: VertexId,
        /// First owner.
        first: ComponentId,
        /// Second owner.
        second: ComponentId,
    },
    /// Consecutive path vertices are not adjacent in the floorplan graph.
    BrokenPath {
        /// The offending component.
        component: ComponentId,
        /// Index of the first vertex of the non-adjacent pair.
        at: usize,
    },
    /// A component contains both shelf-access and station vertices.
    MixedKind {
        /// The offending component.
        component: ComponentId,
    },
    /// A shelf-access or station vertex is not covered by any component.
    UncoveredVertex {
        /// The uncovered vertex.
        vertex: VertexId,
        /// `true` if it is a station vertex, `false` for shelf access.
        is_station: bool,
    },
    /// A component has fewer than 1 or more than 2 inlets/outlets.
    BadDegree {
        /// The offending component.
        component: ComponentId,
        /// Number of inlets.
        inlets: usize,
        /// Number of outlets.
        outlets: usize,
    },
    /// The floorplan has no edge from an inlet's exit to the component's
    /// entry.
    MissingEdge {
        /// Upstream component.
        from: ComponentId,
        /// Downstream component.
        to: ComponentId,
    },
    /// The traffic-system graph is not strongly connected.
    NotStronglyConnected {
        /// Number of strongly connected components found.
        scc_count: usize,
    },
    /// A connection references a component id that was never added.
    UnknownComponent {
        /// The dangling id.
        component: ComponentId,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::EmptyComponent { component } => {
                write!(f, "{component} has no vertices")
            }
            TrafficError::RepeatedVertex { component, vertex } => {
                write!(f, "{component} visits {vertex} twice")
            }
            TrafficError::UnknownVertex { component, vertex } => {
                write!(
                    f,
                    "{component} references {vertex}, outside the floorplan graph"
                )
            }
            TrafficError::VertexShared {
                vertex,
                first,
                second,
            } => write!(f, "{vertex} belongs to both {first} and {second}"),
            TrafficError::BrokenPath { component, at } => {
                write!(f, "{component} path breaks adjacency at index {at}")
            }
            TrafficError::MixedKind { component } => write!(
                f,
                "{component} contains both shelf-access and station vertices"
            ),
            TrafficError::UncoveredVertex { vertex, is_station } => write!(
                f,
                "{} vertex {vertex} is not covered by any component",
                if *is_station {
                    "station"
                } else {
                    "shelf-access"
                }
            ),
            TrafficError::BadDegree {
                component,
                inlets,
                outlets,
            } => write!(
                f,
                "{component} has {inlets} inlets and {outlets} outlets (each must be 1 or 2)"
            ),
            TrafficError::MissingEdge { from, to } => {
                write!(f, "no floorplan edge from exit of {from} to entry of {to}")
            }
            TrafficError::NotStronglyConnected { scc_count } => write!(
                f,
                "traffic-system graph has {scc_count} strongly connected components (need 1)"
            ),
            TrafficError::UnknownComponent { component } => {
                write!(f, "connection references unknown {component}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

/// Incrementally assembles a traffic system, then validates it against a
/// warehouse with [`TrafficSystemBuilder::build`].
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug, Clone, Default)]
pub struct TrafficSystemBuilder {
    paths: Vec<Vec<VertexId>>,
    connections: Vec<(ComponentId, ComponentId)>,
}

impl TrafficSystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TrafficSystemBuilder::default()
    }

    /// Adds a component with the given vertex path (entry first); returns
    /// its id.
    pub fn add_component(&mut self, path: Vec<VertexId>) -> ComponentId {
        let id = ComponentId(self.paths.len() as u32);
        self.paths.push(path);
        id
    }

    /// Adds a component from grid coordinates, looking vertices up in the
    /// warehouse's floorplan graph.
    ///
    /// # Errors
    ///
    /// Returns [`wsp_model::ModelError::OutOfBounds`] if a coordinate has no
    /// traversable vertex.
    pub fn add_component_coords(
        &mut self,
        warehouse: &Warehouse,
        coords: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<ComponentId, wsp_model::ModelError> {
        let grid = warehouse.grid();
        let mut path = Vec::new();
        for (x, y) in coords {
            let at = wsp_model::Coord::new(x, y);
            let v = warehouse
                .graph()
                .vertex_at(at)
                .ok_or(wsp_model::ModelError::OutOfBounds {
                    at,
                    width: grid.width(),
                    height: grid.height(),
                })?;
            path.push(v);
        }
        Ok(self.add_component(path))
    }

    /// Declares `from` an inlet of `to` (agents may move `from → to`).
    pub fn connect(&mut self, from: ComponentId, to: ComponentId) -> &mut Self {
        self.connections.push((from, to));
        self
    }

    /// Number of components added so far.
    pub fn component_count(&self) -> usize {
        self.paths.len()
    }

    /// Validates the design against `warehouse` and produces the traffic
    /// system.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrafficError`] found; use
    /// [`TrafficSystemBuilder::validate_all`] to list every violation.
    pub fn build(&self, warehouse: &Warehouse) -> Result<TrafficSystem, TrafficError> {
        match self.try_build(warehouse) {
            Ok(ts) => Ok(ts),
            Err(mut errs) => Err(errs.remove(0)),
        }
    }

    /// Lists *all* rule violations in the current design (empty = valid).
    pub fn validate_all(&self, warehouse: &Warehouse) -> Vec<TrafficError> {
        match self.try_build(warehouse) {
            Ok(_) => Vec::new(),
            Err(errs) => errs,
        }
    }

    fn try_build(&self, warehouse: &Warehouse) -> Result<TrafficSystem, Vec<TrafficError>> {
        let mut errors = Vec::new();
        let graph = warehouse.graph();
        let n = self.paths.len();

        // Rule: simple, disjoint, adjacent paths. The owner and offset
        // tables are the dense per-vertex maps the built system ships
        // with; the owner table doubles as the duplicate detector here.
        let mut owner: Vec<u32> = vec![NO_COMPONENT; graph.vertex_count()];
        let mut offset: Vec<u32> = vec![0; graph.vertex_count()];
        for (i, path) in self.paths.iter().enumerate() {
            let id = ComponentId(i as u32);
            if path.is_empty() {
                errors.push(TrafficError::EmptyComponent { component: id });
                continue;
            }
            for (k, &v) in path.iter().enumerate() {
                if v.index() >= owner.len() {
                    errors.push(TrafficError::UnknownVertex {
                        component: id,
                        vertex: v,
                    });
                    continue;
                }
                offset[v.index()] = k as u32;
                match owner[v.index()] {
                    NO_COMPONENT => owner[v.index()] = id.0,
                    prev if prev == id.0 => errors.push(TrafficError::RepeatedVertex {
                        component: id,
                        vertex: v,
                    }),
                    prev => errors.push(TrafficError::VertexShared {
                        vertex: v,
                        first: ComponentId(prev),
                        second: id,
                    }),
                }
            }
            for (k, w) in path.windows(2).enumerate() {
                if !graph.has_edge(w[0], w[1]) {
                    errors.push(TrafficError::BrokenPath {
                        component: id,
                        at: k,
                    });
                }
            }
            // Rule: no mixed shelf-access + station content.
            let has_shelf = path.iter().any(|&v| warehouse.is_shelf_access(v));
            let has_station = path.iter().any(|&v| warehouse.is_station(v));
            if has_shelf && has_station {
                errors.push(TrafficError::MixedKind { component: id });
            }
        }

        // Rule: coverage of every shelf-access and station vertex.
        for &v in warehouse.shelf_access() {
            if owner[v.index()] == NO_COMPONENT {
                errors.push(TrafficError::UncoveredVertex {
                    vertex: v,
                    is_station: false,
                });
            }
        }
        for &v in warehouse.stations() {
            if owner[v.index()] == NO_COMPONENT {
                errors.push(TrafficError::UncoveredVertex {
                    vertex: v,
                    is_station: true,
                });
            }
        }

        // Connections.
        let mut inlets: Vec<Vec<ComponentId>> = vec![Vec::new(); n];
        let mut outlets: Vec<Vec<ComponentId>> = vec![Vec::new(); n];
        for &(from, to) in &self.connections {
            if from.index() >= n {
                errors.push(TrafficError::UnknownComponent { component: from });
                continue;
            }
            if to.index() >= n {
                errors.push(TrafficError::UnknownComponent { component: to });
                continue;
            }
            outlets[from.index()].push(to);
            inlets[to.index()].push(from);
        }

        // Rule: inlet/outlet counts and edge existence.
        for i in 0..n {
            let id = ComponentId(i as u32);
            let (ni, no) = (inlets[i].len(), outlets[i].len());
            if !(1..=2).contains(&ni) || !(1..=2).contains(&no) {
                errors.push(TrafficError::BadDegree {
                    component: id,
                    inlets: ni,
                    outlets: no,
                });
            }
            if self.paths[i].is_empty() {
                continue;
            }
            let entry = self.paths[i][0];
            for &from in &inlets[i] {
                let Some(path) = self.paths.get(from.index()) else {
                    continue;
                };
                let Some(&exit) = path.last() else { continue };
                if !graph.has_edge(exit, entry) {
                    errors.push(TrafficError::MissingEdge { from, to: id });
                }
            }
        }

        // Rule: strong connectivity.
        if n > 0 {
            let adj: Vec<Vec<usize>> = outlets
                .iter()
                .map(|outs| outs.iter().map(|c| c.index()).collect())
                .collect();
            let sccs = strongly_connected_components(&adj);
            if sccs.len() != 1 {
                errors.push(TrafficError::NotStronglyConnected {
                    scc_count: sccs.len(),
                });
            }
        }

        if !errors.is_empty() {
            return Err(errors);
        }

        let components: Vec<Component> = self
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| Component::classify(ComponentId(i as u32), p.clone(), warehouse))
            .collect();
        Ok(TrafficSystem {
            components,
            inlets,
            outlets,
            owner,
            offset,
        })
    }
}

/// A validated traffic system: disjoint one-way road components over a
/// warehouse floorplan, with a strongly connected component graph.
///
/// Produced by [`TrafficSystemBuilder::build`]; all §IV-A composition rules
/// hold by construction.
///
/// # Examples
///
/// ```
/// use wsp_model::{Direction, GridMap, Warehouse};
/// use wsp_traffic::design_perimeter_loop;
///
/// let grid = GridMap::from_ascii("...\n.#.\n.@.")?;
/// let warehouse =
///     Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West])?;
/// let ts = design_perimeter_loop(&warehouse, 3)?;
/// assert!(ts.is_strongly_connected());
/// assert!(ts.station_queues().count() >= 1);
/// assert_eq!(ts.cycle_time(), 2 * ts.max_component_len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrafficSystem {
    components: Vec<Component>,
    inlets: Vec<Vec<ComponentId>>,
    outlets: Vec<Vec<ComponentId>>,
    /// Dense per-vertex owner table, sized by the floorplan graph's
    /// `vertex_count()`; [`NO_COMPONENT`] marks unused vertices.
    owner: Vec<u32>,
    /// Dense per-vertex path offset (0 = entry) within the owning
    /// component; meaningless (0) for unused vertices. Components are
    /// disjoint simple paths, so the offset is well-defined and makes
    /// `position`/`next` queries O(1) instead of a path scan.
    offset: Vec<u32>,
}

impl TrafficSystem {
    /// All components, in id order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components `|Vₛ|`.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// A component by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// The inlets of a component (`INLETS(Cᵢ)`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn inlets(&self, id: ComponentId) -> &[ComponentId] {
        &self.inlets[id.index()]
    }

    /// The outlets of a component (`OUTLETS(Cᵢ)`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn outlets(&self, id: ComponentId) -> &[ComponentId] {
        &self.outlets[id.index()]
    }

    /// All arcs `(Cᵢ, Cⱼ)` of the traffic-system graph `Gₛ`.
    pub fn arcs(&self) -> impl Iterator<Item = (ComponentId, ComponentId)> + '_ {
        self.components
            .iter()
            .flat_map(move |c| self.outlets(c.id()).iter().map(move |&to| (c.id(), to)))
    }

    /// Number of arcs `|Eₛ|`.
    pub fn arc_count(&self) -> usize {
        self.outlets.iter().map(Vec::len).sum()
    }

    /// The component owning a vertex, if any (vertices outside every
    /// component are the paper's *unused vertices*).
    pub fn component_of(&self, v: VertexId) -> Option<ComponentId> {
        match self.owner.get(v.index()) {
            Some(&id) if id != NO_COMPONENT => Some(ComponentId(id)),
            _ => None,
        }
    }

    /// The owning component and path offset (0 = entry) of a vertex, both
    /// O(1) via dense tables — the fast form of
    /// [`Component::position`](crate::Component::position) for hot loops.
    pub fn locate(&self, v: VertexId) -> Option<(ComponentId, u32)> {
        match self.owner.get(v.index()) {
            Some(&id) if id != NO_COMPONENT => Some((ComponentId(id), self.offset[v.index()])),
            _ => None,
        }
    }

    /// The vertex following `v` on its owning component's path (the
    /// paper's `NEXT`), `None` for exits and unused vertices; O(1).
    pub fn next_on_component(&self, v: VertexId) -> Option<VertexId> {
        let (comp, at) = self.locate(v)?;
        self.components[comp.index()]
            .path()
            .get(at as usize + 1)
            .copied()
    }

    /// The length `m` of the longest component.
    pub fn max_component_len(&self) -> usize {
        self.components
            .iter()
            .map(Component::len)
            .max()
            .unwrap_or(0)
    }

    /// The realization cycle time `t_c = 2m` of Property 4.1.
    pub fn cycle_time(&self) -> usize {
        2 * self.max_component_len()
    }

    /// Ids of all shelving-row components.
    pub fn shelving_rows(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.by_kind(ComponentKind::ShelvingRow)
    }

    /// Ids of all station-queue components.
    pub fn station_queues(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.by_kind(ComponentKind::StationQueue)
    }

    /// Ids of all transport components.
    pub fn transports(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.by_kind(ComponentKind::Transport)
    }

    fn by_kind(&self, kind: ComponentKind) -> impl Iterator<Item = ComponentId> + '_ {
        self.components
            .iter()
            .filter(move |c| c.kind() == kind)
            .map(Component::id)
    }

    /// Whether the traffic-system graph is strongly connected (always true
    /// for built systems; exposed for diagnostics and tests).
    pub fn is_strongly_connected(&self) -> bool {
        let adj: Vec<Vec<usize>> = self
            .outlets
            .iter()
            .map(|outs| outs.iter().map(|c| c.index()).collect())
            .collect();
        strongly_connected_components(&adj).len() == 1
    }

    /// A shortest component path `from → … → to` on the traffic graph
    /// (inclusive), or `None` if `to` is unreachable (cannot happen for
    /// built systems, which are strongly connected).
    pub fn component_path(&self, from: ComponentId, to: ComponentId) -> Option<Vec<ComponentId>> {
        let mut prev: Vec<u32> = vec![NO_COMPONENT; self.components.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        prev[from.index()] = from.0;
        while let Some(c) = queue.pop_front() {
            if c == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = ComponentId(prev[cur.index()]);
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &n in self.outlets(c) {
                if prev[n.index()] == NO_COMPONENT {
                    prev[n.index()] = c.0;
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// Total number of vertices covered by components.
    pub fn covered_vertex_count(&self) -> usize {
        self.owner.iter().filter(|&&id| id != NO_COMPONENT).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Direction, GridMap, Warehouse};

    /// 5x3 map: shelf at (2,2) accessed east/west, station at (2,0).
    ///
    /// ```text
    /// y=2:  . . # . .
    /// y=1:  . . . . .
    /// y=0:  . . @ . .
    /// ```
    fn demo() -> Warehouse {
        let grid = GridMap::from_ascii("..#..\n.....\n..@..").unwrap();
        Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap()
    }

    /// A valid clockwise loop of four components covering both shelf-access
    /// vertices (1,2), (3,2) and the station (2,0).
    fn valid_loop(w: &Warehouse) -> (TrafficSystemBuilder, [ComponentId; 4]) {
        let mut b = TrafficSystemBuilder::new();
        let left = b
            .add_component_coords(w, [(0, 0), (0, 1), (0, 2), (1, 2)])
            .unwrap();
        let mid = b
            .add_component_coords(w, [(1, 1), (2, 1), (3, 1), (3, 2), (4, 2)])
            .unwrap();
        let right = b.add_component_coords(w, [(4, 1), (4, 0), (3, 0)]).unwrap();
        let bottom = b.add_component_coords(w, [(2, 0), (1, 0)]).unwrap();
        b.connect(left, mid); // (1,2) -> (1,1)
        b.connect(mid, right); // (4,2) -> (4,1)
        b.connect(right, bottom); // (3,0) -> (2,0)
        b.connect(bottom, left); // (1,0) -> (0,0)
        (b, [left, mid, right, bottom])
    }

    #[test]
    fn valid_loop_builds() {
        let w = demo();
        let (b, [left, mid, right, bottom]) = valid_loop(&w);
        let ts = b.build(&w).expect("valid design");
        assert_eq!(ts.component_count(), 4);
        assert!(ts.is_strongly_connected());
        assert_eq!(ts.shelving_rows().count(), 2); // left and mid hold access cells
        assert_eq!(ts.station_queues().count(), 1);
        assert_eq!(ts.transports().count(), 1);
        assert_eq!(ts.max_component_len(), 5);
        assert_eq!(ts.cycle_time(), 10);
        assert_eq!(ts.arc_count(), 4);
        assert_eq!(ts.inlets(mid), &[left]);
        assert_eq!(ts.outlets(mid), &[right]);
        assert_eq!(ts.component(bottom).kind(), ComponentKind::StationQueue);
        assert_eq!(ts.component(right).kind(), ComponentKind::Transport);
        assert_eq!(ts.covered_vertex_count(), 14);
        let path = ts.component_path(left, bottom).unwrap();
        assert_eq!(path, vec![left, mid, right, bottom]);
    }

    #[test]
    fn component_of_maps_vertices_to_owners() {
        let w = demo();
        let (b, [left, ..]) = valid_loop(&w);
        let ts = b.build(&w).unwrap();
        let v = w.graph().vertex_at(wsp_model::Coord::new(0, 1)).unwrap();
        assert_eq!(ts.component_of(v), Some(left));
        let unused = w.graph().vertex_at(wsp_model::Coord::new(2, 0));
        assert!(unused.is_some()); // station is covered
        let interior = w.graph().vertex_at(wsp_model::Coord::new(1, 0)).unwrap();
        assert!(ts.component_of(interior).is_some());
    }

    #[test]
    fn locate_agrees_with_path_scans_everywhere() {
        let w = demo();
        let (b, _) = valid_loop(&w);
        let ts = b.build(&w).unwrap();
        for v in (0..w.graph().vertex_count()).map(|i| VertexId(i as u32)) {
            match ts.component_of(v) {
                Some(comp) => {
                    let c = ts.component(comp);
                    assert_eq!(ts.locate(v), Some((comp, c.position(v).unwrap() as u32)));
                    assert_eq!(ts.next_on_component(v), c.next(v));
                }
                None => {
                    assert_eq!(ts.locate(v), None);
                    assert_eq!(ts.next_on_component(v), None);
                }
            }
        }
    }

    #[test]
    fn uncovered_shelf_access_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        // A loop that misses the (3,2) access cell and the station.
        let lane = b
            .add_component_coords(&w, [(0, 1), (1, 1), (1, 2)])
            .unwrap();
        let back = b.add_component_coords(&w, [(0, 2)]).unwrap();
        b.connect(lane, back); // (1,2) -> (0,2)
        b.connect(back, lane); // (0,2) -> (0,1)
        let errs = b.validate_all(&w);
        assert!(errs.iter().any(|e| matches!(
            e,
            TrafficError::UncoveredVertex {
                is_station: false,
                ..
            }
        )));
        assert!(errs.iter().any(|e| matches!(
            e,
            TrafficError::UncoveredVertex {
                is_station: true,
                ..
            }
        )));
    }

    #[test]
    fn mixed_kind_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        // Path holding both the (1,2) access cell and the (2,0) station.
        let mixed = b
            .add_component_coords(&w, [(1, 2), (1, 1), (1, 0), (2, 0)])
            .unwrap();
        b.connect(mixed, mixed);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::MixedKind { .. })));
    }

    #[test]
    fn shared_vertex_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        let a = b.add_component_coords(&w, [(0, 0), (1, 0)]).unwrap();
        let c = b.add_component_coords(&w, [(1, 0), (2, 0)]).unwrap();
        b.connect(a, c);
        b.connect(c, a);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::VertexShared { .. })));
    }

    #[test]
    fn repeated_vertex_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        let a = b
            .add_component_coords(&w, [(0, 0), (1, 0), (0, 0)])
            .unwrap();
        b.connect(a, a);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::RepeatedVertex { .. })));
    }

    #[test]
    fn broken_path_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        let a = b.add_component_coords(&w, [(0, 0), (2, 0)]).unwrap();
        b.connect(a, a);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::BrokenPath { .. })));
    }

    #[test]
    fn empty_component_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        let a = b.add_component(Vec::new());
        b.connect(a, a);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::EmptyComponent { .. })));
    }

    #[test]
    fn missing_edge_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        let a = b.add_component_coords(&w, [(0, 0)]).unwrap();
        let c = b.add_component_coords(&w, [(3, 0)]).unwrap();
        b.connect(a, c); // (0,0) and (3,0) are not adjacent
        b.connect(c, a);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::MissingEdge { .. })));
    }

    #[test]
    fn degree_violations_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        // No connections at all: 0 inlets, 0 outlets.
        b.add_component_coords(&w, [(0, 0)]).unwrap();
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::BadDegree { .. })));
    }

    #[test]
    fn out_of_range_vertex_reported_not_panicking() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        // A vertex id far outside the demo warehouse's graph (e.g. built
        // against a different warehouse).
        let a = b.add_component(vec![VertexId(9_999)]);
        b.connect(a, a);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::UnknownVertex { .. })));
    }

    #[test]
    fn unknown_component_in_connection() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        let a = b.add_component_coords(&w, [(0, 0), (1, 0)]).unwrap();
        b.connect(a, ComponentId(99));
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::UnknownComponent { .. })));
    }

    #[test]
    fn disconnected_design_detected() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        // Two independent 2-cycles plus a station self-pair; no bridges.
        let a1 = b.add_component_coords(&w, [(1, 2)]).unwrap();
        let a2 = b.add_component_coords(&w, [(1, 1)]).unwrap();
        let b1 = b.add_component_coords(&w, [(3, 2)]).unwrap();
        let b2 = b.add_component_coords(&w, [(3, 1)]).unwrap();
        let s1 = b.add_component_coords(&w, [(2, 0)]).unwrap();
        let s2 = b.add_component_coords(&w, [(1, 0)]).unwrap();
        b.connect(a1, a2);
        b.connect(a2, a1);
        b.connect(b1, b2);
        b.connect(b2, b1);
        b.connect(s1, s2);
        b.connect(s2, s1);
        let errs = b.validate_all(&w);
        assert!(errs
            .iter()
            .any(|e| matches!(e, TrafficError::NotStronglyConnected { .. })));
    }

    #[test]
    fn build_returns_first_error() {
        let w = demo();
        let mut b = TrafficSystemBuilder::new();
        let a = b.add_component(Vec::new());
        b.connect(a, a);
        let err = b.build(&w).unwrap_err();
        assert!(matches!(err, TrafficError::EmptyComponent { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TrafficError::NotStronglyConnected { scc_count: 3 };
        assert!(e.to_string().contains("3 strongly connected"));
    }
}
