//! Tarjan's strongly-connected-components algorithm on the traffic-system
//! graph (iterative, so deep systems cannot overflow the stack).

/// Computes the strongly connected components of a directed graph given as
/// adjacency lists. Returns one `Vec` of node indices per SCC, in reverse
/// topological order of the condensation.
pub(crate) fn strongly_connected_components(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    // Explicit DFS state: (node, child-iteration position).
    let mut work: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        work.push((start, 0));
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *pos < adj[v].len() {
                let w = adj[v][*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_scc() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 3);
    }

    #[test]
    fn chain_is_singleton_sccs() {
        let adj = vec![vec![1], vec![2], vec![]];
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // 0 <-> 1, 2 <-> 3, bridge 1 -> 2.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 2);
    }

    #[test]
    fn empty_graph() {
        let adj: Vec<Vec<usize>> = Vec::new();
        assert!(strongly_connected_components(&adj).is_empty());
    }

    #[test]
    fn self_loop() {
        let adj = vec![vec![0]];
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node cycle exercises the iterative implementation.
        let n = 100_000;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }
}
