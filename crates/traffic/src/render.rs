//! ASCII rendering of traffic systems in the style of the paper's Figs. 4
//! and 5: component exits marked `!`, other component cells drawn as arrows
//! pointing to the next vertex of their component.

use wsp_model::{CellKind, Coord, Warehouse};

use crate::TrafficSystem;

/// Renders a warehouse and its traffic system as ASCII art (top row first).
///
/// Legend (matching the paper's figure conventions):
///
/// * `#` shelf, `x` obstacle, `@` uncovered station, `.` unused floor;
/// * `!` the exit of a component (the paper's green exclamation cell);
/// * `> < ^ v` a component cell, pointing at the next vertex of its path.
///
/// # Examples
///
/// ```
/// use wsp_model::{Direction, GridMap, Warehouse};
/// use wsp_traffic::{design_perimeter_loop, render_traffic_system};
///
/// let grid = GridMap::from_ascii("...\n.#.\n.@.")?;
/// let warehouse =
///     Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West])?;
/// let ts = design_perimeter_loop(&warehouse, 3)?;
/// let art = render_traffic_system(&warehouse, &ts);
/// assert_eq!(art.lines().count(), 3);
/// assert!(art.contains('!'));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_traffic_system(warehouse: &Warehouse, ts: &TrafficSystem) -> String {
    let grid = warehouse.grid();
    let graph = warehouse.graph();
    let mut out = String::with_capacity((grid.width() as usize + 1) * grid.height() as usize);
    for y in (0..grid.height()).rev() {
        for x in 0..grid.width() {
            let at = Coord::new(x, y);
            let kind = grid.get(at).expect("in bounds");
            let ch = match graph.vertex_at(at) {
                Some(v) => match ts.component_of(v) {
                    Some(cid) => {
                        let comp = ts.component(cid);
                        match comp.next(v) {
                            None => '!',
                            Some(next) => {
                                let nc = graph.coord(next);
                                if nc.x > at.x {
                                    '>'
                                } else if nc.x < at.x {
                                    '<'
                                } else if nc.y > at.y {
                                    '^'
                                } else {
                                    'v'
                                }
                            }
                        }
                    }
                    None => kind.to_char(),
                },
                None => kind.to_char(),
            };
            out.push(ch);
        }
        if y != 0 {
            out.push('\n');
        }
    }
    out
}

/// Summarizes a traffic system: component counts by kind, longest
/// component, cycle time — the numbers quoted when describing Figs. 4/5.
pub fn describe_traffic_system(warehouse: &Warehouse, ts: &TrafficSystem) -> String {
    let shelves = warehouse.shelf_count();
    format!(
        "{} cells, {} shelves, {} stations | {} components \
         ({} shelving rows, {} station queues, {} transports), m = {}, t_c = {}",
        warehouse.grid().cell_count(),
        shelves,
        warehouse.stations().len(),
        ts.component_count(),
        ts.shelving_rows().count(),
        ts.station_queues().count(),
        ts.transports().count(),
        ts.max_component_len(),
        ts.cycle_time(),
    )
}

// `CellKind` is used in the doc comment legend; keep the import honest.
#[allow(unused)]
fn _legend(kind: CellKind) -> char {
    kind.to_char()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Direction, GridMap};

    fn demo() -> (Warehouse, TrafficSystem) {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        let ts = crate::design_perimeter_loop(&w, 3).unwrap();
        (w, ts)
    }

    #[test]
    fn render_marks_shelves_and_exits() {
        let (w, ts) = demo();
        let art = render_traffic_system(&w, &ts);
        assert!(art.contains('#'));
        assert!(art.contains('!'));
        // The whole perimeter is covered: no '.' on the border.
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].contains('.'));
        assert!(!lines[2].contains('.'));
    }

    #[test]
    fn render_dimensions_match_grid() {
        let (w, ts) = demo();
        let art = render_traffic_system(&w, &ts);
        for line in art.lines() {
            assert_eq!(line.chars().count(), w.grid().width() as usize);
        }
    }

    #[test]
    fn exits_count_matches_components() {
        let (w, ts) = demo();
        let art = render_traffic_system(&w, &ts);
        let bangs = art.chars().filter(|&c| c == '!').count();
        assert_eq!(bangs, ts.component_count());
    }

    #[test]
    fn description_mentions_counts() {
        let (w, ts) = demo();
        let d = describe_traffic_system(&w, &ts);
        assert!(d.contains("components"));
        assert!(d.contains("t_c"));
    }
}
