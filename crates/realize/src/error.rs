//! Errors of the realization algorithm.

use std::fmt;

use wsp_traffic::ComponentId;

/// Ways realization of an agent cycle set can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RealizeError {
    /// A component hosts more agent-cycle passes than its Property 4.1
    /// capacity `⌊|Cᵢ|/2⌋`, so the realization guarantee does not apply.
    CapacityExceeded {
        /// The overloaded component.
        component: ComponentId,
        /// Cycle passes through the component.
        occupancy: usize,
        /// The component's capacity.
        capacity: usize,
    },
    /// A cycle step references a component id outside the traffic system.
    UnknownComponent {
        /// The dangling id.
        component: ComponentId,
    },
    /// An agent cycle is internally inconsistent (pickup while loaded,
    /// mismatched drop-off, …).
    InconsistentCycle {
        /// Description from the cycle checker.
        detail: String,
    },
    /// A cycle uses an arc that is not in the traffic-system graph.
    MissingArc {
        /// Source component.
        from: ComponentId,
        /// Target component.
        to: ComponentId,
    },
    /// A window-resume snapshot set is malformed: wrong team size,
    /// out-of-range cycle/step/vertex indices, or duplicate positions.
    BadSnapshot {
        /// Index of the offending snapshot.
        agent: usize,
        /// Human-readable description.
        detail: String,
    },
    /// An agent traversed its whole pickup component without finding stock
    /// of the product it must pick up.
    PickupMissed {
        /// The shelving-row component.
        component: ComponentId,
        /// Timestep at which the agent exited empty-handed.
        t: usize,
    },
}

impl fmt::Display for RealizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizeError::CapacityExceeded {
                component,
                occupancy,
                capacity,
            } => write!(
                f,
                "{component} hosts {occupancy} cycle passes, capacity {capacity} (Property 4.1)"
            ),
            RealizeError::UnknownComponent { component } => {
                write!(f, "cycle references unknown {component}")
            }
            RealizeError::InconsistentCycle { detail } => {
                write!(f, "inconsistent agent cycle: {detail}")
            }
            RealizeError::MissingArc { from, to } => {
                write!(
                    f,
                    "cycle moves {from} -> {to}, which is not a traffic-system arc"
                )
            }
            RealizeError::BadSnapshot { agent, detail } => {
                write!(f, "bad snapshot for agent {agent}: {detail}")
            }
            RealizeError::PickupMissed { component, t } => write!(
                f,
                "agent exited pickup component {component} empty-handed at t={t}"
            ),
        }
    }
}

impl std::error::Error for RealizeError {}
