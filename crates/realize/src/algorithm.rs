//! The component-timestep realization algorithm (Algorithm 1).

use wsp_flow::{AgentCycleSet, CycleAction};
use wsp_model::{AgentState, Carry, Plan, ProductId, VertexId, Warehouse, Workload};
use wsp_traffic::{ComponentId, TrafficSystem};

use crate::RealizeError;

/// The result of realizing an agent cycle set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealizeOutcome {
    /// The realized plan (initial placement at `t = 0`).
    pub plan: Plan,
    /// Units of each product delivered, indexed by product id.
    pub delivered: Vec<u64>,
    /// Timesteps actually executed (≤ the requested limit; realization
    /// stops as soon as the workload is serviced).
    pub timesteps: usize,
    /// Number of agents in the plan.
    pub agents: usize,
    /// First-revolution pickup opportunities that were skipped because the
    /// agent was initially placed past its component's stocked shelf cell.
    /// Always zero from the second revolution on.
    pub pickup_misses: u64,
    /// Period/agent pairs where an agent failed to advance a component
    /// within one cycle period. Property 4.1 promises zero for cycle sets
    /// within component capacities.
    pub missed_advances: u64,
}

#[derive(Debug)]
struct AgentRt {
    cycle: usize,
    step: usize,
    pos: VertexId,
    /// Offset of `pos` on the current component's path (0 = entry),
    /// maintained incrementally (+1 on internal moves, 0 on hops) so the
    /// stepping loop never pays a path scan; meaningless for strays.
    path_off: u32,
    /// Timestep at which the agent entered its current component
    /// (`ADVANCE_T`); `-1` lets every agent hop in the very first period.
    advance_t: i64,
    carry: Option<ProductId>,
    /// Off its component's path (a window-resume snapshot of an agent in
    /// repair transit): stays parked as a static obstacle for the whole
    /// window — it neither moves, acts, nor counts toward diagnostics.
    stray: bool,
}

/// A resumable per-agent runtime snapshot: everything the realization
/// stepping needs to continue an agent mid-execution. Produced by
/// [`initial_snapshots`] and [`WindowOutcome::final_states`], consumed by
/// [`realize_window`] — the rolling-horizon entry point `wsp-sim` replans
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentSnapshot {
    /// Index of the agent's cycle in the [`AgentCycleSet`].
    pub cycle: usize,
    /// Current step within that cycle.
    pub step: usize,
    /// Current vertex.
    pub pos: VertexId,
    /// Carried product, if any.
    pub carry: Option<ProductId>,
    /// Absolute timestep at which the agent last entered a component
    /// (`-1` allows a hop in the very first period).
    pub advance_t: i64,
    /// Detached from cycle execution: the realization treats the agent
    /// exactly like a stray — parked in place as a static obstacle for
    /// the whole window, moving nothing and counting toward no
    /// diagnostics — even when it sits on its component's path. Set by
    /// callers that drive the agent outside the window plan (the
    /// simulator's auction missions) while keeping the replan cadence.
    pub detached: bool,
}

/// The result of realizing one rolling-horizon window from a set of
/// [`AgentSnapshot`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowOutcome {
    /// The window-local plan: state `0` is the snapshot configuration,
    /// state `k` the configuration `k` ticks later.
    pub plan: Plan,
    /// Units of each product delivered within the window, by product id.
    pub delivered: Vec<u64>,
    /// Ticks realized (always the requested window length).
    pub timesteps: usize,
    /// Agent states at the end of the window, ready to seed the next one.
    pub final_states: Vec<AgentSnapshot>,
    /// Period/agent pairs that failed to advance a component within one
    /// cycle period during this window (strays excluded).
    pub missed_advances: u64,
    /// Pickup steps hopped out of empty-handed during this window.
    pub pickup_misses: u64,
    /// Per agent, the first window index `k ≥ 1` whose planned state
    /// (position or carry) differs from the snapshot state at index 0, or
    /// `u32::MAX` if the agent is scheduled to sit still, unchanged, for
    /// the whole window. This is each [`AgentSnapshot`]'s *next scheduled
    /// state change*: an event-driven executor may provably skip the agent
    /// for the first `first_change - 1` ticks of an on-schedule window.
    pub first_change: Vec<u32>,
}

/// Reusable scratch for [`realize`]: the per-timestep dense tables, the
/// agent runtime states, and the remaining-stock ledger, kept across calls
/// so repeated realizations (the staged pipeline evaluating one design
/// candidate after another) are allocation-light — after the first call on
/// a warehouse of a given size, a realization allocates only its outputs
/// (the plan and the delivery counts).
///
/// Invariant between calls: every dense entry is back at its sentinel (the
/// touched lists are drained on entry and on exit), so one scratch can be
/// reused across warehouses of different sizes; the tables are resized on
/// entry.
#[derive(Debug, Default)]
pub struct RealizeScratch {
    residents_init: Vec<Vec<(usize, usize)>>,
    agents: Vec<AgentRt>,
    stock: wsp_model::LocationMatrix,
    occupant: Vec<u32>,
    claimed: Vec<bool>,
    vacated: Vec<bool>,
    occupied_cells: Vec<u32>,
    touched_cells: Vec<u32>,
    by_component: Vec<Vec<usize>>,
    moves: Vec<(usize, VertexId, bool)>,
    move_hopped: Vec<bool>,
    first_change: Vec<u32>,
}

impl RealizeScratch {
    /// A fresh, empty scratch (tables grow on first use).
    pub fn new() -> Self {
        RealizeScratch::default()
    }

    /// Drains any marks a previous call left and sizes every table.
    fn prepare(&mut self, n_vertices: usize, n_components: usize) {
        const NO_AGENT: u32 = wsp_model::NO_INDEX;
        for cell in self.occupied_cells.drain(..) {
            self.occupant[cell as usize] = NO_AGENT;
        }
        for cell in self.touched_cells.drain(..) {
            self.claimed[cell as usize] = false;
            self.vacated[cell as usize] = false;
        }
        self.occupant.resize(n_vertices, NO_AGENT);
        self.claimed.resize(n_vertices, false);
        self.vacated.resize(n_vertices, false);
        if self.residents_init.len() < n_components {
            self.residents_init.resize_with(n_components, Vec::new);
            self.by_component.resize_with(n_components, Vec::new);
        }
        for list in &mut self.residents_init[..n_components] {
            list.clear();
        }
        self.agents.clear();
        self.moves.clear();
        self.move_hopped.clear();
        self.first_change.clear();
    }
}

/// Realizes an agent cycle set into a discrete plan, stepping all
/// components for up to `t_limit` timesteps (stopping early once
/// `workload`, if given, is fully delivered).
///
/// # Errors
///
/// Returns [`RealizeError`] if the cycle set violates the Property 4.1
/// capacity precondition, references unknown components or missing arcs, or
/// is internally inconsistent.
pub fn realize(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    cycles: &AgentCycleSet,
    workload: Option<&Workload>,
    t_limit: usize,
) -> Result<RealizeOutcome, RealizeError> {
    realize_with_scratch(
        warehouse,
        traffic,
        cycles,
        workload,
        t_limit,
        &mut RealizeScratch::new(),
    )
}

/// [`realize`] reusing caller-owned [`RealizeScratch`] tables, for batch
/// evaluation loops that realize many cycle sets back to back.
///
/// # Errors
///
/// As for [`realize`].
pub fn realize_with_scratch(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    cycles: &AgentCycleSet,
    workload: Option<&Workload>,
    t_limit: usize,
    scratch: &mut RealizeScratch,
) -> Result<RealizeOutcome, RealizeError> {
    validate_cycles(traffic, cycles)?;

    let n_products = warehouse.catalog().len();
    scratch.prepare(warehouse.graph().vertex_count(), traffic.component_count());

    // ---- Initial placement: entry-side cells of each component. ----
    // Residents per component, as (cycle, step) pairs, in a dense table
    // indexed by component id (ids were validated above).
    for (ci, cycle) in cycles.cycles().iter().enumerate() {
        for (si, step) in cycle.steps().iter().enumerate() {
            scratch.residents_init[step.component.index()].push((ci, si));
        }
    }

    scratch.agents.reserve(cycles.total_agents());
    let mut plan = Plan::new();
    for comp in traffic.components() {
        let list = &scratch.residents_init[comp.id().index()];
        for (j, &(ci, si)) in list.iter().enumerate() {
            // Capacity was validated, so j < |Cᵢ| always holds.
            let pos = comp.path()[j];
            scratch.agents.push(AgentRt {
                cycle: ci,
                step: si,
                pos,
                path_off: j as u32,
                advance_t: -1,
                carry: None,
                stray: false,
            });
            plan.add_agent(AgentState::idle(pos));
        }
    }
    let n_agents = scratch.agents.len();

    // Remaining stock ledger for pickup accounting (`clone_from` reuses the
    // ledger's nodes across calls).
    let mut stock = std::mem::take(&mut scratch.stock);
    stock.clone_from(warehouse.location_matrix());
    let mut delivered = vec![0u64; n_products];
    let run = run_ticks(
        warehouse,
        traffic,
        cycles,
        workload,
        0,
        t_limit,
        &mut stock,
        &mut delivered,
        &mut plan,
        scratch,
    );
    scratch.stock = stock;

    Ok(RealizeOutcome {
        plan,
        delivered,
        timesteps: run.executed,
        agents: n_agents,
        pickup_misses: run.pickup_misses,
        missed_advances: run.missed_advances,
    })
}

/// The initial agent placement of [`realize`], as resumable snapshots:
/// every agent parked on the entry-side cells of its first component,
/// unburdened, free to hop in the first period. Seed state for a
/// [`realize_window`] rolling horizon.
///
/// # Errors
///
/// As for [`realize`] (the cycle set is validated the same way).
pub fn initial_snapshots(
    traffic: &TrafficSystem,
    cycles: &AgentCycleSet,
) -> Result<Vec<AgentSnapshot>, RealizeError> {
    validate_cycles(traffic, cycles)?;
    let mut residents: Vec<Vec<(usize, usize)>> = vec![Vec::new(); traffic.component_count()];
    for (ci, cycle) in cycles.cycles().iter().enumerate() {
        for (si, step) in cycle.steps().iter().enumerate() {
            residents[step.component.index()].push((ci, si));
        }
    }
    let mut snapshots = Vec::with_capacity(cycles.total_agents());
    for comp in traffic.components() {
        for (j, &(ci, si)) in residents[comp.id().index()].iter().enumerate() {
            snapshots.push(AgentSnapshot {
                cycle: ci,
                step: si,
                pos: comp.path()[j],
                carry: None,
                advance_t: -1,
                detached: false,
            });
        }
    }
    Ok(snapshots)
}

/// Realizes one rolling-horizon window of exactly `window` ticks starting
/// at absolute timestep `start_t` from per-agent [`AgentSnapshot`]s,
/// debiting executed pickups from the caller-owned `stock` ledger.
///
/// Windowing is exact: realizing `[0, a)` and then `[a, b)` from the
/// first window's [`final_states`](WindowOutcome::final_states) produces
/// the same trajectories as one `realize` call over `[0, b)` (the cycle
/// stepping depends only on the snapshot state, the ledger, and absolute
/// time). Snapshots whose position is off their component's path (agents
/// in repair transit) are realized as parked obstacles.
///
/// # Errors
///
/// As for [`realize`], plus [`RealizeError::BadSnapshot`] for snapshots
/// with out-of-range indices, duplicate positions, or a wrong team size.
pub fn realize_window(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    cycles: &AgentCycleSet,
    start_t: usize,
    window: usize,
    states: &[AgentSnapshot],
    stock: &mut wsp_model::LocationMatrix,
) -> Result<WindowOutcome, RealizeError> {
    realize_window_with_scratch(
        warehouse,
        traffic,
        cycles,
        start_t,
        window,
        states,
        stock,
        &mut RealizeScratch::new(),
    )
}

/// [`realize_window`] reusing caller-owned [`RealizeScratch`] tables, so a
/// steady-state replanning loop (one window after another, as `wsp-sim`
/// runs) allocates only the window plans it emits.
///
/// # Errors
///
/// As for [`realize_window`].
#[allow(clippy::too_many_arguments)]
pub fn realize_window_with_scratch(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    cycles: &AgentCycleSet,
    start_t: usize,
    window: usize,
    states: &[AgentSnapshot],
    stock: &mut wsp_model::LocationMatrix,
    scratch: &mut RealizeScratch,
) -> Result<WindowOutcome, RealizeError> {
    validate_cycles(traffic, cycles)?;
    validate_snapshots(warehouse, cycles, states)?;

    let n_products = warehouse.catalog().len();
    scratch.prepare(warehouse.graph().vertex_count(), traffic.component_count());

    let mut plan = Plan::new();
    for s in states {
        let comp = cycles.cycles()[s.cycle].steps()[s.step].component;
        // O(1) stray detection + path offset via the dense locate table
        // (components are disjoint, so owning component ⇒ on its path).
        let located = traffic.locate(s.pos).filter(|&(owner, _)| owner == comp);
        scratch.agents.push(AgentRt {
            cycle: s.cycle,
            step: s.step,
            pos: s.pos,
            path_off: located.map_or(0, |(_, off)| off),
            advance_t: s.advance_t,
            carry: s.carry,
            stray: s.detached || located.is_none(),
        });
        plan.add_agent(AgentState {
            at: s.pos,
            carry: s.carry.map_or(Carry::Empty, Carry::Product),
        });
    }

    let mut delivered = vec![0u64; n_products];
    let run = run_ticks(
        warehouse,
        traffic,
        cycles,
        None,
        start_t,
        window,
        stock,
        &mut delivered,
        &mut plan,
        scratch,
    );
    let final_states = scratch
        .agents
        .iter()
        .zip(states)
        .map(|(a, s)| AgentSnapshot {
            cycle: a.cycle,
            step: a.step,
            pos: a.pos,
            carry: a.carry,
            advance_t: a.advance_t,
            // Detachment is the caller's flag, not execution state:
            // carry it through unchanged.
            detached: s.detached,
        })
        .collect();

    Ok(WindowOutcome {
        plan,
        delivered,
        timesteps: run.executed,
        final_states,
        missed_advances: run.missed_advances,
        pickup_misses: run.pickup_misses,
        first_change: scratch.first_change.clone(),
    })
}

/// Snapshot well-formedness: right team size, in-range indices, distinct
/// positions (execution keeps positions distinct, so duplicates always
/// mean a caller bug rather than a legal configuration).
fn validate_snapshots(
    warehouse: &Warehouse,
    cycles: &AgentCycleSet,
    states: &[AgentSnapshot],
) -> Result<(), RealizeError> {
    if states.len() != cycles.total_agents() {
        return Err(RealizeError::BadSnapshot {
            agent: 0,
            detail: format!(
                "{} snapshots for a {}-agent cycle set",
                states.len(),
                cycles.total_agents()
            ),
        });
    }
    let n_vertices = warehouse.graph().vertex_count();
    let mut seen: Vec<(VertexId, usize)> = Vec::with_capacity(states.len());
    for (i, s) in states.iter().enumerate() {
        if s.cycle >= cycles.cycles().len() {
            return Err(RealizeError::BadSnapshot {
                agent: i,
                detail: format!("cycle index {} out of range", s.cycle),
            });
        }
        if s.step >= cycles.cycles()[s.cycle].steps().len() {
            return Err(RealizeError::BadSnapshot {
                agent: i,
                detail: format!("step index {} out of range", s.step),
            });
        }
        if s.pos.index() >= n_vertices {
            return Err(RealizeError::BadSnapshot {
                agent: i,
                detail: format!("position {} outside the floorplan graph", s.pos),
            });
        }
        seen.push((s.pos, i));
    }
    seen.sort_unstable_by_key(|&(v, _)| v);
    for w in seen.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(RealizeError::BadSnapshot {
                agent: w[1].1,
                detail: format!("agents {} and {} share {}", w[0].1, w[1].1, w[0].0),
            });
        }
    }
    Ok(())
}

/// Bookkeeping returned by the shared tick loop.
struct TickRun {
    executed: usize,
    pickup_misses: u64,
    missed_advances: u64,
}

/// The shared component-timestep loop: steps `scratch.agents` for up to
/// `ticks` ticks starting at absolute time `start_t` (stopping early once
/// `workload`, if given, is fully delivered), recording each tick's states
/// into `plan` and debiting executed pickups from `stock`.
///
/// The per-vertex tables (occupancy, claims, vacations) are dense for
/// O(1) indexing, but they are *cleared through occupancy-sized touched
/// lists* rather than per-step memsets: only the ≤ agents entries written
/// last step are reset, so the loop body is O(agents + components) per
/// step — independent of the vertex count, which keeps realization viable
/// on ~100k-vertex maps — and allocation-free after the first period.
#[allow(clippy::too_many_arguments)]
fn run_ticks(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    cycles: &AgentCycleSet,
    workload: Option<&Workload>,
    start_t: usize,
    ticks: usize,
    stock: &mut wsp_model::LocationMatrix,
    delivered: &mut [u64],
    plan: &mut Plan,
    scratch: &mut RealizeScratch,
) -> TickRun {
    const NO_AGENT: u32 = wsp_model::NO_INDEX;
    const NO_CHANGE: u32 = u32::MAX;
    let tc = cycles.cycle_time().max(1);
    let RealizeScratch {
        residents_init: _,
        agents,
        stock: _,
        occupant,
        claimed,
        vacated,
        occupied_cells,
        touched_cells,
        by_component,
        moves,
        move_hopped,
        first_change,
    } = scratch;
    let n_agents = agents.len();
    first_change.resize(n_agents, NO_CHANGE);
    first_change.fill(NO_CHANGE);

    let mut pickup_misses = 0u64;
    let mut missed_advances = 0u64;

    let step_component = |a: &AgentRt| cycles.cycles()[a.cycle].steps()[a.step].component;
    let step_action = |a: &AgentRt| cycles.cycles()[a.cycle].steps()[a.step].action;

    // Per-agent hop flag for this step (diagnostics).
    move_hopped.resize(n_agents, false);

    // One state per agent per tick lands in the plan; reserving up front keeps
    // thousands of small trajectory vectors from doubling mid-loop.
    plan.reserve_states(ticks);

    // Occupancy and per-component resident lists, built once and then
    // maintained incrementally by the move-apply pass. Within a component
    // agents share one path and move exit-first, so they can never overtake:
    // the descending-offset order is invariant across ticks, a hop removes
    // the front entry (the unique maximum offset) and enters the next list
    // at the back (offset 0, the unique minimum).
    for list in by_component.iter_mut() {
        list.clear();
    }
    for (idx, a) in agents.iter().enumerate() {
        occupant[a.pos.index()] = idx as u32;
        occupied_cells.push(a.pos.0);
        // Strays block their cell but never move or act.
        if !a.stray {
            by_component[step_component(a).index()].push(idx);
        }
    }
    for list in by_component.iter_mut() {
        // Exit-first order: agents closest to the exit move first so
        // followers can step into freshly vacated cells. Offsets are
        // distinct (one agent per cell), so this order is unique.
        list.sort_by_key(|&idx| std::cmp::Reverse(agents[idx].path_off));
    }

    let mut executed = 0usize;
    for local_t in 0..ticks {
        let t = start_t + local_t;
        if workload.is_some_and(|w| w.is_satisfied_by(delivered)) {
            break;
        }
        executed = local_t + 1;
        let period_start = ((t / tc) * tc) as i64;

        // Movement decisions.
        for cell in touched_cells.drain(..) {
            claimed[cell as usize] = false;
            vacated[cell as usize] = false;
        }
        moves.clear();

        for comp in traffic.components() {
            let list = &by_component[comp.id().index()];
            if list.is_empty() {
                continue;
            }
            for &idx in list.iter() {
                let a = &agents[idx];
                // Hop to the next component of the agent cycle: only from
                // the exit, at most once per cycle period (ADVANCE_T < ts),
                // and only into an entry cell that is free *at time t* and
                // unclaimed (conservative, order-independent).
                if a.path_off as usize + 1 == comp.len() && a.advance_t < period_start {
                    let cycle = &cycles.cycles()[a.cycle];
                    let next_step = (a.step + 1) % cycle.steps().len();
                    let next_comp = traffic.component(cycle.steps()[next_step].component);
                    let entry = next_comp.entry();
                    if !claimed[entry.index()] && occupant[entry.index()] == NO_AGENT {
                        claimed[entry.index()] = true;
                        vacated[a.pos.index()] = true;
                        touched_cells.push(entry.0);
                        touched_cells.push(a.pos.0);
                        moves.push((idx, entry, true));
                        continue;
                    }
                }
                // Internal move along the component path (O(1) via the
                // maintained offset).
                if let Some(&v) = comp.path().get(a.path_off as usize + 1) {
                    let blocked = claimed[v.index()]
                        || (occupant[v.index()] != NO_AGENT && !vacated[v.index()]);
                    if !blocked {
                        claimed[v.index()] = true;
                        vacated[a.pos.index()] = true;
                        touched_cells.push(v.0);
                        touched_cells.push(a.pos.0);
                        moves.push((idx, v, false));
                        continue;
                    }
                }
                // Stay put; the cell remains occupied for followers.
                claimed[a.pos.index()] = true;
                touched_cells.push(a.pos.0);
            }
        }

        // Apply actions (evaluated at the *time-t* position, recorded in
        // the t+1 state, matching feasibility condition (3)) and movement.
        move_hopped.fill(false);
        for &(idx, _, hopped) in moves.iter() {
            move_hopped[idx] = hopped;
        }

        for idx in 0..n_agents {
            if agents[idx].stray {
                continue;
            }
            let action = step_action(&agents[idx]);
            let pos_t = agents[idx].pos;
            match action {
                CycleAction::Pickup(p) => {
                    if agents[idx].carry.is_none() && stock.units_at(pos_t, p) > 0 {
                        stock.remove_units(pos_t, p, 1);
                        agents[idx].carry = Some(p);
                        first_change[idx] = first_change[idx].min(local_t as u32 + 1);
                    }
                }
                CycleAction::Dropoff(p) => {
                    if agents[idx].carry == Some(p) && warehouse.is_station(pos_t) {
                        agents[idx].carry = None;
                        if p.index() < delivered.len() {
                            delivered[p.index()] += 1;
                        }
                        first_change[idx] = first_change[idx].min(local_t as u32 + 1);
                    }
                }
                CycleAction::Travel => {}
            }
            // First-revolution diagnostics: hopping out of a pickup step
            // still empty-handed.
            if move_hopped[idx]
                && matches!(action, CycleAction::Pickup(_))
                && agents[idx].carry.is_none()
            {
                pickup_misses += 1;
            }
        }

        // Release every vacated cell before recording re-occupations so a
        // follower chain's old/new cells resolve in either order.
        for &(idx, _, _) in moves.iter() {
            occupant[agents[idx].pos.index()] = NO_AGENT;
        }
        for &(idx, v, hopped) in moves.iter() {
            first_change[idx] = first_change[idx].min(local_t as u32 + 1);
            if hopped {
                // The hopper holds the component's maximum offset, so it is
                // the front entry of its (descending-sorted) resident list.
                let old_comp = step_component(&agents[idx]).index();
                debug_assert_eq!(by_component[old_comp].first(), Some(&idx));
                by_component[old_comp].remove(0);
                let cycle = &cycles.cycles()[agents[idx].cycle];
                agents[idx].step = (agents[idx].step + 1) % cycle.steps().len();
                agents[idx].advance_t = (t + 1) as i64;
                agents[idx].path_off = 0;
                by_component[step_component(&agents[idx]).index()].push(idx);
            } else {
                agents[idx].path_off += 1;
            }
            agents[idx].pos = v;
            occupant[v.index()] = idx as u32;
        }

        // Period-boundary diagnostic: every agent should have advanced one
        // component during the period that just ended.
        if (t + 1) % tc == 0 {
            let this_period_start = period_start;
            for a in agents.iter() {
                if !a.stray && a.advance_t <= this_period_start && t as i64 >= tc as i64 {
                    missed_advances += 1;
                }
            }
        }

        // Record the t+1 states.
        for (idx, a) in agents.iter().enumerate() {
            let carry = match a.carry {
                None => Carry::Empty,
                Some(p) => Carry::Product(p),
            };
            plan.push_state(idx, AgentState { at: a.pos, carry });
        }
    }

    // Restore the clean-tables invariant for the next reuse of the scratch
    // (the loop leaves the final timestep's marks behind). Occupancy is
    // maintained incrementally, so the live cells are the agents' current
    // positions, not the entry-time `occupied_cells` snapshot.
    for a in agents.iter() {
        occupant[a.pos.index()] = NO_AGENT;
    }
    occupied_cells.clear();
    for cell in touched_cells.drain(..) {
        claimed[cell as usize] = false;
        vacated[cell as usize] = false;
    }

    TickRun {
        executed,
        pickup_misses,
        missed_advances,
    }
}

/// Validates the Property 4.1 preconditions and cycle well-formedness.
fn validate_cycles(traffic: &TrafficSystem, cycles: &AgentCycleSet) -> Result<(), RealizeError> {
    // An arc (a, b) exists iff b is among a's outlets (small slices).
    let has_arc =
        |from: ComponentId, to: ComponentId| -> bool { traffic.outlets(from).contains(&to) };
    for cycle in cycles.cycles() {
        if let Some(detail) = cycle.carry_inconsistency() {
            return Err(RealizeError::InconsistentCycle { detail });
        }
        let steps = cycle.steps();
        for (i, s) in steps.iter().enumerate() {
            if s.component.index() >= traffic.component_count() {
                return Err(RealizeError::UnknownComponent {
                    component: s.component,
                });
            }
            let next = steps[(i + 1) % steps.len()].component;
            if s.component == next && steps.len() == 1 && !has_arc(s.component, next) {
                return Err(RealizeError::MissingArc {
                    from: s.component,
                    to: next,
                });
            }
            if s.component != next && !has_arc(s.component, next) {
                return Err(RealizeError::MissingArc {
                    from: s.component,
                    to: next,
                });
            }
        }
    }
    for comp in traffic.components() {
        let occupancy = cycles.occupancy(comp.id());
        if occupancy > comp.capacity() {
            return Err(RealizeError::CapacityExceeded {
                component: comp.id(),
                occupancy,
                capacity: comp.capacity(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_flow::{synthesize_flow, AgentCycle, CycleStep, FlowSynthesisOptions};
    use wsp_model::{Direction, GridMap, PlanChecker, ProductCatalog};

    fn pipeline_fixture(
        stock: u64,
        demand: u64,
    ) -> (Warehouse, TrafficSystem, AgentCycleSet, Workload) {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let mut w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        w.set_catalog(ProductCatalog::with_len(1));
        let s = w.shelf_access()[0];
        w.stock(s, ProductId(0), stock).unwrap();
        let ts = wsp_traffic::design_perimeter_loop(&w, 3).unwrap();
        let workload = Workload::from_demands(vec![demand]);
        let flow =
            synthesize_flow(&w, &ts, &workload, 600, &FlowSynthesisOptions::default()).unwrap();
        let cycles = flow.decompose().unwrap();
        (w, ts, cycles, workload)
    }

    #[test]
    fn realized_plan_is_feasible_and_services_workload() {
        let (w, ts, cycles, workload) = pipeline_fixture(1000, 8);
        let out = realize(&w, &ts, &cycles, Some(&workload), 600).unwrap();
        assert!(out.delivered[0] >= 8);
        assert_eq!(out.missed_advances, 0, "Property 4.1 violated");
        let checker = PlanChecker::new(&w);
        let stats = checker.check_services(&out.plan, &workload).unwrap();
        assert_eq!(stats.delivered[0], out.delivered[0]);
        assert_eq!(stats.agents, out.agents);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_calls() {
        let (w, ts, cycles, workload) = pipeline_fixture(1000, 8);
        let fresh = realize(&w, &ts, &cycles, Some(&workload), 600).unwrap();
        let mut scratch = RealizeScratch::new();
        for _ in 0..3 {
            let again =
                realize_with_scratch(&w, &ts, &cycles, Some(&workload), 600, &mut scratch).unwrap();
            assert_eq!(again.delivered, fresh.delivered);
            assert_eq!(again.timesteps, fresh.timesteps);
            assert_eq!(again.agents, fresh.agents);
            assert_eq!(again.missed_advances, fresh.missed_advances);
            for a in 0..fresh.agents {
                assert_eq!(again.plan.trajectory(a), fresh.plan.trajectory(a));
            }
        }
        // The same scratch serves a different (larger) instance afterwards.
        let (w2, ts2, cycles2, workload2) = pipeline_fixture(1000, 3);
        let out2 =
            realize_with_scratch(&w2, &ts2, &cycles2, Some(&workload2), 600, &mut scratch).unwrap();
        assert!(out2.delivered[0] >= 3);
    }

    #[test]
    fn stops_early_once_serviced() {
        let (w, ts, cycles, workload) = pipeline_fixture(1000, 3);
        let out = realize(&w, &ts, &cycles, Some(&workload), 600).unwrap();
        assert!(out.timesteps < 600);
    }

    #[test]
    fn runs_full_horizon_without_workload() {
        let (w, ts, cycles, _) = pipeline_fixture(1000, 3);
        let out = realize(&w, &ts, &cycles, None, 97).unwrap();
        assert_eq!(out.timesteps, 97);
        assert_eq!(out.plan.horizon(), 97);
        // Still collision-free.
        let checker = PlanChecker::new(&w);
        checker.check(&out.plan).unwrap();
    }

    #[test]
    fn capacity_precondition_enforced() {
        let (w, ts, _, _) = pipeline_fixture(1000, 3);
        // Overload every component by stacking full-ring travel cycles one
        // past the smallest capacity.
        let ring: Vec<ComponentId> = {
            let mut ids = vec![ts.components()[0].id()];
            loop {
                let next = ts.outlets(*ids.last().unwrap())[0];
                if next == ids[0] {
                    break;
                }
                ids.push(next);
            }
            ids
        };
        let min_cap = ts.components().iter().map(|c| c.capacity()).min().unwrap();
        let make_cycle = || {
            AgentCycle::new(
                ring.iter()
                    .map(|&c| CycleStep {
                        component: c,
                        action: CycleAction::Travel,
                    })
                    .collect(),
            )
        };
        let cycles: Vec<AgentCycle> = (0..=min_cap).map(|_| make_cycle()).collect();
        let overloaded = AgentCycleSet::new(cycles, ts.cycle_time());
        let err = realize(&w, &ts, &overloaded, None, 10).unwrap_err();
        assert!(matches!(err, RealizeError::CapacityExceeded { .. }));
    }

    #[test]
    fn missing_arc_detected() {
        let (w, ts, _, _) = pipeline_fixture(1000, 3);
        // A 2-cycle between non-adjacent components (0 and 2 in a 3-ring).
        let c0 = ts.components()[0].id();
        let c2 = ts.outlets(ts.outlets(c0)[0])[0];
        assert!(!ts.outlets(c0).contains(&c2));
        let step = |c: ComponentId| CycleStep {
            component: c,
            action: CycleAction::Travel,
        };
        let bad = AgentCycleSet::new(
            vec![AgentCycle::new(vec![step(c0), step(c2)])],
            ts.cycle_time(),
        );
        let err = realize(&w, &ts, &bad, None, 10).unwrap_err();
        assert!(matches!(err, RealizeError::MissingArc { .. }));
    }

    #[test]
    fn inconsistent_cycle_detected() {
        let (w, ts, _, _) = pipeline_fixture(1000, 3);
        let c0 = ts.components()[0].id();
        let c1 = ts.outlets(c0)[0];
        let bad = AgentCycleSet::new(
            vec![AgentCycle::new(vec![
                CycleStep {
                    component: c0,
                    action: CycleAction::Dropoff(ProductId(0)),
                },
                CycleStep {
                    component: c1,
                    action: CycleAction::Travel,
                },
            ])],
            ts.cycle_time(),
        );
        let err = realize(&w, &ts, &bad, None, 10).unwrap_err();
        assert!(matches!(err, RealizeError::InconsistentCycle { .. }));
    }

    #[test]
    fn travel_only_cycles_circulate_without_deliveries() {
        let (w, ts, _, _) = pipeline_fixture(1000, 3);
        let ids: Vec<ComponentId> = {
            // Follow outlets around the ring.
            let mut ids = vec![ts.components()[0].id()];
            loop {
                let next = ts.outlets(*ids.last().unwrap())[0];
                if next == ids[0] {
                    break;
                }
                ids.push(next);
            }
            ids
        };
        let cycle = AgentCycle::new(
            ids.iter()
                .map(|&c| CycleStep {
                    component: c,
                    action: CycleAction::Travel,
                })
                .collect(),
        );
        let set = AgentCycleSet::new(vec![cycle], ts.cycle_time());
        let out = realize(&w, &ts, &set, None, 3 * ts.cycle_time()).unwrap();
        assert_eq!(out.delivered.iter().sum::<u64>(), 0);
        assert_eq!(out.missed_advances, 0);
        let checker = PlanChecker::new(&w);
        checker.check(&out.plan).unwrap();
    }

    #[test]
    fn windowed_realization_matches_one_shot() {
        let (w, ts, cycles, _) = pipeline_fixture(1000, 8);
        let full = realize(&w, &ts, &cycles, None, 60).unwrap();

        // The same 60 ticks as windows of 7 (uneven on purpose), resumed
        // from each window's final snapshots.
        let mut states = initial_snapshots(&ts, &cycles).unwrap();
        let mut stock = w.location_matrix().clone();
        let mut scratch = RealizeScratch::new();
        let mut t = 0usize;
        let mut delivered = vec![0u64; w.catalog().len()];
        let mut stitched: Vec<Vec<AgentState>> = (0..full.agents)
            .map(|a| vec![full.plan.state(a, 0).unwrap()])
            .collect();
        while t < 60 {
            let window = (60 - t).min(7);
            let out = realize_window_with_scratch(
                &w,
                &ts,
                &cycles,
                t,
                window,
                &states,
                &mut stock,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(out.timesteps, window);
            for (i, &d) in out.delivered.iter().enumerate() {
                delivered[i] += d;
            }
            for (a, traj) in stitched.iter_mut().enumerate() {
                for k in 1..=window {
                    traj.push(out.plan.state(a, k).unwrap());
                }
            }
            states = out.final_states;
            t += window;
        }
        assert_eq!(delivered, full.delivered);
        for (a, traj) in stitched.iter().enumerate() {
            assert_eq!(traj.as_slice(), full.plan.trajectory(a), "agent {a}");
        }
        // Stock ledgers agree: windowed picks debit the caller's ledger.
        for (v, p, units) in w.location_matrix().iter() {
            assert_eq!(
                stock.units_at(v, p),
                scratch_free_units(&w, &ts, &cycles, 60, v, p),
                "ledger diverged at {v}/{p} ({units} stocked)"
            );
        }
    }

    /// Remaining units per the one-shot realization (reference for the
    /// ledger comparison above).
    fn scratch_free_units(
        w: &Warehouse,
        ts: &TrafficSystem,
        cycles: &AgentCycleSet,
        t_limit: usize,
        v: VertexId,
        p: ProductId,
    ) -> u64 {
        // Re-run and count executed pickups at (v, p) from the plan.
        let full = realize(w, ts, cycles, None, t_limit).unwrap();
        let mut picked = 0u64;
        for a in 0..full.agents {
            let traj = full.plan.trajectory(a);
            for k in 1..traj.len() {
                if traj[k - 1].carry == Carry::Empty
                    && traj[k].carry == Carry::Product(p)
                    && traj[k - 1].at == v
                {
                    picked += 1;
                }
            }
        }
        w.location_matrix().units_at(v, p) - picked
    }

    #[test]
    fn first_change_names_the_next_scheduled_state_change() {
        let (w, ts, cycles, _) = pipeline_fixture(1000, 8);
        let states = initial_snapshots(&ts, &cycles).unwrap();
        let mut stock = w.location_matrix().clone();
        let out = realize_window(&w, &ts, &cycles, 0, 40, &states, &mut stock).unwrap();
        assert_eq!(out.first_change.len(), states.len());
        for a in 0..states.len() {
            let s0 = out.plan.state(a, 0).unwrap();
            let scan = (1..=40).find(|&k| out.plan.state(a, k).unwrap() != s0);
            let expect = scan.map_or(u32::MAX, |k| k as u32);
            assert_eq!(out.first_change[a], expect, "agent {a}");
        }
        // At least someone is scheduled to do something in 40 ticks.
        assert!(out.first_change.iter().any(|&k| k != u32::MAX));
    }

    #[test]
    fn stray_snapshots_park_as_obstacles() {
        let (w, ts, cycles, _) = pipeline_fixture(1000, 8);
        let mut states = initial_snapshots(&ts, &cycles).unwrap();
        // Move agent 0 off its component onto a free non-component cell if
        // one exists; otherwise onto another component's cell — either way
        // it is off *its* component's path.
        let comp = cycles.cycles()[states[0].cycle].steps()[states[0].step].component;
        let on_path = |v: VertexId| ts.component(comp).position(v).is_some();
        let taken: Vec<VertexId> = states.iter().map(|s| s.pos).collect();
        let stray_pos = w
            .graph()
            .vertices()
            .find(|&v| !on_path(v) && !taken.contains(&v))
            .expect("a free off-path cell exists");
        states[0].pos = stray_pos;
        let mut stock = w.location_matrix().clone();
        let out = realize_window(&w, &ts, &cycles, 0, 20, &states, &mut stock).unwrap();
        // The stray never moves and never carries.
        for k in 0..=20 {
            let s = out.plan.state(0, k).unwrap();
            assert_eq!(s.at, stray_pos);
            assert_eq!(s.carry, Carry::Empty);
        }
        assert_eq!(out.final_states[0].pos, stray_pos);
        // The emitted window is still collision-free.
        wsp_model::PlanChecker::new(&w).check(&out.plan).unwrap();
    }

    #[test]
    fn detached_snapshots_realize_as_a_constant_window() {
        let (w, ts, cycles, _) = pipeline_fixture(1000, 8);
        let mut states = initial_snapshots(&ts, &cycles).unwrap();
        for s in &mut states {
            s.detached = true;
        }
        let mut stock = w.location_matrix().clone();
        let before = stock.clone();
        let out = realize_window(&w, &ts, &cycles, 0, 24, &states, &mut stock).unwrap();
        // Every agent parks for the whole window (on-path positions and
        // all): no moves, no pickups, no first change ever scheduled.
        for (a, s0) in states.iter().enumerate() {
            for k in 0..=24 {
                let s = out.plan.state(a, k).unwrap();
                assert_eq!(s.at, s0.pos, "agent {a} moved at k={k}");
                assert_eq!(s.carry, Carry::Empty, "agent {a} acted at k={k}");
            }
            assert_eq!(out.first_change[a], u32::MAX, "agent {a}");
        }
        assert!(out.delivered.iter().all(|&d| d == 0));
        assert_eq!(stock, before, "detached agents must not touch stock");
        // Detachment survives the round-trip into final states.
        assert!(out.final_states.iter().all(|s| s.detached));
        wsp_model::PlanChecker::new(&w).check(&out.plan).unwrap();
    }

    #[test]
    fn bad_snapshots_are_rejected() {
        let (w, ts, cycles, _) = pipeline_fixture(1000, 8);
        let states = initial_snapshots(&ts, &cycles).unwrap();
        let mut stock = w.location_matrix().clone();

        let short = &states[..states.len() - 1];
        assert!(matches!(
            realize_window(&w, &ts, &cycles, 0, 5, short, &mut stock),
            Err(RealizeError::BadSnapshot { .. })
        ));

        let mut dup = states.clone();
        if dup.len() >= 2 {
            dup[1].pos = dup[0].pos;
            assert!(matches!(
                realize_window(&w, &ts, &cycles, 0, 5, &dup, &mut stock),
                Err(RealizeError::BadSnapshot { .. })
            ));
        }

        let mut oob = states.clone();
        oob[0].pos = VertexId(u32::MAX - 1);
        assert!(matches!(
            realize_window(&w, &ts, &cycles, 0, 5, &oob, &mut stock),
            Err(RealizeError::BadSnapshot { .. })
        ));
    }

    #[test]
    fn delivery_rate_matches_cycle_count_after_warmup() {
        let (w, ts, cycles, _) = pipeline_fixture(1000, 60);
        // Run with no early stop for several periods.
        let periods = 10;
        let out = realize(&w, &ts, &cycles, None, periods * ts.cycle_time()).unwrap();
        let per_period = cycles.deliveries_per_period();
        // After a one-revolution warmup, each period delivers `per_period`
        // units; allow the warmup to cost up to two revolutions' worth.
        let revolution_periods = cycles.cycles().iter().map(|c| c.len()).max().unwrap_or(1) as u64;
        let expected_min = per_period * (periods as u64).saturating_sub(2 * revolution_periods);
        assert!(
            out.delivered.iter().sum::<u64>() >= expected_min,
            "delivered {} < expected {expected_min}",
            out.delivered.iter().sum::<u64>()
        );
    }
}
