//! Realization of agent cycle sets into discrete, collision-free plans —
//! Algorithm 1 of the paper (§IV-C).
//!
//! Each timestep, every component moves the agents it contains toward its
//! exit; the agent at the exit hops to the entry of the next component of
//! its agent cycle once per cycle period (`t_c = 2m`, Property 4.1).
//! Pickups and drop-offs happen while an agent traverses its target
//! shelving row / station queue. The emitted [`wsp_model::Plan`] can be
//! checked independently with [`wsp_model::PlanChecker`]; realization never
//! produces vertex or edge collisions by construction, and the test suite
//! verifies this property on every realized plan.
//!
//! # Examples
//!
//! ```
//! use wsp_flow::{synthesize_flow, FlowSynthesisOptions};
//! use wsp_model::{Direction, GridMap, PlanChecker, ProductCatalog, ProductId, Warehouse, Workload};
//! use wsp_realize::realize;
//! use wsp_traffic::design_perimeter_loop;
//!
//! let grid = GridMap::from_ascii("...\n.#.\n.@.")?;
//! let mut warehouse =
//!     Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West])?;
//! warehouse.set_catalog(ProductCatalog::with_len(1));
//! let access = warehouse.shelf_access()[0];
//! warehouse.stock(access, ProductId(0), 1000)?;
//! let ts = design_perimeter_loop(&warehouse, 3)?;
//! let workload = Workload::from_demands(vec![5]);
//!
//! let flow = synthesize_flow(&warehouse, &ts, &workload, 600, &FlowSynthesisOptions::default())?;
//! let cycles = flow.decompose()?;
//! let outcome = realize(&warehouse, &ts, &cycles, Some(&workload), 600)?;
//!
//! // The realized plan is feasible and services the workload.
//! let checker = PlanChecker::new(&warehouse);
//! let stats = checker.check_services(&outcome.plan, &workload)?;
//! assert!(stats.delivered[0] >= 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod algorithm;
mod error;

pub use algorithm::{
    initial_snapshots, realize, realize_window, realize_window_with_scratch, realize_with_scratch,
    AgentSnapshot, RealizeOutcome, RealizeScratch, WindowOutcome,
};
pub use error::RealizeError;
