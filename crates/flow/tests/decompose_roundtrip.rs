//! Property-based round-trip tests for the §IV-E flow→cycle decomposition:
//! build a flow set from random well-formed agent cycles, decompose it,
//! and check that re-aggregating the decomposed cycles reproduces the
//! flow set's observable content: pickups, drop-offs, and per-arc totals.
//!
//! Exact per-commodity identity is deliberately *not* asserted: when loaded
//! paths of the same product overlap in opposite phase, the Euler walk may
//! re-carve them (e.g. into one double-delivery cycle plus a circulation).
//! Every carving delivers the same units at the same rates and realizes to
//! an equivalent plan, so the invariants below are the meaningful ones.

use proptest::prelude::*;
use wsp_flow::{AgentCycleSet, AgentFlowSet, Commodity, CycleAction};
use wsp_model::ProductId;
use wsp_traffic::ComponentId;

/// A randomly generated abstract agent cycle on a ring of `ring`
/// components. Mirroring the MixedKind rule, even-indexed components act
/// as shelving rows (pickups) and odd-indexed ones as station queues
/// (drop-offs), so no component ever sees both actions — the precondition
/// real validated traffic systems guarantee.
#[derive(Debug, Clone)]
struct RandomCycle {
    pick_choice: usize,
    drop_choice: usize,
    product: u32,
}

fn random_cycles() -> impl Strategy<Value = Vec<RandomCycle>> {
    let cycle =
        (0..64usize, 0..64usize, 0..3u32).prop_map(|(pick_choice, drop_choice, product)| {
            RandomCycle {
                pick_choice,
                drop_choice,
                product,
            }
        });
    proptest::collection::vec(cycle, 1..8)
}

/// Builds the flow set induced by the cycles (each cycle contributes one
/// unit of flow to every arc of the ring, loaded between its pickup and
/// drop-off components).
fn aggregate(ring: u32, cycles: &[RandomCycle]) -> AgentFlowSet {
    let n = ring as usize;
    let evens: Vec<usize> = (0..n).step_by(2).collect();
    let odds: Vec<usize> = (1..n).step_by(2).collect();
    let mut fs = AgentFlowSet::new(2 * n, 10);
    for c in cycles {
        let pick = evens[c.pick_choice % evens.len()];
        let drop = odds[c.drop_choice % odds.len()];
        let mut carry: Option<ProductId> = None;
        for off in 0..n {
            let pos = (pick + off) % n;
            let comp = ComponentId(pos as u32);
            let next = ComponentId(((pos + 1) % n) as u32);
            if pos == pick {
                fs.add_pickup(comp, ProductId(c.product), 1);
                carry = Some(ProductId(c.product));
            }
            if pos == drop {
                fs.add_dropoff(comp, ProductId(c.product), 1);
                carry = None;
            }
            let commodity = match carry {
                Some(p) => Commodity::Loaded(p),
                None => Commodity::Unloaded,
            };
            fs.add_edge_flow(comp, next, commodity, 1);
        }
    }
    fs
}

/// Re-aggregates a decomposed cycle set back into a flow set.
fn reaggregate(set: &AgentCycleSet, periods: u64) -> AgentFlowSet {
    let mut fs = AgentFlowSet::new(set.cycle_time(), periods);
    for cycle in set.cycles() {
        let steps = cycle.steps();
        // Determine carry state by walking from a pickup (if any).
        let anchor = steps
            .iter()
            .position(|s| matches!(s.action, CycleAction::Pickup(_)))
            .unwrap_or(0);
        let mut carry: Option<ProductId> = None;
        for k in 0..steps.len() {
            let idx = (anchor + k) % steps.len();
            let step = steps[idx];
            match step.action {
                CycleAction::Pickup(p) => {
                    fs.add_pickup(step.component, p, 1);
                    carry = Some(p);
                }
                CycleAction::Dropoff(p) => {
                    fs.add_dropoff(step.component, p, 1);
                    carry = None;
                }
                CycleAction::Travel => {}
            }
            let next = steps[(idx + 1) % steps.len()].component;
            let commodity = match carry {
                Some(p) => Commodity::Loaded(p),
                None => Commodity::Unloaded,
            };
            fs.add_edge_flow(step.component, next, commodity, 1);
        }
    }
    fs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decompose_then_reaggregate_is_identity(
        ring in 3u32..9,
        cycles in random_cycles(),
    ) {
        let flow = aggregate(ring, &cycles);
        let set = flow.decompose().expect("balanced by construction");

        // Structural invariants.
        prop_assert_eq!(set.total_agents() as u64, flow.total_edge_flow());
        prop_assert_eq!(set.deliveries_per_period(), flow.total_deliveries_per_period());
        for c in set.cycles() {
            prop_assert_eq!(c.carry_inconsistency(), None);
        }

        // Round trip of the observable content.
        let back = reaggregate(&set, flow.periods());
        let pickups: Vec<_> = flow.pickups().collect();
        let drops: Vec<_> = flow.dropoffs().collect();
        prop_assert_eq!(back.pickups().collect::<Vec<_>>(), pickups);
        prop_assert_eq!(back.dropoffs().collect::<Vec<_>>(), drops);
        // Per-arc totals (summed over commodities) are preserved.
        let totals = |fs: &AgentFlowSet| {
            let mut m = std::collections::BTreeMap::new();
            for (i, j, _, n) in fs.edge_flows() {
                *m.entry((i, j)).or_insert(0u64) += n;
            }
            m
        };
        prop_assert_eq!(totals(&back), totals(&flow));
        prop_assert_eq!(back.total_deliveries(), flow.total_deliveries());
    }

    #[test]
    fn occupancy_equals_entering_flow(
        ring in 3u32..9,
        cycles in random_cycles(),
    ) {
        let flow = aggregate(ring, &cycles);
        let set = flow.decompose().expect("balanced by construction");
        // The Property 4.1 quantity: occupancy of a component equals the
        // per-period flow entering it.
        for comp in 0..ring {
            let id = ComponentId(comp);
            prop_assert_eq!(set.occupancy(id) as u64, flow.entering_flow(id));
        }
    }
}
