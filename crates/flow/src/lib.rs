//! Agent-flow synthesis: compiling traffic-system and workload contracts,
//! solving them, and decomposing the resulting flow set into agent cycles
//! (§IV-B, §IV-D, §IV-E of the paper).
//!
//! Two interchangeable synthesis engines are provided:
//!
//! * [`FlowEngine::PaperIlp`] — the monolithic per-product encoding of
//!   §IV-D, with one flow variable `f_{i,j,k}` per traffic-system arc and
//!   product. Faithful to the paper; practical on small/medium instances.
//! * [`FlowEngine::LayeredIlp`] — an equivalent two-layer (loaded/unloaded)
//!   circulation encoding that is ~|ρ|× smaller (DESIGN.md §3.2 sketches
//!   the equivalence proof). This is the default engine and the one used
//!   for the paper-scale benchmarks.
//!
//! Both engines express their constraints as assume–guarantee contracts
//! ([`wsp_contracts`]), compose the component contracts into a
//! traffic-system contract, conjoin the workload contract, and hand the
//! consistency region to the ILP solver ([`wsp_lp`]) — exactly the Fig. 3
//! workflow with CHASE+Z3 replaced by this repository's own substrates.
//!
//! The synthesized [`AgentFlowSet`] is decomposed into an [`AgentCycleSet`]
//! via the *commodity-switching graph* (DESIGN.md §3.3), a constructive
//! strengthening of the paper's Properties 4.2/4.3.
//!
//! # Examples
//!
//! ```
//! use wsp_flow::{synthesize_flow, FlowSynthesisOptions};
//! use wsp_model::{Direction, GridMap, ProductCatalog, ProductId, Warehouse, Workload};
//! use wsp_traffic::design_perimeter_loop;
//!
//! let grid = GridMap::from_ascii("...\n.#.\n.@.")?;
//! let mut warehouse =
//!     Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West])?;
//! warehouse.set_catalog(ProductCatalog::with_len(1));
//! let access = warehouse.shelf_access()[0];
//! warehouse.stock(access, ProductId(0), 1000)?;
//! let ts = design_perimeter_loop(&warehouse, 3)?;
//!
//! let workload = Workload::from_demands(vec![10]);
//! let flow = synthesize_flow(&warehouse, &ts, &workload, 600, &FlowSynthesisOptions::default())?;
//! assert!(flow.total_deliveries_per_period() >= 1);
//! let cycles = flow.decompose()?;
//! assert!(!cycles.cycles().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod contracts;
mod cycles;
mod decompose;
mod error;
mod flowset;
mod layered;
mod paper;
mod relaxed;

pub use contracts::{component_contracts, workload_contract, FlowVars};
pub use cycles::{AgentCycle, AgentCycleSet, CycleAction, CycleStep};
pub use error::FlowError;
pub use flowset::{AgentFlowSet, Commodity};
pub use layered::{synthesize_layered, synthesize_layered_with_scratch};
pub use paper::{synthesize_paper, synthesize_paper_with_scratch};
pub use relaxed::{
    synthesize_flow_relaxed, synthesize_flow_relaxed_with_scratch, RelaxedFlowSummary,
};
// The solver scratch types are re-exported so downstream crates
// (`wsp-core`'s `Pipeline`, `wsp-explore`'s workers) can own one without
// depending on `wsp-lp` directly.
pub use wsp_lp::{IlpScratch, LpScratch};

use wsp_model::{Warehouse, Workload};
use wsp_traffic::TrafficSystem;

/// Which constraint encoding the synthesizer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowEngine {
    /// Monolithic per-product encoding, exactly §IV-D.
    PaperIlp,
    /// Equivalent two-layer circulation encoding (default; scales to the
    /// paper's largest instances).
    #[default]
    LayeredIlp,
}

/// Options for flow synthesis.
#[derive(Debug, Clone, Default)]
pub struct FlowSynthesisOptions {
    /// The encoding to use.
    pub engine: FlowEngine,
    /// ILP solver configuration (node/time limits, exact mode).
    pub ilp: wsp_lp::IlpOptions,
    /// If `true`, skip the total-flow minimization and accept the first
    /// feasible flow set, mirroring the paper's use of a satisfiability
    /// solver.
    pub feasibility_only: bool,
    /// Plan on at most this many cycle periods instead of the full
    /// `⌊T/t_c⌋`. Fewer periods demand a higher per-period delivery rate
    /// (more agents) but relax the per-period stock-rate bound
    /// `f_in ≤ UNITS_AT/q_c`; useful when stock is scarce relative to the
    /// horizon.
    pub max_periods: Option<u64>,
    /// Enforce the Property 4.1 entry-capacity assumption
    /// `Σ f ≤ ⌊|Cᵢ|/2⌋` (default `Some(true)` semantics via `new`).
    /// Disabling reproduces the paper's apparent solver configuration —
    /// its largest instances exceed the capacity bound (DESIGN.md §3.7) —
    /// but uncapacitated flow sets may not be realizable.
    pub skip_capacity: bool,
}

/// The effective number of cycle periods for a synthesis call.
pub(crate) fn effective_periods(
    t_limit: usize,
    cycle_time: usize,
    options: &FlowSynthesisOptions,
) -> u64 {
    let qc = (t_limit / cycle_time) as u64;
    match options.max_periods {
        Some(cap) => qc.min(cap.max(1)),
        None => qc,
    }
}

/// Synthesizes an agent flow set servicing `workload` within `t_limit`
/// timesteps on the given traffic system (Fig. 2, "synthesize agent flows").
///
/// # Errors
///
/// Returns [`FlowError::HorizonTooShort`] if `t_limit` admits no complete
/// cycle period, [`FlowError::Infeasible`] if the contracts are
/// unsatisfiable, and solver errors otherwise.
pub fn synthesize_flow(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
) -> Result<AgentFlowSet, FlowError> {
    synthesize_flow_with_scratch(
        warehouse,
        traffic,
        workload,
        t_limit,
        options,
        &mut IlpScratch::new(),
    )
}

/// [`synthesize_flow`] with a caller-owned solver scratch
/// ([`IlpScratch`]): back-to-back syntheses reuse the simplex basis
/// factors and pricing workspace, and candidates that share a constraint
/// skeleton warm-start from the previous converged basis. This is the
/// entry point `wsp_core::Pipeline` threads its per-pipeline scratch
/// through.
///
/// # Errors
///
/// Same classes as [`synthesize_flow`].
pub fn synthesize_flow_with_scratch(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
    scratch: &mut IlpScratch,
) -> Result<AgentFlowSet, FlowError> {
    match options.engine {
        FlowEngine::PaperIlp => {
            synthesize_paper_with_scratch(warehouse, traffic, workload, t_limit, options, scratch)
        }
        FlowEngine::LayeredIlp => {
            synthesize_layered_with_scratch(warehouse, traffic, workload, t_limit, options, scratch)
        }
    }
}
