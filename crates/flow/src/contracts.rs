//! Compilation of the paper's component and workload contracts (§IV-D,
//! Fig. 3) into [`wsp_contracts`] objects over flow variables.
//!
//! This module implements the *paper encoding*: one variable `f_{i,j,k}`
//! per traffic-system arc `(Cᵢ, Cⱼ)` and commodity `k ∈ {ρ₀} ∪ ρ⁺`, where
//! `ρ⁺` is the set of demanded products (flows of undemanded products are
//! zero in some optimal solution, so their variables are pruned).

use std::collections::BTreeMap;

use wsp_contracts::{AgContract, Predicate, VarRegistry};
use wsp_lp::{LinExpr, Rational, Relation, VarId};
use wsp_model::{ProductId, Warehouse, Workload};
use wsp_traffic::{ComponentId, ComponentKind, TrafficSystem};

use crate::flowset::Commodity;

/// The flow-variable namespace of the paper encoding: `f_{i,j,k}` per arc
/// and commodity, `f_in_{i,k}` per stocked (shelving row, product), and
/// `f_out_{i,k}` per (station queue, product).
#[derive(Debug, Clone)]
pub struct FlowVars {
    registry: VarRegistry,
    products: Vec<ProductId>,
    edge: BTreeMap<(ComponentId, ComponentId, Commodity), VarId>,
    fin: BTreeMap<(ComponentId, ProductId), VarId>,
    fout: BTreeMap<(ComponentId, ProductId), VarId>,
}

impl FlowVars {
    /// Allocates all flow variables for a traffic system and workload.
    pub fn build(warehouse: &Warehouse, traffic: &TrafficSystem, workload: &Workload) -> Self {
        let mut registry = VarRegistry::new();
        let products: Vec<ProductId> = workload.iter().map(|(p, _)| p).collect();

        let mut edge = BTreeMap::new();
        for (i, j) in traffic.arcs() {
            let v = registry.fresh_int(format!("f_{}_{}_u", i.0, j.0));
            edge.insert((i, j, Commodity::Unloaded), v);
            for &p in &products {
                let v = registry.fresh_int(format!("f_{}_{}_p{}", i.0, j.0, p.0));
                edge.insert((i, j, Commodity::Loaded(p)), v);
            }
        }

        let mut fin = BTreeMap::new();
        let mut fout = BTreeMap::new();
        for comp in traffic.components() {
            match comp.kind() {
                ComponentKind::ShelvingRow => {
                    for &p in &products {
                        if units_at(warehouse, traffic, comp.id(), p) > 0 {
                            let v = registry.fresh_int(format!("fin_{}_p{}", comp.id().0, p.0));
                            fin.insert((comp.id(), p), v);
                        }
                    }
                }
                ComponentKind::StationQueue => {
                    for &p in &products {
                        let v = registry.fresh_int(format!("fout_{}_p{}", comp.id().0, p.0));
                        fout.insert((comp.id(), p), v);
                    }
                }
                ComponentKind::Transport => {}
            }
        }

        FlowVars {
            registry,
            products,
            edge,
            fin,
            fout,
        }
    }

    /// The underlying variable registry (for building problems).
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// The demanded products the encoding ranges over.
    pub fn products(&self) -> &[ProductId] {
        &self.products
    }

    /// The variable of flow `f_{i,j,k}`, if allocated.
    pub fn edge(&self, from: ComponentId, to: ComponentId, k: Commodity) -> Option<VarId> {
        self.edge.get(&(from, to, k)).copied()
    }

    /// The variable of `f_in_{i,k}`, if allocated (stocked shelving rows
    /// only).
    pub fn fin(&self, component: ComponentId, product: ProductId) -> Option<VarId> {
        self.fin.get(&(component, product)).copied()
    }

    /// The variable of `f_out_{i,k}`, if allocated (station queues only).
    pub fn fout(&self, component: ComponentId, product: ProductId) -> Option<VarId> {
        self.fout.get(&(component, product)).copied()
    }

    /// The minimization objective: total edge flow (≈ team size).
    pub fn total_flow_objective(&self) -> LinExpr {
        let mut obj = LinExpr::new();
        for &v in self.edge.values() {
            obj.add_term(v, Rational::ONE);
        }
        obj
    }

    /// All edge-variable entries (used to read solutions back).
    pub fn edge_entries(
        &self,
    ) -> impl Iterator<Item = ((ComponentId, ComponentId, Commodity), VarId)> + '_ {
        self.edge.iter().map(|(&k, &v)| (k, v))
    }

    /// All `f_in` entries.
    pub fn fin_entries(&self) -> impl Iterator<Item = ((ComponentId, ProductId), VarId)> + '_ {
        self.fin.iter().map(|(&k, &v)| (k, v))
    }

    /// All `f_out` entries.
    pub fn fout_entries(&self) -> impl Iterator<Item = ((ComponentId, ProductId), VarId)> + '_ {
        self.fout.iter().map(|(&k, &v)| (k, v))
    }
}

/// Total units of `product` stocked at the shelf-access vertices of a
/// component — the paper's `UNITS_AT(Cᵢ, ρₖ)`.
pub(crate) fn units_at(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    component: ComponentId,
    product: ProductId,
) -> u64 {
    traffic
        .component(component)
        .path()
        .iter()
        .map(|&v| warehouse.location_matrix().units_at(v, product))
        .fold(0u64, u64::saturating_add)
}

/// Builds the component contract `C̃ᵢ` of every component (§IV-D): the
/// assumption is the entry-capacity bound; the guarantees are the transfer
/// bounds and flow-conservation laws.
pub fn component_contracts(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    vars: &FlowVars,
    periods: u64,
    enforce_capacity: bool,
) -> Vec<AgContract> {
    let mut contracts = Vec::with_capacity(traffic.component_count());
    let commodities: Vec<Commodity> = std::iter::once(Commodity::Unloaded)
        .chain(vars.products().iter().map(|&p| Commodity::Loaded(p)))
        .collect();

    for comp in traffic.components() {
        let id = comp.id();
        let name = format!("C{}", id.0);

        // Assumption: Σ_inlets Σ_k f_{j,i,k} <= ⌊|Cᵢ|/2⌋.
        let mut assume = Predicate::top();
        let mut entering = LinExpr::new();
        for &inl in traffic.inlets(id) {
            for &k in &commodities {
                if let Some(v) = vars.edge(inl, id, k) {
                    entering.add_term(v, Rational::ONE);
                }
            }
        }
        if enforce_capacity {
            assume.require(
                entering,
                Relation::Le,
                Rational::from(comp.capacity() as u64),
                format!("{name} entry capacity"),
            );
        }

        let mut guarantee = Predicate::top();
        for &p in vars.products() {
            // f_out_{i,k} <= Σ_inlets f_{j,i,k} (station queues only).
            if let Some(fout) = vars.fout(id, p) {
                let mut expr = LinExpr::var(fout);
                for &inl in traffic.inlets(id) {
                    if let Some(v) = vars.edge(inl, id, Commodity::Loaded(p)) {
                        expr.add_term(v, -Rational::ONE);
                    }
                }
                guarantee.require(
                    expr,
                    Relation::Le,
                    Rational::ZERO,
                    format!("{name} drop-off of {p} bounded by loaded inflow"),
                );
            }
            // f_in_{i,k} <= UNITS_AT(Cᵢ, ρₖ) / q_c (stocked rows only).
            if let Some(fin) = vars.fin(id, p) {
                guarantee.require(
                    LinExpr::var(fin),
                    Relation::Le,
                    Rational::from(units_at(warehouse, traffic, id, p))
                        / Rational::from(periods.max(1)),
                    format!("{name} pickup of {p} bounded by stock rate"),
                );
            }
            // Per-product conservation:
            // Σ_out f_{i,j,k} - Σ_in f_{j,i,k} - f_in + f_out = 0.
            let mut conserve = LinExpr::new();
            for &out in traffic.outlets(id) {
                if let Some(v) = vars.edge(id, out, Commodity::Loaded(p)) {
                    conserve.add_term(v, Rational::ONE);
                }
            }
            for &inl in traffic.inlets(id) {
                if let Some(v) = vars.edge(inl, id, Commodity::Loaded(p)) {
                    conserve.add_term(v, -Rational::ONE);
                }
            }
            if let Some(fin) = vars.fin(id, p) {
                conserve.add_term(fin, -Rational::ONE);
            }
            if let Some(fout) = vars.fout(id, p) {
                conserve.add_term(fout, Rational::ONE);
            }
            if !conserve.is_zero() {
                guarantee.require(
                    conserve,
                    Relation::Eq,
                    Rational::ZERO,
                    format!("{name} conservation of {p}"),
                );
            }
        }

        // Unloaded conservation:
        // Σ_out f_{i,j,0} - Σ_in f_{j,i,0} + Σ_k f_in - Σ_k f_out = 0.
        let mut conserve = LinExpr::new();
        for &out in traffic.outlets(id) {
            if let Some(v) = vars.edge(id, out, Commodity::Unloaded) {
                conserve.add_term(v, Rational::ONE);
            }
        }
        for &inl in traffic.inlets(id) {
            if let Some(v) = vars.edge(inl, id, Commodity::Unloaded) {
                conserve.add_term(v, -Rational::ONE);
            }
        }
        for &p in vars.products() {
            if let Some(fin) = vars.fin(id, p) {
                conserve.add_term(fin, Rational::ONE);
            }
            if let Some(fout) = vars.fout(id, p) {
                conserve.add_term(fout, -Rational::ONE);
            }
        }
        if !conserve.is_zero() {
            guarantee.require(
                conserve,
                Relation::Eq,
                Rational::ZERO,
                format!("{name} conservation of ρ0"),
            );
        }

        // Pickup coupling: Σ_k f_in_{i,k} <= Σ_inlets f_{j,i,0}.
        let fins: Vec<VarId> = vars
            .products()
            .iter()
            .filter_map(|&p| vars.fin(id, p))
            .collect();
        if !fins.is_empty() {
            let mut expr = LinExpr::new();
            for v in fins {
                expr.add_term(v, Rational::ONE);
            }
            for &inl in traffic.inlets(id) {
                if let Some(v) = vars.edge(inl, id, Commodity::Unloaded) {
                    expr.add_term(v, -Rational::ONE);
                }
            }
            guarantee.require(
                expr,
                Relation::Le,
                Rational::ZERO,
                format!("{name} pickups bounded by unloaded inflow"),
            );
        }

        contracts.push(AgContract::new(name, assume, guarantee));
    }
    contracts
}

/// Builds the workload contract `C̃_w` (§IV-D): no assumptions; guarantees
/// `Σᵢ f_out_{i,k} ≥ w_k / q_c` for every demanded product.
pub fn workload_contract(workload: &Workload, vars: &FlowVars, periods: u64) -> AgContract {
    let mut guarantee = Predicate::top();
    for (p, demand) in workload.iter() {
        let mut expr = LinExpr::new();
        for ((_, prod), var) in vars.fout_entries() {
            if prod == p {
                expr.add_term(var, Rational::ONE);
            }
        }
        // If no station queue can emit this product the expression is empty
        // and the constraint `0 >= w/q` correctly reads as infeasible.
        guarantee.require(
            expr,
            Relation::Ge,
            Rational::from(demand) / Rational::from(periods.max(1)),
            format!("workload demand for {p}"),
        );
    }
    AgContract::new("workload", Predicate::top(), guarantee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Direction, GridMap, ProductCatalog};
    use wsp_traffic::design_perimeter_loop;

    fn tiny() -> (Warehouse, TrafficSystem) {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let mut w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        w.set_catalog(ProductCatalog::with_len(2));
        let s = w.shelf_access()[0];
        w.stock(s, ProductId(0), 30).unwrap();
        let ts = design_perimeter_loop(&w, 3).unwrap();
        (w, ts)
    }

    #[test]
    fn vars_prune_to_demanded_products() {
        let (w, ts) = tiny();
        let demanded = Workload::from_demands(vec![5, 0]);
        let vars = FlowVars::build(&w, &ts, &demanded);
        assert_eq!(vars.products(), &[ProductId(0)]);
        // Unloaded + 1 product per arc.
        assert_eq!(vars.edge_entries().count(), ts.arc_count() * 2);
        // Only the stocked row gets an fin var.
        assert_eq!(vars.fin_entries().count(), 1);
        // Every queue gets an fout var for the demanded product.
        assert_eq!(vars.fout_entries().count(), ts.station_queues().count());
    }

    #[test]
    fn component_contracts_have_capacity_assumption() {
        let (w, ts) = tiny();
        let workload = Workload::from_demands(vec![5]);
        let vars = FlowVars::build(&w, &ts, &workload);
        let contracts = component_contracts(&w, &ts, &vars, 10, true);
        assert_eq!(contracts.len(), ts.component_count());
        for c in &contracts {
            assert_eq!(c.assumptions().len(), 1);
            assert!(!c.guarantees().is_empty());
            assert!(c.is_consistent(vars.registry()).unwrap());
        }
    }

    #[test]
    fn workload_contract_has_one_demand_per_product() {
        let (w, ts) = tiny();
        let workload = Workload::from_demands(vec![5, 7]);
        let vars = FlowVars::build(&w, &ts, &workload);
        let contract = workload_contract(&workload, &vars, 10);
        assert!(contract.assumptions().is_empty());
        assert_eq!(contract.guarantees().len(), 2);
    }

    #[test]
    fn units_at_sums_component_stock() {
        let (w, ts) = tiny();
        let row = ts
            .shelving_rows()
            .find(|&r| {
                ts.component(r)
                    .path()
                    .iter()
                    .any(|&v| w.location_matrix().has_product(v, ProductId(0)))
            })
            .expect("stocked row exists");
        assert_eq!(units_at(&w, &ts, row, ProductId(0)), 30);
        assert_eq!(units_at(&w, &ts, row, ProductId(1)), 0);
    }
}
