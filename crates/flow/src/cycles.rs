//! Agent cycles (§IV-B): closed walks of components, annotated with the
//! pickup/drop-off actions agents perform along them.

use std::fmt;

use wsp_model::ProductId;
use wsp_traffic::ComponentId;

/// What an agent does while resident in one component of its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleAction {
    /// Just pass through.
    #[default]
    Travel,
    /// Pick up one unit of the product (component is a shelving row).
    Pickup(ProductId),
    /// Drop off one unit of the product (component is a station queue).
    Dropoff(ProductId),
}

impl fmt::Display for CycleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleAction::Travel => f.write_str("travel"),
            CycleAction::Pickup(p) => write!(f, "pick {p}"),
            CycleAction::Dropoff(p) => write!(f, "drop {p}"),
        }
    }
}

/// One stop of an agent cycle: a component and the action performed there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleStep {
    /// The component visited.
    pub component: ComponentId,
    /// The action performed while resident.
    pub action: CycleAction,
}

/// An agent cycle: a closed walk of `b` components staffed by `b` agents
/// (§IV-B). Every cycle period the whole ring advances one component, so
/// each pickup step injects one unit per period and each drop-off step
/// delivers one unit per period.
///
/// The paper's cycles carry exactly one product between one target shelving
/// row and one target station queue; cycles produced by flow decomposition
/// may carry several pickup/drop-off pairs (a strict generalization the
/// realizer supports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentCycle {
    steps: Vec<CycleStep>,
}

impl AgentCycle {
    /// Creates a cycle from its steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(steps: Vec<CycleStep>) -> Self {
        assert!(!steps.is_empty(), "agent cycle must visit >= 1 component");
        AgentCycle { steps }
    }

    /// The steps, in traversal order.
    pub fn steps(&self) -> &[CycleStep] {
        &self.steps
    }

    /// Number of components (= number of agents) in the cycle, the paper's
    /// `b`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Cycles are never empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Units delivered per cycle period (number of drop-off steps).
    pub fn deliveries_per_period(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| matches!(s.action, CycleAction::Dropoff(_)))
            .count() as u64
    }

    /// The products this cycle delivers, with multiplicity.
    pub fn delivered_products(&self) -> Vec<ProductId> {
        self.steps
            .iter()
            .filter_map(|s| match s.action {
                CycleAction::Dropoff(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// Checks carry consistency: walking the closed cycle, pickups happen
    /// only when unburdened, drop-offs match the carried product, and the
    /// carry state closes (returns to its starting value).
    ///
    /// Returns a description of the first inconsistency, or `None` if the
    /// cycle is well-formed.
    pub fn carry_inconsistency(&self) -> Option<String> {
        // Determine the starting carry: if the cycle has any action, the
        // state right before a pickup must be empty. Walk twice: first to
        // find an anchor, then to verify.
        let anchor = self
            .steps
            .iter()
            .position(|s| matches!(s.action, CycleAction::Pickup(_)));
        let Some(start) = anchor else {
            // No pickups: the cycle must have no drop-offs either.
            if let Some(bad) = self
                .steps
                .iter()
                .find(|s| matches!(s.action, CycleAction::Dropoff(_)))
            {
                return Some(format!(
                    "cycle drops {} at {} but never picks anything up",
                    bad.action, bad.component
                ));
            }
            return None;
        };
        // Start immediately *before* the anchor pickup, carrying nothing.
        let mut carry: Option<ProductId> = None;
        for k in 0..self.steps.len() {
            let step = &self.steps[(start + k) % self.steps.len()];
            match step.action {
                CycleAction::Travel => {}
                CycleAction::Pickup(p) => {
                    if let Some(held) = carry {
                        return Some(format!(
                            "cycle picks {p} at {} while already carrying {held}",
                            step.component
                        ));
                    }
                    carry = Some(p);
                }
                CycleAction::Dropoff(p) => match carry {
                    Some(held) if held == p => carry = None,
                    Some(held) => {
                        return Some(format!(
                            "cycle drops {p} at {} while carrying {held}",
                            step.component
                        ))
                    }
                    None => {
                        return Some(format!(
                            "cycle drops {p} at {} while carrying nothing",
                            step.component
                        ))
                    }
                },
            }
        }
        if carry.is_some() {
            return Some("cycle ends a full revolution still carrying a product".into());
        }
        None
    }
}

impl fmt::Display for AgentCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle[")?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            match s.action {
                CycleAction::Travel => write!(f, "{}", s.component)?,
                a => write!(f, "{}({a})", s.component)?,
            }
        }
        write!(f, "]")
    }
}

/// A set of agent cycles sharing one cycle time `t_c` — the high-level plan
/// the realizer turns into discrete agent motion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentCycleSet {
    cycles: Vec<AgentCycle>,
    cycle_time: usize,
}

impl AgentCycleSet {
    /// Creates a cycle set with the given shared cycle time.
    pub fn new(cycles: Vec<AgentCycle>, cycle_time: usize) -> Self {
        AgentCycleSet { cycles, cycle_time }
    }

    /// The cycles.
    pub fn cycles(&self) -> &[AgentCycle] {
        &self.cycles
    }

    /// The shared cycle time `t_c`.
    pub fn cycle_time(&self) -> usize {
        self.cycle_time
    }

    /// Total agents across all cycles (`Σ b` — one agent per cycle step).
    pub fn total_agents(&self) -> usize {
        self.cycles.iter().map(AgentCycle::len).sum()
    }

    /// Units delivered per cycle period across all cycles.
    pub fn deliveries_per_period(&self) -> u64 {
        self.cycles
            .iter()
            .map(AgentCycle::deliveries_per_period)
            .sum()
    }

    /// How many times `component` appears across all cycles — the quantity
    /// bounded by `⌊|Cᵢ|/2⌋` in Property 4.1.
    pub fn occupancy(&self, component: ComponentId) -> usize {
        self.cycles
            .iter()
            .flat_map(|c| c.steps())
            .filter(|s| s.component == component)
            .count()
    }
}

impl fmt::Display for AgentCycleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} agents, {} deliveries/period (t_c = {})",
            self.cycles.len(),
            self.total_agents(),
            self.deliveries_per_period(),
            self.cycle_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(c: u32, action: CycleAction) -> CycleStep {
        CycleStep {
            component: ComponentId(c),
            action,
        }
    }

    #[test]
    fn well_formed_cycle_passes() {
        let c = AgentCycle::new(vec![
            step(0, CycleAction::Pickup(ProductId(0))),
            step(1, CycleAction::Travel),
            step(2, CycleAction::Dropoff(ProductId(0))),
            step(3, CycleAction::Travel),
        ]);
        assert_eq!(c.carry_inconsistency(), None);
        assert_eq!(c.len(), 4);
        assert_eq!(c.deliveries_per_period(), 1);
        assert_eq!(c.delivered_products(), vec![ProductId(0)]);
    }

    #[test]
    fn multi_product_cycle_passes() {
        let c = AgentCycle::new(vec![
            step(0, CycleAction::Pickup(ProductId(0))),
            step(1, CycleAction::Dropoff(ProductId(0))),
            step(2, CycleAction::Pickup(ProductId(1))),
            step(3, CycleAction::Dropoff(ProductId(1))),
        ]);
        assert_eq!(c.carry_inconsistency(), None);
        assert_eq!(c.deliveries_per_period(), 2);
    }

    #[test]
    fn double_pickup_detected() {
        let c = AgentCycle::new(vec![
            step(0, CycleAction::Pickup(ProductId(0))),
            step(1, CycleAction::Pickup(ProductId(1))),
            step(2, CycleAction::Dropoff(ProductId(0))),
            step(3, CycleAction::Dropoff(ProductId(1))),
        ]);
        assert!(c.carry_inconsistency().is_some());
    }

    #[test]
    fn wrong_product_dropoff_detected() {
        let c = AgentCycle::new(vec![
            step(0, CycleAction::Pickup(ProductId(0))),
            step(1, CycleAction::Dropoff(ProductId(1))),
        ]);
        assert!(c.carry_inconsistency().is_some());
    }

    #[test]
    fn dropoff_without_pickup_detected() {
        let c = AgentCycle::new(vec![
            step(0, CycleAction::Travel),
            step(1, CycleAction::Dropoff(ProductId(0))),
        ]);
        assert!(c.carry_inconsistency().is_some());
    }

    #[test]
    fn travel_only_cycle_is_consistent() {
        let c = AgentCycle::new(vec![
            step(0, CycleAction::Travel),
            step(1, CycleAction::Travel),
        ]);
        assert_eq!(c.carry_inconsistency(), None);
        assert_eq!(c.deliveries_per_period(), 0);
    }

    #[test]
    fn unclosed_carry_detected() {
        let c = AgentCycle::new(vec![
            step(0, CycleAction::Pickup(ProductId(0))),
            step(1, CycleAction::Travel),
        ]);
        assert!(c.carry_inconsistency().is_some());
    }

    #[test]
    #[should_panic(expected = "must visit")]
    fn empty_cycle_panics() {
        let _ = AgentCycle::new(Vec::new());
    }

    #[test]
    fn cycle_set_aggregates() {
        let set = AgentCycleSet::new(
            vec![
                AgentCycle::new(vec![
                    step(0, CycleAction::Pickup(ProductId(0))),
                    step(1, CycleAction::Dropoff(ProductId(0))),
                ]),
                AgentCycle::new(vec![
                    step(1, CycleAction::Travel),
                    step(2, CycleAction::Travel),
                    step(3, CycleAction::Travel),
                ]),
            ],
            12,
        );
        assert_eq!(set.total_agents(), 5);
        assert_eq!(set.deliveries_per_period(), 1);
        assert_eq!(set.occupancy(ComponentId(1)), 2);
        assert_eq!(set.cycle_time(), 12);
        assert!(set.to_string().contains("2 cycles"));
    }
}
