//! Real-valued flow synthesis: the paper's exact solver configuration.
//!
//! §IV-D's closing paragraph states the contracts are compiled to "a
//! formula in propositional logic augmented with arithmetic constraints
//! over the *reals*" and solved with Z3 — i.e. the published Table I
//! runtimes are for real-valued agent flows. (Real-valued flows also
//! explain the feasibility of the Fulfillment 2 instances, whose integer
//! versions are provably over the single station bay's per-period
//! throughput; see DESIGN.md.) This module reproduces that configuration:
//! the same contract systems with continuous variables, solved by the LP
//! kernel.
//!
//! Real-valued flow sets cannot be decomposed into discrete agent cycles;
//! use the default integer mode for end-to-end planning.

use wsp_contracts::{AgContract, Predicate, VarRegistry};
use wsp_lp::{
    solve_lp_with_scratch, BoundOverrides, LinExpr, LpOutcome, LpScratch, Rational, Relation,
    SimplexOptions,
};
use wsp_model::{Warehouse, Workload};
use wsp_traffic::TrafficSystem;

use crate::{FlowEngine, FlowError, FlowSynthesisOptions};

/// Summary of a relaxed (real-valued) synthesis run.
#[derive(Debug, Clone)]
pub struct RelaxedFlowSummary {
    /// Minimized total edge flow (≈ fractional team size per period).
    pub objective: f64,
    /// Cycle time `t_c` used.
    pub cycle_time: usize,
    /// Cycle periods `q_c` used.
    pub periods: u64,
    /// Decision variables in the encoding.
    pub variables: usize,
    /// Constraints in the encoding.
    pub constraints: usize,
}

/// Synthesizes a real-valued agent flow set (the paper's solver setup) and
/// reports the optimum plus encoding statistics.
///
/// # Errors
///
/// Same classes as [`synthesize_flow`](crate::synthesize_flow).
pub fn synthesize_flow_relaxed(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
) -> Result<RelaxedFlowSummary, FlowError> {
    synthesize_flow_relaxed_with_scratch(
        warehouse,
        traffic,
        workload,
        t_limit,
        options,
        &mut LpScratch::new(),
    )
}

/// [`synthesize_flow_relaxed`] with a caller-owned LP scratch, so
/// back-to-back relaxed solves reuse the simplex workspace.
///
/// # Errors
///
/// Same classes as [`synthesize_flow`](crate::synthesize_flow).
pub fn synthesize_flow_relaxed_with_scratch(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
    scratch: &mut LpScratch,
) -> Result<RelaxedFlowSummary, FlowError> {
    let cycle_time = traffic.cycle_time();
    if cycle_time == 0 || t_limit < cycle_time {
        return Err(FlowError::HorizonTooShort {
            t_limit,
            cycle_time,
        });
    }
    let periods = crate::effective_periods(t_limit, cycle_time, options);

    let (registry, contract, objective) = match options.engine {
        FlowEngine::LayeredIlp => crate::layered::relaxed_system(
            warehouse,
            traffic,
            workload,
            periods,
            !options.skip_capacity,
        ),
        FlowEngine::PaperIlp => paper_relaxed_parts(
            warehouse,
            traffic,
            workload,
            periods,
            !options.skip_capacity,
        ),
    };
    let problem = contract.synthesis_problem(&registry, objective);
    let (variables, constraints) = (problem.var_count(), problem.constraint_count());

    match solve_lp_with_scratch::<f64>(
        &problem,
        &BoundOverrides::none(),
        &SimplexOptions::default(),
        scratch,
    )? {
        LpOutcome::Optimal(sol) => Ok(RelaxedFlowSummary {
            objective: sol.objective,
            cycle_time,
            periods,
            variables,
            constraints,
        }),
        LpOutcome::Infeasible => Err(FlowError::Infeasible {
            detail: format!(
                "relaxed encoding: {} demanded units within {} periods",
                workload.total_units(),
                periods
            ),
        }),
        LpOutcome::Unbounded => Err(FlowError::Infeasible {
            detail: "unbounded relaxation (encoder bug)".into(),
        }),
    }
}

/// Builds the paper (per-product) encoding with continuous variables.
pub(crate) fn paper_relaxed_parts(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    periods: u64,
    enforce_capacity: bool,
) -> (VarRegistry, AgContract, LinExpr) {
    // Reuse the integer builder, then rebuild a continuous registry with
    // the same layout: simplest is to build contracts over a registry whose
    // variables are continuous. FlowVars always allocates integers, so we
    // lower them here by rebuilding the registry var-for-var.
    let vars = crate::contracts::FlowVars::build(warehouse, traffic, workload);
    let components =
        crate::contracts::component_contracts(warehouse, traffic, &vars, periods, enforce_capacity);
    let system = AgContract::compose_all("traffic-system", components.iter());
    let full = system.conjoin(&crate::contracts::workload_contract(
        workload, &vars, periods,
    ));
    let relaxed_registry = relax_registry(vars.registry());
    (relaxed_registry, full, vars.total_flow_objective())
}

/// Copies a registry with every variable made continuous (the relaxation).
pub(crate) fn relax_registry(registry: &VarRegistry) -> VarRegistry {
    let mut out = VarRegistry::new();
    for i in 0..registry.len() {
        let name = registry.name(wsp_lp::VarId(i as u32)).to_string();
        out.fresh(name);
    }
    out
}

/// Keeps the unused-predicate import honest for rustdoc links.
#[allow(unused)]
fn _doc(_: &Predicate, _: Rational, _: Relation) {}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Direction, GridMap, ProductCatalog, ProductId};
    use wsp_traffic::design_perimeter_loop;

    fn tiny() -> (Warehouse, TrafficSystem) {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let mut w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        w.set_catalog(ProductCatalog::with_len(1));
        let s = w.shelf_access()[0];
        w.stock(s, ProductId(0), 1000).unwrap();
        let ts = design_perimeter_loop(&w, 3).unwrap();
        (w, ts)
    }

    #[test]
    fn relaxed_at_most_integer_objective() {
        let (w, ts) = tiny();
        let workload = Workload::from_demands(vec![10]);
        let opts = FlowSynthesisOptions::default();
        let relaxed = synthesize_flow_relaxed(&w, &ts, &workload, 600, &opts).unwrap();
        let integer = crate::synthesize_flow(&w, &ts, &workload, 600, &opts).unwrap();
        assert!(
            relaxed.objective <= integer.total_edge_flow() as f64 + 1e-6,
            "LP relaxation must lower-bound the ILP"
        );
        assert!(relaxed.objective > 0.0);
    }

    #[test]
    fn relaxed_paper_engine_agrees_with_layered() {
        let (w, ts) = tiny();
        let workload = Workload::from_demands(vec![10]);
        let layered =
            synthesize_flow_relaxed(&w, &ts, &workload, 600, &FlowSynthesisOptions::default())
                .unwrap();
        let paper = synthesize_flow_relaxed(
            &w,
            &ts,
            &workload,
            600,
            &FlowSynthesisOptions {
                engine: FlowEngine::PaperIlp,
                ..FlowSynthesisOptions::default()
            },
        )
        .unwrap();
        assert!(
            (layered.objective - paper.objective).abs() < 1e-6,
            "equivalent encodings: {} vs {}",
            layered.objective,
            paper.objective
        );
        // The layered encoding is smaller.
        assert!(layered.variables <= paper.variables);
    }

    #[test]
    fn relaxed_infeasible_detected() {
        let (w, ts) = tiny();
        // Demand far beyond stock rate.
        let workload = Workload::from_demands(vec![1_000_000]);
        let err =
            synthesize_flow_relaxed(&w, &ts, &workload, 600, &FlowSynthesisOptions::default())
                .unwrap_err();
        assert!(matches!(err, FlowError::Infeasible { .. }));
    }
}
