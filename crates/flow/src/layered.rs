//! The two-layer (loaded/unloaded) circulation engine — the default
//! synthesis path, provably workload-equivalent to the paper encoding with
//! ~|ρ|× fewer variables (DESIGN.md §3.2).
//!
//! Key observation: after pickup, product identity never constrains
//! routing — any station accepts any product and entry capacities count
//! agents, not products. The encoding therefore tracks one *loaded* flow
//! `L_{i,j}` and one *unloaded* flow `U_{i,j}` per arc, plus per-product
//! pickup rates `P_{i,k}` and per-queue drop-off totals `D_i`. A solution
//! is decoded back to per-product flows `f_{i,j,k}` by walking loaded paths
//! from each pickup and labelling them with the picked product.

use std::collections::BTreeMap;

use wsp_contracts::{AgContract, Predicate, VarRegistry};
use wsp_lp::{solve_ilp_with_scratch, IlpOutcome, IlpScratch, LinExpr, Rational, Relation, VarId};
use wsp_model::{ProductId, Warehouse, Workload};
use wsp_traffic::{ComponentId, ComponentKind, TrafficSystem};

use crate::contracts::units_at;
use crate::flowset::{AgentFlowSet, Commodity};
use crate::{FlowError, FlowSynthesisOptions};

struct LayeredVars {
    registry: VarRegistry,
    loaded: BTreeMap<(ComponentId, ComponentId), VarId>,
    unloaded: BTreeMap<(ComponentId, ComponentId), VarId>,
    pickups: BTreeMap<(ComponentId, ProductId), VarId>,
    dropoffs: BTreeMap<ComponentId, VarId>,
}

fn build_vars(warehouse: &Warehouse, traffic: &TrafficSystem, workload: &Workload) -> LayeredVars {
    let mut registry = VarRegistry::new();
    let mut loaded = BTreeMap::new();
    let mut unloaded = BTreeMap::new();
    for (i, j) in traffic.arcs() {
        loaded.insert((i, j), registry.fresh_int(format!("L_{}_{}", i.0, j.0)));
        unloaded.insert((i, j), registry.fresh_int(format!("U_{}_{}", i.0, j.0)));
    }
    let mut pickups = BTreeMap::new();
    let mut dropoffs = BTreeMap::new();
    for comp in traffic.components() {
        match comp.kind() {
            ComponentKind::ShelvingRow => {
                for (p, _) in workload.iter() {
                    if units_at(warehouse, traffic, comp.id(), p) > 0 {
                        pickups.insert(
                            (comp.id(), p),
                            registry.fresh_int(format!("P_{}_p{}", comp.id().0, p.0)),
                        );
                    }
                }
            }
            ComponentKind::StationQueue => {
                dropoffs.insert(comp.id(), registry.fresh_int(format!("D_{}", comp.id().0)));
            }
            ComponentKind::Transport => {}
        }
    }
    LayeredVars {
        registry,
        loaded,
        unloaded,
        pickups,
        dropoffs,
    }
}

fn layered_component_contracts(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    vars: &LayeredVars,
    periods: u64,
    enforce_capacity: bool,
) -> Vec<AgContract> {
    let mut contracts = Vec::with_capacity(traffic.component_count());
    for comp in traffic.components() {
        let id = comp.id();
        let name = format!("C{}", id.0);

        // Assumption: entry capacity over both layers.
        let mut assume = Predicate::top();
        let mut entering = LinExpr::new();
        for &inl in traffic.inlets(id) {
            if let Some(&v) = vars.loaded.get(&(inl, id)) {
                entering.add_term(v, Rational::ONE);
            }
            if let Some(&v) = vars.unloaded.get(&(inl, id)) {
                entering.add_term(v, Rational::ONE);
            }
        }
        if enforce_capacity {
            assume.require(
                entering,
                Relation::Le,
                Rational::from(comp.capacity() as u64),
                format!("{name} entry capacity"),
            );
        }

        let mut guarantee = Predicate::top();
        let comp_pickups: Vec<((ComponentId, ProductId), VarId)> = vars
            .pickups
            .iter()
            .filter(|(&(c, _), _)| c == id)
            .map(|(&k, &v)| (k, v))
            .collect();

        // Loaded conservation: Σ_out L - Σ_in L - Σ_k P + D = 0.
        let mut loaded_cons = LinExpr::new();
        for &out in traffic.outlets(id) {
            if let Some(&v) = vars.loaded.get(&(id, out)) {
                loaded_cons.add_term(v, Rational::ONE);
            }
        }
        for &inl in traffic.inlets(id) {
            if let Some(&v) = vars.loaded.get(&(inl, id)) {
                loaded_cons.add_term(v, -Rational::ONE);
            }
        }
        for &(_, v) in &comp_pickups {
            loaded_cons.add_term(v, -Rational::ONE);
        }
        if let Some(&d) = vars.dropoffs.get(&id) {
            loaded_cons.add_term(d, Rational::ONE);
        }
        guarantee.require(
            loaded_cons,
            Relation::Eq,
            Rational::ZERO,
            format!("{name} loaded conservation"),
        );

        // Unloaded conservation: Σ_out U - Σ_in U + Σ_k P - D = 0.
        let mut unloaded_cons = LinExpr::new();
        for &out in traffic.outlets(id) {
            if let Some(&v) = vars.unloaded.get(&(id, out)) {
                unloaded_cons.add_term(v, Rational::ONE);
            }
        }
        for &inl in traffic.inlets(id) {
            if let Some(&v) = vars.unloaded.get(&(inl, id)) {
                unloaded_cons.add_term(v, -Rational::ONE);
            }
        }
        for &(_, v) in &comp_pickups {
            unloaded_cons.add_term(v, Rational::ONE);
        }
        if let Some(&d) = vars.dropoffs.get(&id) {
            unloaded_cons.add_term(d, -Rational::ONE);
        }
        guarantee.require(
            unloaded_cons,
            Relation::Eq,
            Rational::ZERO,
            format!("{name} unloaded conservation"),
        );

        // Pickup stock-rate bounds and coupling to unloaded inflow.
        for &((_, p), v) in &comp_pickups {
            guarantee.require(
                LinExpr::var(v),
                Relation::Le,
                Rational::from(units_at(warehouse, traffic, id, p))
                    / Rational::from(periods.max(1)),
                format!("{name} pickup of {p} bounded by stock rate"),
            );
        }
        if !comp_pickups.is_empty() {
            let mut coupling = LinExpr::new();
            for &(_, v) in &comp_pickups {
                coupling.add_term(v, Rational::ONE);
            }
            for &inl in traffic.inlets(id) {
                if let Some(&v) = vars.unloaded.get(&(inl, id)) {
                    coupling.add_term(v, -Rational::ONE);
                }
            }
            guarantee.require(
                coupling,
                Relation::Le,
                Rational::ZERO,
                format!("{name} pickups bounded by unloaded inflow"),
            );
        }

        contracts.push(AgContract::new(name, assume, guarantee));
    }
    contracts
}

fn layered_workload_contract(workload: &Workload, vars: &LayeredVars, periods: u64) -> AgContract {
    let mut guarantee = Predicate::top();
    for (p, demand) in workload.iter() {
        let mut expr = LinExpr::new();
        for (&(_, prod), &v) in &vars.pickups {
            if prod == p {
                expr.add_term(v, Rational::ONE);
            }
        }
        // In a per-period circulation, deliveries equal pickups product by
        // product, so demanding the pickup rate demands the delivery rate.
        guarantee.require(
            expr,
            Relation::Ge,
            Rational::from(demand) / Rational::from(periods.max(1)),
            format!("workload demand for {p}"),
        );
    }
    AgContract::new("workload", Predicate::top(), guarantee)
}

/// Synthesizes an agent flow set with the two-layer circulation encoding
/// and decodes it back to per-product flows.
///
/// # Errors
///
/// See [`synthesize_flow`](crate::synthesize_flow).
pub fn synthesize_layered(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
) -> Result<AgentFlowSet, FlowError> {
    synthesize_layered_with_scratch(
        warehouse,
        traffic,
        workload,
        t_limit,
        options,
        &mut IlpScratch::new(),
    )
}

/// [`synthesize_layered`] with a caller-owned solver scratch, so
/// back-to-back syntheses reuse the LP workspace (and, for identical
/// constraint skeletons, the converged basis).
///
/// # Errors
///
/// See [`synthesize_flow`](crate::synthesize_flow).
pub fn synthesize_layered_with_scratch(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
    scratch: &mut IlpScratch,
) -> Result<AgentFlowSet, FlowError> {
    let cycle_time = traffic.cycle_time();
    if cycle_time == 0 || t_limit < cycle_time {
        return Err(FlowError::HorizonTooShort {
            t_limit,
            cycle_time,
        });
    }
    let periods = crate::effective_periods(t_limit, cycle_time, options);

    let vars = build_vars(warehouse, traffic, workload);
    let components =
        layered_component_contracts(warehouse, traffic, &vars, periods, !options.skip_capacity);
    let system_contract = AgContract::compose_all("traffic-system", components.iter());
    let full = system_contract.conjoin(&layered_workload_contract(workload, &vars, periods));

    let objective = if options.feasibility_only {
        // Even in feasibility mode, minimize total flow: the decoder needs
        // loaded circulations absent, and the zero-cost solver could emit
        // them. This stays faithful (any feasible set remains feasible).
        total_flow(&vars)
    } else {
        total_flow(&vars)
    };
    let problem = full.synthesis_problem(&vars.registry, objective);
    let problem_dims = (problem.var_count(), problem.constraint_count());

    let outcome = solve_ilp_with_scratch(&problem, &options.ilp, scratch).map_err(|e| match e {
        wsp_lp::IlpError::Lp(lp) => FlowError::Solver { source: lp },
        other => FlowError::SolverLimit { source: other },
    })?;
    let solution = match outcome {
        IlpOutcome::Optimal(s) | IlpOutcome::Feasible(s) => s,
        IlpOutcome::Infeasible => {
            return Err(FlowError::Infeasible {
                detail: format!(
                    "layered encoding: {} demanded units on {} components within {} periods",
                    workload.total_units(),
                    traffic.component_count(),
                    periods
                ),
            })
        }
        IlpOutcome::Unbounded => {
            return Err(FlowError::Infeasible {
                detail: "unbounded flow relaxation (encoder bug)".into(),
            })
        }
    };

    let value = |v: VarId| -> u64 {
        let q = solution.values[v.index()];
        debug_assert!(q.is_integer() && !q.is_negative());
        q.numer().max(0) as u64
    };

    // Decode: label loaded flow with products by walking from each pickup.
    let mut rem_loaded: BTreeMap<(ComponentId, ComponentId), u64> = vars
        .loaded
        .iter()
        .map(|(&arc, &v)| (arc, value(v)))
        .collect();
    let mut rem_drop: BTreeMap<ComponentId, u64> =
        vars.dropoffs.iter().map(|(&c, &v)| (c, value(v))).collect();

    let mut flow = AgentFlowSet::new(cycle_time, periods);
    flow.set_problem_size(problem_dims.0, problem_dims.1);
    for (&(i, j), &v) in &vars.unloaded {
        flow.add_edge_flow(i, j, Commodity::Unloaded, value(v));
    }

    // Guard budget for the loaded walks: the total loaded flow bounds any
    // single walk's length (computed once, not per pickup unit).
    let total_loaded: u64 = rem_loaded.values().sum();
    for (&(start, product), &pvar) in &vars.pickups {
        let count = value(pvar);
        for _ in 0..count {
            flow.add_pickup(start, product, 1);
            let mut cur = start;
            let mut guard = 0u64;
            loop {
                if let Some(d) = rem_drop.get_mut(&cur) {
                    if *d > 0 {
                        *d -= 1;
                        flow.add_dropoff(cur, product, 1);
                        break;
                    }
                }
                // Take the first arc with remaining loaded flow.
                let next = traffic
                    .outlets(cur)
                    .iter()
                    .copied()
                    .find(|&out| rem_loaded.get(&(cur, out)).copied().unwrap_or(0) > 0);
                let Some(next) = next else {
                    return Err(FlowError::DecompositionStuck {
                        detail: format!(
                            "loaded walk from {start} stuck at {cur} (no drop-off, no arc)"
                        ),
                    });
                };
                *rem_loaded.get_mut(&(cur, next)).expect("arc exists") -= 1;
                flow.add_edge_flow(cur, next, Commodity::Loaded(product), 1);
                cur = next;
                guard += 1;
                if guard > total_loaded + 1 {
                    return Err(FlowError::DecompositionStuck {
                        detail: format!("loaded walk from {start} exceeded flow budget"),
                    });
                }
            }
        }
    }

    // Leftover loaded flow would be a loaded circulation (agents forever
    // carrying a product). Total-flow minimization removes them: any loaded
    // circulation can be deleted, strictly reducing the objective while
    // preserving every constraint. Their presence indicates an encoder bug.
    if rem_loaded.values().any(|&n| n > 0) {
        return Err(FlowError::InvalidFlowSet {
            violations: vec!["leftover loaded circulation after decoding".into()],
        });
    }

    let violations = flow.validate(warehouse, traffic, workload);
    if !violations.is_empty() {
        return Err(FlowError::InvalidFlowSet { violations });
    }
    Ok(flow)
}

/// Builds the layered encoding with continuous variables (for the
/// real-valued mode of [`crate::synthesize_flow_relaxed`]).
pub(crate) fn relaxed_system(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    periods: u64,
    enforce_capacity: bool,
) -> (VarRegistry, AgContract, LinExpr) {
    let vars = build_vars(warehouse, traffic, workload);
    let components =
        layered_component_contracts(warehouse, traffic, &vars, periods, enforce_capacity);
    let system = AgContract::compose_all("traffic-system", components.iter());
    let full = system.conjoin(&layered_workload_contract(workload, &vars, periods));
    let objective = total_flow(&vars);
    (
        crate::relaxed::relax_registry(&vars.registry),
        full,
        objective,
    )
}

fn total_flow(vars: &LayeredVars) -> LinExpr {
    let mut obj = LinExpr::new();
    for &v in vars.loaded.values().chain(vars.unloaded.values()) {
        obj.add_term(v, Rational::ONE);
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize_paper, FlowSynthesisOptions};
    use wsp_model::{Direction, GridMap, ProductCatalog};
    use wsp_traffic::design_perimeter_loop;

    fn tiny(stock: u64) -> (Warehouse, TrafficSystem) {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let mut w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        w.set_catalog(ProductCatalog::with_len(1));
        let s = w.shelf_access()[0];
        w.stock(s, ProductId(0), stock).unwrap();
        let ts = design_perimeter_loop(&w, 3).unwrap();
        (w, ts)
    }

    #[test]
    fn services_small_workload() {
        let (w, ts) = tiny(100);
        let workload = Workload::from_demands(vec![10]);
        let flow =
            synthesize_layered(&w, &ts, &workload, 600, &FlowSynthesisOptions::default()).unwrap();
        assert!(flow.total_deliveries() >= 10);
        assert!(flow.validate(&w, &ts, &workload).is_empty());
    }

    #[test]
    fn agrees_with_paper_encoding_on_team_size() {
        let (w, ts) = tiny(200);
        for demand in [5u64, 20, 40] {
            let workload = Workload::from_demands(vec![demand]);
            let opts = FlowSynthesisOptions::default();
            let layered = synthesize_layered(&w, &ts, &workload, 600, &opts).unwrap();
            let paper = synthesize_paper(&w, &ts, &workload, 600, &opts).unwrap();
            // Both minimize total edge flow; the encodings are equivalent,
            // so the optima must match exactly.
            assert_eq!(
                layered.total_edge_flow(),
                paper.total_edge_flow(),
                "demand {demand}"
            );
            assert_eq!(
                layered.total_deliveries_per_period(),
                paper.total_deliveries_per_period()
            );
        }
    }

    #[test]
    fn infeasible_demand_detected() {
        let (w, ts) = tiny(2);
        let workload = Workload::from_demands(vec![500]);
        let err = synthesize_layered(&w, &ts, &workload, 600, &FlowSynthesisOptions::default())
            .unwrap_err();
        assert!(matches!(err, FlowError::Infeasible { .. }));
    }

    #[test]
    fn horizon_too_short_rejected() {
        let (w, ts) = tiny(10);
        let workload = Workload::from_demands(vec![1]);
        let err = synthesize_layered(&w, &ts, &workload, 1, &FlowSynthesisOptions::default())
            .unwrap_err();
        assert!(matches!(err, FlowError::HorizonTooShort { .. }));
    }

    #[test]
    fn decodes_to_consistent_cycles() {
        let (w, ts) = tiny(100);
        let workload = Workload::from_demands(vec![30]);
        let flow =
            synthesize_layered(&w, &ts, &workload, 600, &FlowSynthesisOptions::default()).unwrap();
        let cycles = flow.decompose().unwrap();
        for c in cycles.cycles() {
            assert_eq!(c.carry_inconsistency(), None);
        }
        assert!(cycles.deliveries_per_period() * flow.periods() >= 30);
    }
}
