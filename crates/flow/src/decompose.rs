//! Flow-to-cycle decomposition via the commodity-switching graph
//! (DESIGN.md §3.3).
//!
//! The paper (§IV-E, Properties 4.2/4.3) pairs loaded paths with unloaded
//! paths through a bijection on endpoints; this module uses a constructive
//! alternative that needs no pairing argument. Build a multigraph whose
//! nodes are `(component, commodity)` pairs with
//!
//! * movement arcs `(Cᵢ,k) → (Cⱼ,k)` of multiplicity `f_{i,j,k}`,
//! * pickup arcs `(Cᵢ,ρ₀) → (Cᵢ,ρₖ)` of multiplicity `f_in_{i,k}`,
//! * drop-off arcs `(Cᵢ,ρₖ) → (Cᵢ,ρ₀)` of multiplicity `f_out_{i,k}`.
//!
//! The §IV-D conservation constraints make this graph Eulerian-balanced, so
//! it decomposes into cycles; each cycle read back over the components is
//! exactly an agent cycle, with layer switches becoming pickup/drop-off
//! actions.

use std::collections::BTreeMap;

use crate::cycles::{AgentCycle, AgentCycleSet, CycleAction, CycleStep};
use crate::flowset::{AgentFlowSet, Commodity};
use crate::FlowError;

use wsp_traffic::ComponentId;

/// A node of the commodity-switching graph.
type Node = (ComponentId, Commodity);

/// One arc of the commodity-switching graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arc {
    /// Move to the next component, keeping the commodity.
    Move(Node),
    /// Switch layer in place: pick up (unloaded → loaded).
    Pickup(Node),
    /// Switch layer in place: drop off (loaded → unloaded).
    Dropoff(Node),
}

impl Arc {
    fn target(self) -> Node {
        match self {
            Arc::Move(n) | Arc::Pickup(n) | Arc::Dropoff(n) => n,
        }
    }
}

/// Decomposes a (balanced) agent flow set into agent cycles.
pub(crate) fn decompose(flow: &AgentFlowSet) -> Result<AgentCycleSet, FlowError> {
    // Build adjacency with expanded multiplicities.
    let mut out_arcs: BTreeMap<Node, Vec<Arc>> = BTreeMap::new();
    let mut in_degree: BTreeMap<Node, u64> = BTreeMap::new();
    let mut push = |from: Node, arc: Arc, count: u64| {
        let entry = out_arcs.entry(from).or_default();
        for _ in 0..count {
            entry.push(arc);
        }
        *in_degree.entry(arc.target()).or_insert(0) += count;
        in_degree.entry(from).or_insert(0);
    };
    for (i, j, k, n) in flow.edge_flows() {
        push((i, k), Arc::Move((j, k)), n);
    }
    for (c, p, n) in flow.pickups() {
        push(
            (c, Commodity::Unloaded),
            Arc::Pickup((c, Commodity::Loaded(p))),
            n,
        );
    }
    for (c, p, n) in flow.dropoffs() {
        push(
            (c, Commodity::Loaded(p)),
            Arc::Dropoff((c, Commodity::Unloaded)),
            n,
        );
    }

    // Balance check (holds for every flow set passing §IV-D validation).
    for (node, &indeg) in &in_degree {
        let outdeg = out_arcs.get(node).map_or(0, |v| v.len() as u64);
        if outdeg != indeg {
            return Err(FlowError::DecompositionStuck {
                detail: format!(
                    "node ({}, {}) has in-degree {indeg} but out-degree {outdeg}",
                    node.0, node.1
                ),
            });
        }
    }

    // Loop-extracting Euler walk: keep the current path simple; every time
    // the walk would revisit a node on the path, cut the loop out and emit
    // it as one agent cycle.
    let mut cursors: BTreeMap<Node, usize> = BTreeMap::new();
    let mut cycles_arcs: Vec<Vec<(Node, Arc)>> = Vec::new();
    let starts: Vec<Node> = out_arcs.keys().copied().collect();
    for start in starts {
        loop {
            // Path of (node, outgoing arc taken from that node).
            let mut path: Vec<(Node, Arc)> = Vec::new();
            let mut on_path: BTreeMap<Node, usize> = BTreeMap::new();
            let mut cur = start;
            loop {
                let cursor = cursors.entry(cur).or_insert(0);
                let arcs = out_arcs.get(&cur).map(Vec::as_slice).unwrap_or(&[]);
                if *cursor >= arcs.len() {
                    break; // `cur` exhausted
                }
                let arc = arcs[*cursor];
                *cursor += 1;
                let next = arc.target();
                if let Some(&pos) = on_path.get(&next) {
                    // Found a loop: path[pos..] plus this arc closes at `next`.
                    let mut loop_arcs: Vec<(Node, Arc)> = path.split_off(pos);
                    for (n, _) in &loop_arcs {
                        on_path.remove(n);
                    }
                    loop_arcs.push((cur, arc));
                    cycles_arcs.push(loop_arcs);
                    cur = next;
                    // `next` may equal a node still on the path prefix
                    // (it was just removed from on_path along with the loop);
                    // re-register it as the walking head.
                    if next == start && path.is_empty() {
                        // Back at an empty path: restart the outer loop so
                        // the start node can spin off further cycles.
                        break;
                    }
                    on_path.insert(cur, path.len());
                    // Note: if cur is the head we continue walking from it.
                    continue;
                }
                debug_assert_ne!(
                    next, cur,
                    "no self-loops: moves change component, switches change layer"
                );
                on_path.insert(cur, path.len());
                path.push((cur, arc));
                cur = next;
            }
            if !path.is_empty() {
                // The walk got stuck with unconsumed path arcs: the graph
                // was not balanced after all.
                return Err(FlowError::DecompositionStuck {
                    detail: format!(
                        "walk from ({}, {}) stranded {} arcs",
                        start.0,
                        start.1,
                        path.len()
                    ),
                });
            }
            // Start node exhausted?
            let arcs = out_arcs.get(&start).map(Vec::as_slice).unwrap_or(&[]);
            if cursors.get(&start).copied().unwrap_or(0) >= arcs.len() {
                break;
            }
        }
    }

    // Convert arc loops into component-level agent cycles.
    let mut cycles = Vec::with_capacity(cycles_arcs.len());
    for loop_arcs in cycles_arcs {
        cycles.push(arcs_to_cycle(&loop_arcs)?);
    }

    // Sanity: every unit of movement flow became exactly one cycle step.
    let steps: u64 = cycles.iter().map(|c: &AgentCycle| c.len() as u64).sum();
    debug_assert_eq!(steps, flow.total_edge_flow());

    Ok(AgentCycleSet::new(cycles, flow.cycle_time()))
}

/// Reads an arc loop back as an agent cycle: movement arcs emit a step for
/// the component being left; layer switches set that step's action.
fn arcs_to_cycle(loop_arcs: &[(Node, Arc)]) -> Result<AgentCycle, FlowError> {
    let mut steps: Vec<CycleStep> = Vec::new();
    let (start_node, _) = loop_arcs[0];
    let mut cur: ComponentId = start_node.0;
    let mut action = CycleAction::Travel;
    for &(from, arc) in loop_arcs {
        debug_assert_eq!(from.0, cur, "arc chain is contiguous");
        match arc {
            Arc::Pickup(to) => {
                if action != CycleAction::Travel {
                    return Err(FlowError::DecompositionStuck {
                        detail: format!("two layer switches at {cur} in one visit"),
                    });
                }
                let Commodity::Loaded(p) = to.1 else {
                    unreachable!("pickup targets a loaded layer")
                };
                action = CycleAction::Pickup(p);
            }
            Arc::Dropoff(_) => {
                if action != CycleAction::Travel {
                    return Err(FlowError::DecompositionStuck {
                        detail: format!("two layer switches at {cur} in one visit"),
                    });
                }
                let Commodity::Loaded(p) = from.1 else {
                    unreachable!("drop-off leaves a loaded layer")
                };
                action = CycleAction::Dropoff(p);
            }
            Arc::Move(to) => {
                steps.push(CycleStep {
                    component: cur,
                    action,
                });
                cur = to.0;
                action = CycleAction::Travel;
            }
        }
    }
    // A trailing layer switch belongs to the first visit (the loop closes on
    // the same component).
    if action != CycleAction::Travel {
        match steps.first_mut() {
            Some(first) if first.component == cur && first.action == CycleAction::Travel => {
                first.action = action;
            }
            _ => {
                return Err(FlowError::DecompositionStuck {
                    detail: format!("dangling layer switch at {cur}"),
                })
            }
        }
    }
    if steps.is_empty() {
        return Err(FlowError::DecompositionStuck {
            detail: format!("zero-movement loop at {cur}"),
        });
    }
    let cycle = AgentCycle::new(steps);
    if let Some(problem) = cycle.carry_inconsistency() {
        return Err(FlowError::DecompositionStuck {
            detail: format!("decomposed cycle inconsistent: {problem}"),
        });
    }
    Ok(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::ProductId;

    fn c(i: u32) -> ComponentId {
        ComponentId(i)
    }
    fn p(i: u32) -> ProductId {
        ProductId(i)
    }

    /// Ring C0 -> C1 -> C2 -> C3 -> C0; pickup at C0, drop at C2.
    fn simple_ring_flow() -> AgentFlowSet {
        let mut fs = AgentFlowSet::new(8, 10);
        let k = Commodity::Loaded(p(0));
        fs.add_pickup(c(0), p(0), 1);
        fs.add_edge_flow(c(0), c(1), k, 1);
        fs.add_edge_flow(c(1), c(2), k, 1);
        fs.add_dropoff(c(2), p(0), 1);
        fs.add_edge_flow(c(2), c(3), Commodity::Unloaded, 1);
        fs.add_edge_flow(c(3), c(0), Commodity::Unloaded, 1);
        fs
    }

    #[test]
    fn simple_ring_decomposes_to_one_cycle() {
        let set = decompose(&simple_ring_flow()).unwrap();
        assert_eq!(set.cycles().len(), 1);
        let cycle = &set.cycles()[0];
        assert_eq!(cycle.len(), 4);
        assert_eq!(cycle.deliveries_per_period(), 1);
        assert_eq!(cycle.carry_inconsistency(), None);
        assert_eq!(set.cycle_time(), 8);
        assert_eq!(set.total_agents(), 4);
    }

    #[test]
    fn doubled_flow_gives_two_cycles() {
        let mut fs = simple_ring_flow();
        // Double every multiplicity.
        let fs2 = {
            let mut out = AgentFlowSet::new(fs.cycle_time(), fs.periods());
            for (i, j, k, n) in fs.edge_flows() {
                out.add_edge_flow(i, j, k, 2 * n);
            }
            for (ci, pi, n) in fs.pickups() {
                out.add_pickup(ci, pi, 2 * n);
            }
            for (ci, pi, n) in fs.dropoffs() {
                out.add_dropoff(ci, pi, 2 * n);
            }
            out
        };
        fs = fs2;
        let set = decompose(&fs).unwrap();
        assert_eq!(set.total_agents(), 8);
        assert_eq!(set.deliveries_per_period(), 2);
        // Loop extraction yields two identical 4-cycles.
        assert_eq!(set.cycles().len(), 2);
    }

    #[test]
    fn two_products_two_rows() {
        // C0 picks p0, C1 picks p1, both drop at C2, return via C3.
        let mut fs = AgentFlowSet::new(6, 4);
        fs.add_pickup(c(0), p(0), 1);
        fs.add_edge_flow(c(0), c(1), Commodity::Loaded(p(0)), 1);
        fs.add_edge_flow(c(1), c(2), Commodity::Loaded(p(0)), 1);
        fs.add_pickup(c(1), p(1), 1);
        fs.add_edge_flow(c(1), c(2), Commodity::Loaded(p(1)), 1);
        fs.add_dropoff(c(2), p(0), 1);
        fs.add_dropoff(c(2), p(1), 1);
        fs.add_edge_flow(c(2), c(3), Commodity::Unloaded, 2);
        fs.add_edge_flow(c(3), c(0), Commodity::Unloaded, 1);
        fs.add_edge_flow(c(3), c(1), Commodity::Unloaded, 1);
        let set = decompose(&fs).unwrap();
        assert_eq!(set.deliveries_per_period(), 2);
        let delivered: Vec<ProductId> = set
            .cycles()
            .iter()
            .flat_map(|cy| cy.delivered_products())
            .collect();
        assert!(delivered.contains(&p(0)));
        assert!(delivered.contains(&p(1)));
        for cy in set.cycles() {
            assert_eq!(cy.carry_inconsistency(), None);
        }
    }

    #[test]
    fn pure_unloaded_circulation_becomes_travel_cycle() {
        let mut fs = AgentFlowSet::new(4, 2);
        fs.add_edge_flow(c(0), c(1), Commodity::Unloaded, 1);
        fs.add_edge_flow(c(1), c(0), Commodity::Unloaded, 1);
        let set = decompose(&fs).unwrap();
        assert_eq!(set.cycles().len(), 1);
        assert_eq!(set.deliveries_per_period(), 0);
        assert_eq!(set.total_agents(), 2);
    }

    #[test]
    fn unbalanced_flow_rejected() {
        let mut fs = AgentFlowSet::new(4, 2);
        fs.add_edge_flow(c(0), c(1), Commodity::Unloaded, 1);
        // No return arc: node (C1, ρ0) has in-degree 1, out-degree 0.
        let err = decompose(&fs).unwrap_err();
        assert!(matches!(err, FlowError::DecompositionStuck { .. }));
    }

    #[test]
    fn empty_flow_decomposes_to_nothing() {
        let fs = AgentFlowSet::new(4, 2);
        let set = decompose(&fs).unwrap();
        assert!(set.cycles().is_empty());
        assert_eq!(set.total_agents(), 0);
    }

    #[test]
    fn figure_eight_extracts_two_loops() {
        // Two unloaded loops sharing C0: C0->C1->C0 and C0->C2->C0.
        let mut fs = AgentFlowSet::new(4, 2);
        fs.add_edge_flow(c(0), c(1), Commodity::Unloaded, 1);
        fs.add_edge_flow(c(1), c(0), Commodity::Unloaded, 1);
        fs.add_edge_flow(c(0), c(2), Commodity::Unloaded, 1);
        fs.add_edge_flow(c(2), c(0), Commodity::Unloaded, 1);
        let set = decompose(&fs).unwrap();
        assert_eq!(set.cycles().len(), 2);
        assert_eq!(set.total_agents(), 4);
        assert_eq!(set.occupancy(c(0)), 2);
    }
}
