//! Agent flow sets: the per-cycle-period flow of agents between components
//! (§IV-D), with exact integer validation against the contract constraints.

use std::collections::BTreeMap;
use std::fmt;

use wsp_model::{ProductId, Warehouse, Workload};
use wsp_traffic::{ComponentId, ComponentKind, TrafficSystem};

use crate::cycles::AgentCycleSet;
use crate::FlowError;

/// What an agent on a flow is carrying: the paper's index `k ∈ {0} ∪ ρ`,
/// with `Unloaded` playing the role of `ρ₀`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Commodity {
    /// Unburdened agents (`k = 0`).
    Unloaded,
    /// Agents carrying one unit of the product.
    Loaded(ProductId),
}

impl Commodity {
    /// The carried product, if any.
    pub fn product(self) -> Option<ProductId> {
        match self {
            Commodity::Unloaded => None,
            Commodity::Loaded(p) => Some(p),
        }
    }
}

impl fmt::Display for Commodity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Commodity::Unloaded => f.write_str("ρ0"),
            Commodity::Loaded(p) => write!(f, "{p}"),
        }
    }
}

/// An agent flow set `F := {f_{i,j,k}}` (§IV-D): for every traffic-system
/// arc and commodity, the number of agents crossing it each cycle period,
/// plus the per-component transfer rates `f_in` (shelf pickups) and `f_out`
/// (station drop-offs).
///
/// Produced by [`synthesize_flow`](crate::synthesize_flow); consumed by
/// [`AgentFlowSet::decompose`], which turns it into agent cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentFlowSet {
    cycle_time: usize,
    periods: u64,
    edges: BTreeMap<(ComponentId, ComponentId, Commodity), u64>,
    pickups: BTreeMap<(ComponentId, ProductId), u64>,
    dropoffs: BTreeMap<(ComponentId, ProductId), u64>,
    /// ILP dimensions of the synthesis problem that produced this set
    /// (variables, constraints); `(0, 0)` for hand-built sets.
    problem_size: (usize, usize),
}

impl AgentFlowSet {
    /// Creates an empty flow set for a system with the given cycle time
    /// `t_c` and number of executable cycle periods `q_c = ⌊T/t_c⌋`.
    pub fn new(cycle_time: usize, periods: u64) -> Self {
        AgentFlowSet {
            cycle_time,
            periods,
            edges: BTreeMap::new(),
            pickups: BTreeMap::new(),
            dropoffs: BTreeMap::new(),
            problem_size: (0, 0),
        }
    }

    /// The cycle time `t_c` (timesteps per cycle period).
    pub fn cycle_time(&self) -> usize {
        self.cycle_time
    }

    /// Records the ILP dimensions of the synthesis problem this set was
    /// decoded from (called by the synthesis engines).
    pub fn set_problem_size(&mut self, variables: usize, constraints: usize) {
        self.problem_size = (variables, constraints);
    }

    /// The `(variables, constraints)` dimensions of the synthesis ILP, or
    /// `(0, 0)` for hand-built sets.
    pub fn problem_size(&self) -> (usize, usize) {
        self.problem_size
    }

    /// A deterministic, machine-independent proxy for flow-synthesis cost:
    /// `variables + constraints` of the synthesis ILP. Unlike wall-clock
    /// time this is identical run to run (and thread count to thread
    /// count), which is what lets `wsp-explore` rank candidate designs on
    /// synthesis cost while keeping Pareto fronts byte-reproducible.
    pub fn synthesis_cost(&self) -> u64 {
        (self.problem_size.0 + self.problem_size.1) as u64
    }

    /// The number of cycle periods `q_c` executable within the plan horizon.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Adds `count` agents per period to the arc `(from, to)` carrying
    /// `commodity`.
    pub fn add_edge_flow(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        commodity: Commodity,
        count: u64,
    ) {
        if count == 0 {
            return;
        }
        *self.edges.entry((from, to, commodity)).or_insert(0) += count;
    }

    /// Adds `count` per-period pickups of `product` at `component` (`f_in`).
    pub fn add_pickup(&mut self, component: ComponentId, product: ProductId, count: u64) {
        if count == 0 {
            return;
        }
        *self.pickups.entry((component, product)).or_insert(0) += count;
    }

    /// Adds `count` per-period drop-offs of `product` at `component`
    /// (`f_out`).
    pub fn add_dropoff(&mut self, component: ComponentId, product: ProductId, count: u64) {
        if count == 0 {
            return;
        }
        *self.dropoffs.entry((component, product)).or_insert(0) += count;
    }

    /// The flow `f_{i,j,k}` on an arc for one commodity.
    pub fn edge_flow(&self, from: ComponentId, to: ComponentId, commodity: Commodity) -> u64 {
        self.edges.get(&(from, to, commodity)).copied().unwrap_or(0)
    }

    /// The pickup rate `f_in_{i,k}`.
    pub fn pickup(&self, component: ComponentId, product: ProductId) -> u64 {
        self.pickups
            .get(&(component, product))
            .copied()
            .unwrap_or(0)
    }

    /// The drop-off rate `f_out_{i,k}`.
    pub fn dropoff(&self, component: ComponentId, product: ProductId) -> u64 {
        self.dropoffs
            .get(&(component, product))
            .copied()
            .unwrap_or(0)
    }

    /// All non-zero edge flows as `(from, to, commodity, count)`.
    pub fn edge_flows(
        &self,
    ) -> impl Iterator<Item = (ComponentId, ComponentId, Commodity, u64)> + '_ {
        self.edges.iter().map(|(&(i, j, k), &n)| (i, j, k, n))
    }

    /// All non-zero pickups as `(component, product, count)`.
    pub fn pickups(&self) -> impl Iterator<Item = (ComponentId, ProductId, u64)> + '_ {
        self.pickups.iter().map(|(&(c, p), &n)| (c, p, n))
    }

    /// All non-zero drop-offs as `(component, product, count)`.
    pub fn dropoffs(&self) -> impl Iterator<Item = (ComponentId, ProductId, u64)> + '_ {
        self.dropoffs.iter().map(|(&(c, p), &n)| (c, p, n))
    }

    /// Total agents crossing arcs per period. In a realized plan every unit
    /// of edge flow corresponds to one agent slot, so this equals the team
    /// size the plan will employ.
    pub fn total_edge_flow(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Units of `product` delivered to stations per cycle period
    /// (`Σᵢ f_out_{i,k}`).
    pub fn deliveries_per_period(&self, product: ProductId) -> u64 {
        self.dropoffs
            .iter()
            .filter(|(&(_, p), _)| p == product)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Total units (all products) delivered per cycle period.
    pub fn total_deliveries_per_period(&self) -> u64 {
        self.dropoffs.values().sum()
    }

    /// Total units deliverable within the plan horizon
    /// (`q_c · Σ f_out`).
    pub fn total_deliveries(&self) -> u64 {
        self.total_deliveries_per_period() * self.periods
    }

    /// Total agents entering component `to` per period, over all inlets and
    /// commodities.
    pub fn entering_flow(&self, to: ComponentId) -> u64 {
        self.edges
            .iter()
            .filter(|(&(_, j, _), _)| j == to)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Exact integer validation of every §IV-D contract constraint.
    /// Returns a human-readable list of violations (empty = valid).
    pub fn validate(
        &self,
        warehouse: &Warehouse,
        traffic: &TrafficSystem,
        workload: &Workload,
    ) -> Vec<String> {
        let mut violations = Vec::new();

        // Flows only on traffic-system arcs (outlet slices are 1-2 long).
        for (i, j, k, n) in self.edge_flows() {
            let is_arc = i.index() < traffic.component_count() && traffic.outlets(i).contains(&j);
            if !is_arc {
                violations.push(format!("flow {n}x{k} on non-arc {i}->{j}"));
            }
        }

        for comp in traffic.components() {
            let id = comp.id();
            // Assumption: entry capacity.
            let entering = self.entering_flow(id);
            if entering > comp.capacity() as u64 {
                violations.push(format!(
                    "{id}: {entering} agents enter per period, capacity {}",
                    comp.capacity()
                ));
            }

            // Pickups only at shelving rows, within stock rate.
            let units_at = |p: ProductId| -> u64 {
                comp.path()
                    .iter()
                    .map(|&v| warehouse.location_matrix().units_at(v, p))
                    .fold(0u64, u64::saturating_add)
            };
            for (&(c, p), &n) in &self.pickups {
                if c != id {
                    continue;
                }
                if comp.kind() != ComponentKind::ShelvingRow {
                    violations.push(format!("{id}: pickup of {p} outside a shelving row"));
                }
                // f_in <= UNITS_AT / q_c, i.e. q_c * f_in <= UNITS_AT.
                if n.saturating_mul(self.periods) > units_at(p) {
                    violations.push(format!(
                        "{id}: picks {n}/{p} per period x {} periods exceeds stock {}",
                        self.periods,
                        units_at(p)
                    ));
                }
            }
            // Drop-offs only at station queues, bounded by loaded inflow.
            for (&(c, p), &n) in &self.dropoffs {
                if c != id {
                    continue;
                }
                if comp.kind() != ComponentKind::StationQueue {
                    violations.push(format!("{id}: drop-off of {p} outside a station queue"));
                }
                let loaded_in: u64 = traffic
                    .inlets(id)
                    .iter()
                    .map(|&inl| self.edge_flow(inl, id, Commodity::Loaded(p)))
                    .sum();
                if n > loaded_in {
                    violations.push(format!(
                        "{id}: drops {n}/{p} but only {loaded_in} loaded agents enter"
                    ));
                }
            }

            // Pickup coupling: total pickups bounded by unloaded inflow.
            let total_pickups: u64 = self
                .pickups
                .iter()
                .filter(|(&(c, _), _)| c == id)
                .map(|(_, &n)| n)
                .sum();
            let unloaded_in: u64 = traffic
                .inlets(id)
                .iter()
                .map(|&inl| self.edge_flow(inl, id, Commodity::Unloaded))
                .sum();
            if total_pickups > unloaded_in {
                violations.push(format!(
                    "{id}: {total_pickups} pickups but only {unloaded_in} unloaded agents enter"
                ));
            }

            // Conservation per product and for unloaded agents.
            let products: std::collections::BTreeSet<ProductId> = self
                .edges
                .keys()
                .filter_map(|&(_, _, k)| k.product())
                .chain(self.pickups.keys().map(|&(_, p)| p))
                .chain(self.dropoffs.keys().map(|&(_, p)| p))
                .collect();
            for &p in &products {
                let inflow: u64 = traffic
                    .inlets(id)
                    .iter()
                    .map(|&inl| self.edge_flow(inl, id, Commodity::Loaded(p)))
                    .sum();
                let outflow: u64 = traffic
                    .outlets(id)
                    .iter()
                    .map(|&out| self.edge_flow(id, out, Commodity::Loaded(p)))
                    .sum();
                let fin = self.pickup(id, p);
                let fout = self.dropoff(id, p);
                if outflow + fout != inflow + fin {
                    violations.push(format!(
                        "{id}/{p}: conservation broken (out {outflow} + drop {fout} != in {inflow} + pick {fin})"
                    ));
                }
            }
            let u_in: u64 = traffic
                .inlets(id)
                .iter()
                .map(|&inl| self.edge_flow(inl, id, Commodity::Unloaded))
                .sum();
            let u_out: u64 = traffic
                .outlets(id)
                .iter()
                .map(|&out| self.edge_flow(id, out, Commodity::Unloaded))
                .sum();
            let total_drops: u64 = self
                .dropoffs
                .iter()
                .filter(|(&(c, _), _)| c == id)
                .map(|(_, &n)| n)
                .sum();
            if u_out + total_pickups != u_in + total_drops {
                violations.push(format!(
                    "{id}/ρ0: conservation broken (out {u_out} + pick {total_pickups} != in {u_in} + drop {total_drops})"
                ));
            }
        }

        // Workload contract: q_c * Σᵢ f_out_{i,k} >= w_k.
        for (p, demand) in workload.iter() {
            let rate = self.deliveries_per_period(p);
            if rate.saturating_mul(self.periods) < demand {
                violations.push(format!(
                    "workload: {p} delivers {rate}/period x {} periods < demand {demand}",
                    self.periods
                ));
            }
        }

        violations
    }

    /// Decomposes the flow set into an agent cycle set via the
    /// commodity-switching graph (§IV-E, strengthened per DESIGN.md §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::DecompositionStuck`] if the flow set is not
    /// balanced (cannot happen for flow sets that pass [`validate`]).
    ///
    /// [`validate`]: AgentFlowSet::validate
    pub fn decompose(&self) -> Result<AgentCycleSet, FlowError> {
        crate::decompose::decompose(self)
    }
}

impl fmt::Display for AgentFlowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow set: {} edge flows, {} agents/period, {} deliveries/period over {} periods (t_c = {})",
            self.edges.len(),
            self.total_edge_flow(),
            self.total_deliveries_per_period(),
            self.periods,
            self.cycle_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ComponentId {
        ComponentId(i)
    }
    fn p(i: u32) -> ProductId {
        ProductId(i)
    }

    #[test]
    fn accessors_and_totals() {
        let mut fs = AgentFlowSet::new(10, 6);
        fs.add_edge_flow(c(0), c(1), Commodity::Loaded(p(0)), 2);
        fs.add_edge_flow(c(1), c(0), Commodity::Unloaded, 2);
        fs.add_pickup(c(0), p(0), 2);
        fs.add_dropoff(c(1), p(0), 2);
        assert_eq!(fs.edge_flow(c(0), c(1), Commodity::Loaded(p(0))), 2);
        assert_eq!(fs.edge_flow(c(0), c(1), Commodity::Unloaded), 0);
        assert_eq!(fs.total_edge_flow(), 4);
        assert_eq!(fs.deliveries_per_period(p(0)), 2);
        assert_eq!(fs.total_deliveries(), 12);
        assert_eq!(fs.entering_flow(c(1)), 2);
        assert_eq!(fs.cycle_time(), 10);
        assert_eq!(fs.periods(), 6);
    }

    #[test]
    fn zero_adds_are_noops() {
        let mut fs = AgentFlowSet::new(4, 1);
        fs.add_edge_flow(c(0), c(1), Commodity::Unloaded, 0);
        fs.add_pickup(c(0), p(0), 0);
        fs.add_dropoff(c(0), p(0), 0);
        assert_eq!(fs.edge_flows().count(), 0);
        assert_eq!(fs.pickups().count(), 0);
        assert_eq!(fs.dropoffs().count(), 0);
    }

    #[test]
    fn display_mentions_sizes() {
        let fs = AgentFlowSet::new(8, 3);
        let s = fs.to_string();
        assert!(s.contains("t_c = 8"));
        assert!(s.contains("3 periods"));
    }
}
