//! Errors of the flow-synthesis pipeline.

use std::fmt;

/// Errors produced while synthesizing or decomposing agent flows.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// The timestep limit `T` is shorter than one cycle period `t_c`, so no
    /// delivery can complete (`q_c = ⌊T / t_c⌋ = 0`).
    HorizonTooShort {
        /// The requested plan horizon.
        t_limit: usize,
        /// The traffic system's cycle time `t_c = 2m`.
        cycle_time: usize,
    },
    /// The conjunction of the traffic-system and workload contracts is
    /// unsatisfiable: the workload cannot be serviced on this topology
    /// within the time limit.
    Infeasible {
        /// Human-readable context (workload size, capacity summary).
        detail: String,
    },
    /// The ILP solver hit a limit before finding any flow set.
    SolverLimit {
        /// Underlying solver error.
        source: wsp_lp::IlpError,
    },
    /// The LP kernel failed.
    Solver {
        /// Underlying solver error.
        source: wsp_lp::LpError,
    },
    /// A synthesized flow set failed exact validation against the contracts
    /// (indicates a solver or encoder bug; never expected).
    InvalidFlowSet {
        /// The violated constraints.
        violations: Vec<String>,
    },
    /// Flow decomposition found residual flow it could not route into
    /// cycles (indicates an unbalanced flow set; never expected for
    /// validated sets).
    DecompositionStuck {
        /// Human-readable context.
        detail: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::HorizonTooShort {
                t_limit,
                cycle_time,
            } => write!(
                f,
                "plan horizon {t_limit} is shorter than one cycle period {cycle_time}"
            ),
            FlowError::Infeasible { detail } => {
                write!(f, "no agent flow set services the workload: {detail}")
            }
            FlowError::SolverLimit { source } => {
                write!(f, "ILP limit reached before a flow set was found: {source}")
            }
            FlowError::Solver { source } => write!(f, "LP kernel failure: {source}"),
            FlowError::InvalidFlowSet { violations } => write!(
                f,
                "synthesized flow set violates {} contract constraints (first: {})",
                violations.len(),
                violations.first().map(String::as_str).unwrap_or("-")
            ),
            FlowError::DecompositionStuck { detail } => {
                write!(f, "flow decomposition stuck: {detail}")
            }
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::SolverLimit { source } => Some(source),
            FlowError::Solver { source } => Some(source),
            _ => None,
        }
    }
}

impl From<wsp_lp::LpError> for FlowError {
    fn from(source: wsp_lp::LpError) -> Self {
        FlowError::Solver { source }
    }
}
