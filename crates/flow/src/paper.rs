//! The monolithic per-product synthesis engine: exactly the §IV-D encoding.

use wsp_contracts::AgContract;
use wsp_lp::{solve_ilp_with_scratch, IlpOutcome, IlpScratch, LinExpr};
use wsp_model::{Warehouse, Workload};
use wsp_traffic::TrafficSystem;

use crate::contracts::{component_contracts, workload_contract, FlowVars};
use crate::flowset::AgentFlowSet;
use crate::{FlowError, FlowSynthesisOptions};

/// Synthesizes an agent flow set with the paper's per-product encoding:
/// compose all component contracts into the traffic-system contract,
/// conjoin the workload contract, and solve the consistency region as an
/// ILP (Fig. 3 with Z3 replaced by `wsp-lp`).
///
/// # Errors
///
/// See [`synthesize_flow`](crate::synthesize_flow).
pub fn synthesize_paper(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
) -> Result<AgentFlowSet, FlowError> {
    synthesize_paper_with_scratch(
        warehouse,
        traffic,
        workload,
        t_limit,
        options,
        &mut IlpScratch::new(),
    )
}

/// [`synthesize_paper`] with a caller-owned solver scratch, so
/// back-to-back syntheses reuse the LP workspace.
///
/// # Errors
///
/// See [`synthesize_flow`](crate::synthesize_flow).
pub fn synthesize_paper_with_scratch(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    workload: &Workload,
    t_limit: usize,
    options: &FlowSynthesisOptions,
    scratch: &mut IlpScratch,
) -> Result<AgentFlowSet, FlowError> {
    let cycle_time = traffic.cycle_time();
    if cycle_time == 0 || t_limit < cycle_time {
        return Err(FlowError::HorizonTooShort {
            t_limit,
            cycle_time,
        });
    }
    let periods = crate::effective_periods(t_limit, cycle_time, options);

    let vars = FlowVars::build(warehouse, traffic, workload);
    let components =
        component_contracts(warehouse, traffic, &vars, periods, !options.skip_capacity);
    let system_contract = AgContract::compose_all("traffic-system", components.iter());
    let full = system_contract.conjoin(&workload_contract(workload, &vars, periods));

    let objective = if options.feasibility_only {
        LinExpr::new()
    } else {
        vars.total_flow_objective()
    };
    let problem = full.synthesis_problem(vars.registry(), objective);
    let problem_dims = (problem.var_count(), problem.constraint_count());

    let outcome = solve_ilp_with_scratch(&problem, &options.ilp, scratch).map_err(|e| match e {
        wsp_lp::IlpError::Lp(lp) => FlowError::Solver { source: lp },
        other => FlowError::SolverLimit { source: other },
    })?;
    let solution = match outcome {
        IlpOutcome::Optimal(s) | IlpOutcome::Feasible(s) => s,
        IlpOutcome::Infeasible => {
            return Err(FlowError::Infeasible {
                detail: format!(
                    "paper encoding: {} demanded units on {} components within {} periods",
                    workload.total_units(),
                    traffic.component_count(),
                    periods
                ),
            })
        }
        IlpOutcome::Unbounded => {
            // Cannot happen: the objective is a non-negative sum.
            return Err(FlowError::Infeasible {
                detail: "unbounded flow relaxation (encoder bug)".into(),
            });
        }
    };

    // Read the model back into a flow set.
    let mut flow = AgentFlowSet::new(cycle_time, periods);
    flow.set_problem_size(problem_dims.0, problem_dims.1);
    let value = |v: wsp_lp::VarId| -> u64 {
        let q = solution.values[v.index()];
        debug_assert!(q.is_integer() && !q.is_negative());
        q.numer().max(0) as u64
    };
    for ((i, j, k), v) in vars.edge_entries() {
        flow.add_edge_flow(i, j, k, value(v));
    }
    for ((c, p), v) in vars.fin_entries() {
        flow.add_pickup(c, p, value(v));
    }
    for ((c, p), v) in vars.fout_entries() {
        flow.add_dropoff(c, p, value(v));
    }

    let violations = flow.validate(warehouse, traffic, workload);
    if !violations.is_empty() {
        return Err(FlowError::InvalidFlowSet { violations });
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowEngine;
    use wsp_model::{Direction, GridMap, ProductCatalog, ProductId};
    use wsp_traffic::design_perimeter_loop;

    fn tiny(stock: u64) -> (Warehouse, TrafficSystem) {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let mut w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        w.set_catalog(ProductCatalog::with_len(1));
        let s = w.shelf_access()[0];
        w.stock(s, ProductId(0), stock).unwrap();
        let ts = design_perimeter_loop(&w, 3).unwrap();
        (w, ts)
    }

    fn opts() -> FlowSynthesisOptions {
        FlowSynthesisOptions {
            engine: FlowEngine::PaperIlp,
            ..FlowSynthesisOptions::default()
        }
    }

    #[test]
    fn services_small_workload() {
        let (w, ts) = tiny(100);
        let workload = Workload::from_demands(vec![10]);
        let flow = synthesize_paper(&w, &ts, &workload, 600, &opts()).unwrap();
        assert!(flow.total_deliveries() >= 10);
        assert!(flow.validate(&w, &ts, &workload).is_empty());
        // Minimization: one delivery per period suffices (600 / t_c periods).
        assert_eq!(flow.total_deliveries_per_period(), 1);
    }

    #[test]
    fn horizon_too_short_rejected() {
        let (w, ts) = tiny(100);
        let workload = Workload::from_demands(vec![1]);
        let err = synthesize_paper(&w, &ts, &workload, ts.cycle_time() - 1, &opts()).unwrap_err();
        assert!(matches!(err, FlowError::HorizonTooShort { .. }));
    }

    #[test]
    fn undersupplied_workload_infeasible() {
        let (w, ts) = tiny(3);
        // Demand exceeds total stock: no flow set can service it.
        let workload = Workload::from_demands(vec![50]);
        let err = synthesize_paper(&w, &ts, &workload, 600, &opts()).unwrap_err();
        assert!(matches!(err, FlowError::Infeasible { .. }));
    }

    #[test]
    fn empty_workload_needs_no_flow() {
        let (w, ts) = tiny(10);
        let workload = Workload::zeros(1);
        let flow = synthesize_paper(&w, &ts, &workload, 600, &opts()).unwrap();
        assert_eq!(flow.total_edge_flow(), 0);
    }

    #[test]
    fn feasibility_only_mode_still_valid() {
        let (w, ts) = tiny(100);
        let workload = Workload::from_demands(vec![10]);
        let o = FlowSynthesisOptions {
            feasibility_only: true,
            ..opts()
        };
        let flow = synthesize_paper(&w, &ts, &workload, 600, &o).unwrap();
        assert!(flow.validate(&w, &ts, &workload).is_empty());
        assert!(flow.total_deliveries() >= 10);
    }

    #[test]
    fn decomposes_into_consistent_cycles() {
        let (w, ts) = tiny(100);
        let workload = Workload::from_demands(vec![10]);
        let flow = synthesize_paper(&w, &ts, &workload, 600, &opts()).unwrap();
        let cycles = flow.decompose().unwrap();
        assert!(cycles.deliveries_per_period() >= 1);
        for c in cycles.cycles() {
            assert_eq!(c.carry_inconsistency(), None);
        }
        // Property 4.1 capacity: occupancy within ⌊|Cᵢ|/2⌋.
        for comp in ts.components() {
            assert!(cycles.occupancy(comp.id()) <= comp.capacity());
        }
    }
}
