//! Benchmark harness shared by the criterion benches (`benches/`) and the
//! standalone table/figure binaries (`src/bin/`): the Table I instance
//! list, timed single-row runners for the paper-mode / strict / integer
//! solver configurations, and the scaling-scenario builder behind
//! `benches/scaling.rs` and `BENCH_scaling.json`. Sits on top of every
//! other crate in the workspace; results are tracked per PR in
//! `BENCH_baseline.json` and `BENCH_scaling.json` (see docs/BENCHMARKS.md).

#![warn(missing_docs)]

use wsp_core::{PipelineOptions, WspInstance};
use wsp_flow::{synthesize_flow_relaxed, FlowError, FlowSynthesisOptions, RelaxedFlowSummary};
use wsp_mapf::{PrioritizedPlanner, SpaceTimeAstar};
use wsp_maps::MapInstance;
use wsp_model::VertexId;

/// The paper's plan-length limit for every Table I instance.
pub const T_LIMIT: usize = 3_600;

/// The nine Table I rows: (map builder, units-moved workloads).
pub fn table1_rows() -> Vec<(MapInstance, [u64; 3])> {
    vec![
        (
            wsp_maps::sorting_center().expect("sorting center builds"),
            [160, 320, 480],
        ),
        (
            wsp_maps::fulfillment_center_1().expect("fulfillment 1 builds"),
            [550, 825, 1100],
        ),
        (
            wsp_maps::fulfillment_center_2().expect("fulfillment 2 builds"),
            [1200, 1320, 1440],
        ),
    ]
}

/// Result of one Table I cell in a given mode.
#[derive(Debug)]
pub enum RowResult {
    /// Solved: seconds taken plus a short detail string.
    Solved {
        /// Wall-clock seconds for flow synthesis.
        seconds: f64,
        /// Mode-specific detail (objective, agents, ...).
        detail: String,
    },
    /// Proven infeasible (strict mode documents the capacity boundary).
    Infeasible,
    /// Some other failure.
    Failed(String),
}

impl std::fmt::Display for RowResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowResult::Solved { seconds, detail } => write!(f, "{seconds:8.3}s  {detail}"),
            RowResult::Infeasible => write!(f, "infeasible (capacity bound; see EXPERIMENTS.md)"),
            RowResult::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

/// Runs one instance in the paper's solver configuration: real-valued
/// flows (§IV-D solves "arithmetic constraints over the reals") without the
/// entry-capacity assumption the largest instances exceed.
pub fn run_paper_mode(map: &MapInstance, units: u64) -> RowResult {
    let workload = map.uniform_workload(units);
    let options = FlowSynthesisOptions {
        skip_capacity: true,
        ..FlowSynthesisOptions::default()
    };
    time_relaxed(map, &workload, &options)
}

/// Runs one instance with real-valued flows *and* the strict Property 4.1
/// capacity assumption.
pub fn run_strict_relaxed(map: &MapInstance, units: u64) -> RowResult {
    let workload = map.uniform_workload(units);
    time_relaxed(map, &workload, &FlowSynthesisOptions::default())
}

fn time_relaxed(
    map: &MapInstance,
    workload: &wsp_model::Workload,
    options: &FlowSynthesisOptions,
) -> RowResult {
    let t0 = std::time::Instant::now();
    let out: Result<RelaxedFlowSummary, FlowError> =
        synthesize_flow_relaxed(&map.warehouse, &map.traffic, workload, T_LIMIT, options);
    let seconds = t0.elapsed().as_secs_f64();
    match out {
        Ok(summary) => RowResult::Solved {
            seconds,
            detail: format!(
                "min total flow {:.2} ({} vars, {} constraints, q_c={})",
                summary.objective, summary.variables, summary.constraints, summary.periods
            ),
        },
        Err(FlowError::Infeasible { .. }) => RowResult::Infeasible,
        Err(e) => RowResult::Failed(e.to_string()),
    }
}

/// Runs the full strict integer pipeline (synthesis -> cycles -> plan ->
/// verification); used where the strict capacity bound admits the workload.
pub fn run_strict_integer(map: &MapInstance, units: u64) -> RowResult {
    let workload = map.uniform_workload(units);
    let instance = WspInstance::new(
        map.warehouse.clone(),
        map.traffic.clone(),
        workload,
        T_LIMIT,
    );
    let t0 = std::time::Instant::now();
    match wsp_core::solve(&instance, &PipelineOptions::default()) {
        Ok(report) => RowResult::Solved {
            seconds: report.timings.flow_synthesis.as_secs_f64(),
            detail: format!(
                "{} agents, {} delivered, plan {} steps (total {:.3}s incl. verify)",
                report.outcome.agents,
                report.stats.total_delivered(),
                report.outcome.timesteps,
                t0.elapsed().as_secs_f64(),
            ),
        },
        Err(wsp_core::PipelineError::Flow(FlowError::Infeasible { .. })) => RowResult::Infeasible,
        Err(e) => RowResult::Failed(e.to_string()),
    }
}

/// A MAPF scaling scenario on a generated [`wsp_maps::scaled_warehouse`]:
/// the map plus team starts and single-goal itineraries.
#[derive(Debug)]
pub struct ScalingScenario {
    /// The generated instance.
    pub map: MapInstance,
    /// One start vertex per agent.
    pub starts: Vec<VertexId>,
    /// One single-goal itinerary per agent.
    pub goals: Vec<Vec<VertexId>>,
}

/// Builds the scaling scenario benched in `benches/scaling.rs`: a
/// `scaled_warehouse(rows, cols, 3, seed)` instance with `agents` agents
/// spread over the map, each routed to a shelf-access vertex a quarter of
/// the floor away in the same rotational direction — long co-directional
/// hauls, the flow shape the co-designed traffic systems produce. (Routing
/// half the team along the *reverse* corridors instead creates head-on
/// meetings in one-agent-wide aisles, an adversarial regime that measures
/// conflict resolution rather than scale; that belongs to the CBS benches.)
///
/// # Panics
///
/// Panics if the generated map fails to build (a generator bug, not an
/// unlucky seed) or has fewer shelf-access vertices than `2 × agents`.
pub fn scaling_scenario(rows: u32, cols: u32, agents: usize, seed: u64) -> ScalingScenario {
    let map = wsp_maps::scaled_warehouse(rows, cols, 3, seed).expect("scaled map builds");
    let access = map.warehouse.shelf_access();
    assert!(agents > 0, "team needs at least one agent");
    assert!(access.len() >= 2 * agents, "map too small for team");
    // Row-major stride: starts spread bottom to top; every goal is a
    // quarter of the list ahead, plus half a stride so no goal coincides
    // with another agent's start cell.
    let stride = access.len() / agents;
    let starts: Vec<VertexId> = (0..agents).map(|i| access[i * stride]).collect();
    let goals: Vec<Vec<VertexId>> = (0..agents)
        .map(|i| vec![access[(i * stride + access.len() / 4 + stride / 2) % access.len()]])
        .collect();
    ScalingScenario { map, starts, goals }
}

/// A ready-to-simulate lifelong scenario: instance, executable cycle set,
/// and the arrival mix — everything [`wsp_sim::Simulation::from_cycles`]
/// needs (behind `benches/sim.rs` and `BENCH_sim.json`).
#[derive(Debug)]
pub struct SimScenario {
    /// Scenario name, used as the bench id.
    pub label: String,
    /// The instance (warehouse + traffic; `t_limit` is ignored by the
    /// simulator).
    pub instance: WspInstance,
    /// The cycle set the simulator executes.
    pub cycles: wsp_flow::AgentCycleSet,
    /// The arrival mix for the task stream.
    pub mix: wsp_model::Workload,
}

impl SimScenario {
    /// A [`wsp_sim::SimConfig`] for this scenario: zipf/uniform stream
    /// over `mix`, stall deviations and MAPF repair enabled, fixed seeds.
    pub fn config(&self, ticks: u64) -> wsp_sim::SimConfig {
        wsp_sim::SimConfig {
            ticks,
            stream: wsp_sim::StreamConfig {
                mix: self.mix.clone(),
                mean_gap: 2,
                seed: 7,
            },
            deviations: wsp_sim::DeviationConfig::stalls(64, 2, 8, 9),
            repair: wsp_sim::RepairConfig {
                enabled: true,
                ..wsp_sim::RepairConfig::default()
            },
            replan_lag: 24,
            ..wsp_sim::SimConfig::default()
        }
    }
}

/// The paper-scale lifelong scenario: the sorting center, synthesized by
/// the full staged pipeline, with a zipf arrival mix — the regime the
/// paper's §V sorting experiments model as one-shot workloads.
///
/// # Panics
///
/// Panics if the paper map fails to build or synthesize (a pipeline
/// regression, not an unlucky input).
pub fn sim_scenario_paper(units: u64) -> SimScenario {
    let map = wsp_maps::sorting_center().expect("sorting center builds");
    let mix = map.zipf_workload(units, 1.0, 7);
    let workload = map.uniform_workload(160);
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, T_LIMIT);
    let mut pipeline = wsp_core::Pipeline::new();
    let flow = pipeline
        .synthesize(&instance, &PipelineOptions::default())
        .expect("paper workload synthesizes");
    let cycles = pipeline.decompose(&flow).expect("flow decomposes");
    SimScenario {
        label: "sorting-center".into(),
        instance,
        cycles: cycles.cycles,
        mix,
    }
}

/// A production-scale lifelong scenario on `scaled_warehouse(rows, cols,
/// 3, seed)`: the flow-synthesis ILP does not reach 10k–200k-vertex
/// instances, so the executable design comes from
/// [`wsp_sim::direct_cycle_set`] and the mix is uniform over the products
/// that design actually delivers (so latency/throughput numbers measure
/// the serviced stream, not undeliverable backlog).
///
/// # Panics
///
/// Panics if the generated map fails to build or yields no realizable
/// cycles (a generator bug, not an unlucky seed).
pub fn sim_scenario_scaled(rows: u32, cols: u32, agents: usize, seed: u64) -> SimScenario {
    let map = wsp_maps::scaled_warehouse(rows, cols, 3, seed).expect("scaled map builds");
    let vertices = map.warehouse.graph().vertex_count();
    let instance = WspInstance::new(map.warehouse, map.traffic, wsp_model::Workload::zeros(0), 0);
    let cycles = wsp_sim::direct_cycle_set(&instance.warehouse, &instance.traffic, agents);
    assert!(
        cycles.total_agents() > 0,
        "direct cycle construction produced no agents"
    );
    let mut mix = wsp_model::Workload::zeros(instance.warehouse.catalog().len());
    let delivered: std::collections::BTreeSet<wsp_model::ProductId> = cycles
        .cycles()
        .iter()
        .flat_map(|c| c.delivered_products())
        .collect();
    for &p in &delivered {
        mix.set(p, 400 / delivered.len() as u64 + 1);
    }
    SimScenario {
        label: format!("scaled-{vertices}v"),
        instance,
        cycles,
        mix,
    }
}

/// A prioritized planner whose per-segment search horizon is sized to the
/// map (cross-map hauls on 100k-vertex floors are far longer than the
/// paper-scale default of 512 steps).
pub fn scaling_planner(map: &MapInstance) -> PrioritizedPlanner {
    let grid = map.warehouse.grid();
    PrioritizedPlanner {
        astar: SpaceTimeAstar {
            max_time: 4 * (grid.width() + grid.height()) as usize,
            ..SpaceTimeAstar::default()
        },
        ..PrioritizedPlanner::default()
    }
}
