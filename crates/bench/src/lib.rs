//! Shared harness support for regenerating the paper's tables and figures.

use wsp_core::{PipelineOptions, WspInstance};
use wsp_flow::{synthesize_flow_relaxed, FlowError, FlowSynthesisOptions, RelaxedFlowSummary};
use wsp_maps::MapInstance;

/// The paper's plan-length limit for every Table I instance.
pub const T_LIMIT: usize = 3_600;

/// The nine Table I rows: (map builder, units-moved workloads).
pub fn table1_rows() -> Vec<(MapInstance, [u64; 3])> {
    vec![
        (
            wsp_maps::sorting_center().expect("sorting center builds"),
            [160, 320, 480],
        ),
        (
            wsp_maps::fulfillment_center_1().expect("fulfillment 1 builds"),
            [550, 825, 1100],
        ),
        (
            wsp_maps::fulfillment_center_2().expect("fulfillment 2 builds"),
            [1200, 1320, 1440],
        ),
    ]
}

/// Result of one Table I cell in a given mode.
#[derive(Debug)]
pub enum RowResult {
    /// Solved: seconds taken plus a short detail string.
    Solved {
        /// Wall-clock seconds for flow synthesis.
        seconds: f64,
        /// Mode-specific detail (objective, agents, ...).
        detail: String,
    },
    /// Proven infeasible (strict mode documents the capacity boundary).
    Infeasible,
    /// Some other failure.
    Failed(String),
}

impl std::fmt::Display for RowResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowResult::Solved { seconds, detail } => write!(f, "{seconds:8.3}s  {detail}"),
            RowResult::Infeasible => write!(f, "infeasible (capacity bound; see EXPERIMENTS.md)"),
            RowResult::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

/// Runs one instance in the paper's solver configuration: real-valued
/// flows (§IV-D solves "arithmetic constraints over the reals") without the
/// entry-capacity assumption the largest instances exceed.
pub fn run_paper_mode(map: &MapInstance, units: u64) -> RowResult {
    let workload = map.uniform_workload(units);
    let options = FlowSynthesisOptions {
        skip_capacity: true,
        ..FlowSynthesisOptions::default()
    };
    time_relaxed(map, &workload, &options)
}

/// Runs one instance with real-valued flows *and* the strict Property 4.1
/// capacity assumption.
pub fn run_strict_relaxed(map: &MapInstance, units: u64) -> RowResult {
    let workload = map.uniform_workload(units);
    time_relaxed(map, &workload, &FlowSynthesisOptions::default())
}

fn time_relaxed(
    map: &MapInstance,
    workload: &wsp_model::Workload,
    options: &FlowSynthesisOptions,
) -> RowResult {
    let t0 = std::time::Instant::now();
    let out: Result<RelaxedFlowSummary, FlowError> =
        synthesize_flow_relaxed(&map.warehouse, &map.traffic, workload, T_LIMIT, options);
    let seconds = t0.elapsed().as_secs_f64();
    match out {
        Ok(summary) => RowResult::Solved {
            seconds,
            detail: format!(
                "min total flow {:.2} ({} vars, {} constraints, q_c={})",
                summary.objective, summary.variables, summary.constraints, summary.periods
            ),
        },
        Err(FlowError::Infeasible { .. }) => RowResult::Infeasible,
        Err(e) => RowResult::Failed(e.to_string()),
    }
}

/// Runs the full strict integer pipeline (synthesis -> cycles -> plan ->
/// verification); used where the strict capacity bound admits the workload.
pub fn run_strict_integer(map: &MapInstance, units: u64) -> RowResult {
    let workload = map.uniform_workload(units);
    let instance = WspInstance::new(
        map.warehouse.clone(),
        map.traffic.clone(),
        workload,
        T_LIMIT,
    );
    let t0 = std::time::Instant::now();
    match wsp_core::solve(&instance, &PipelineOptions::default()) {
        Ok(report) => RowResult::Solved {
            seconds: report.timings.flow_synthesis.as_secs_f64(),
            detail: format!(
                "{} agents, {} delivered, plan {} steps (total {:.3}s incl. verify)",
                report.outcome.agents,
                report.stats.total_delivered(),
                report.outcome.timesteps,
                t0.elapsed().as_secs_f64(),
            ),
        },
        Err(wsp_core::PipelineError::Flow(FlowError::Infeasible { .. })) => RowResult::Infeasible,
        Err(e) => RowResult::Failed(e.to_string()),
    }
}
