//! Renders the paper's map figures (Figs. 1, 4, 5) as ASCII art with the
//! paper's drawing conventions: `!` marks a component's exit cell, arrows
//! point to the next vertex of the component, `#` are shelves/chutes.

use wsp_traffic::{describe_traffic_system, render_traffic_system};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 4: Fulfillment Center Map ==");
    let f1 = wsp_maps::fulfillment_center_1()?;
    println!("{}", describe_traffic_system(&f1.warehouse, &f1.traffic));
    println!("{}\n", render_traffic_system(&f1.warehouse, &f1.traffic));

    println!("== Fulfillment Center 2 (synthetic) ==");
    let f2 = wsp_maps::fulfillment_center_2()?;
    println!("{}", describe_traffic_system(&f2.warehouse, &f2.traffic));
    println!("{}\n", render_traffic_system(&f2.warehouse, &f2.traffic));

    println!("== Fig. 5: Sorting Center Map ==");
    let s = wsp_maps::sorting_center()?;
    println!("{}", describe_traffic_system(&s.warehouse, &s.traffic));
    println!("{}", render_traffic_system(&s.warehouse, &s.traffic));
    Ok(())
}
