//! Standalone harness behind `BENCH_sim.json`: measures the lifelong
//! simulator's steady-state tick cost on the paper-scale sorting center
//! and on ~10k and ≥100k-vertex `scaled_warehouse` instances, and
//! cross-checks the determinism contract (byte-identical `SimReport` JSON
//! at 1, 2, and 4 repair threads). Deviations and MAPF repair are ON for
//! every scenario, so the numbers cover the full engine, not a quiet
//! fast path. Prints the JSON body to stdout:
//!
//! ```text
//! cargo run --release -p wsp-bench --bin sim > BENCH_sim.json
//! ```

use std::time::Instant;

use wsp_bench::{sim_scenario_paper, sim_scenario_scaled, SimScenario};
use wsp_sim::Simulation;

struct Row {
    label: String,
    vertices: usize,
    agents: usize,
    ticks: u64,
    ns_per_tick: f64,
    completed: u64,
    delivered: u64,
    mean_latency_milliticks: u64,
    throughput_per_kilotick: u64,
    replans: u64,
    repairs_applied: u64,
    deterministic: bool,
}

fn measure(scenario: &SimScenario, ticks: u64) -> Row {
    // Determinism probe: full runs at 1/2/4 repair threads must render
    // byte-identical reports.
    let mut renderings = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut config = scenario.config(ticks);
        config.repair.threads = Some(threads);
        let mut sim = Simulation::from_cycles(&scenario.instance, scenario.cycles.clone(), config)
            .expect("scenario simulates");
        let report = sim.run().expect("sim runs");
        renderings.push(report.to_json());
    }
    let deterministic = renderings.windows(2).all(|w| w[0] == w[1]);

    // Steady-state timing: build once, warm up for two windows, then time
    // a long stretch of ticks (replans amortize into the stretch).
    let mut sim = Simulation::from_cycles(
        &scenario.instance,
        scenario.cycles.clone(),
        scenario.config(u64::MAX),
    )
    .expect("scenario simulates");
    let warmup = 2 * sim.window_len() as u64;
    sim.run_ticks(warmup).expect("warmup runs");
    // Snapshot before the stretch so every reported counter is a
    // within-stretch delta, matching the schema in docs/BENCHMARKS.md
    // (cumulative counters would silently include warmup activity).
    let before = sim.counters().clone();
    let t0 = Instant::now();
    sim.run_ticks(ticks).expect("timed stretch runs");
    let ns_per_tick = t0.elapsed().as_nanos() as f64 / ticks as f64;
    let after = sim.counters().clone();
    let completed = after.completed - before.completed;
    let latency_sum = after.latency_sum - before.latency_sum;

    Row {
        label: scenario.label.clone(),
        vertices: scenario.instance.warehouse.graph().vertex_count(),
        agents: sim.agent_count(),
        ticks,
        ns_per_tick,
        completed,
        delivered: after.delivered - before.delivered,
        mean_latency_milliticks: (latency_sum * 1000).checked_div(completed).unwrap_or(0),
        throughput_per_kilotick: completed * 1000 / ticks,
        replans: after.replans - before.replans,
        repairs_applied: after.repairs_applied - before.repairs_applied,
        deterministic,
    }
}

fn main() {
    let scenarios: Vec<(SimScenario, u64)> = vec![
        (sim_scenario_paper(2_000), 4_000),
        (sim_scenario_scaled(31, 320, 400, 5), 4_000),
        (sim_scenario_scaled(101, 1000, 2000, 3), 2_000),
    ];

    let rows: Vec<Row> = scenarios
        .iter()
        .map(|(scenario, ticks)| measure(scenario, *ticks))
        .collect();

    println!("{{");
    println!(
        "  \"note\": \"Lifelong simulator steady-state cost (deviations + MAPF repair ON, \
         record OFF). ns_per_tick = wall nanoseconds per tick over a timed stretch after a \
         two-window warmup, replans amortized in. The contract: tick cost is O(agents) plus \
         amortized O(agents + components) replanning — independent of the vertex count, which \
         is why the 100k-vertex row lands in the same range as the 406-vertex paper row at \
         equal team sizes. 'deterministic' asserts byte-identical SimReport JSON at 1/2/4 \
         repair threads. The paper row synthesizes its design with the full pipeline; the \
         scaled rows execute direct cycle sets (the ILP does not reach 10k+ vertices). \
         Regenerate with: cargo run --release -p wsp-bench --bin sim > BENCH_sim.json. \
         Schema: docs/BENCHMARKS.md.\","
    );
    let all_deterministic = rows.iter().all(|r| r.deterministic);
    println!("  \"deterministic_across_thread_counts\": {all_deterministic},");
    println!("  \"runs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{ \"bench\": \"sim/{}\", \"vertices\": {}, \"agents\": {}, \"ticks\": {}, \
             \"ns_per_tick\": {:.0}, \"completed\": {}, \"delivered\": {}, \
             \"mean_latency_milliticks\": {}, \
             \"throughput_per_kilotick\": {}, \"replans\": {}, \"repairs_applied\": {} }}{comma}",
            r.label,
            r.vertices,
            r.agents,
            r.ticks,
            r.ns_per_tick,
            r.completed,
            r.delivered,
            r.mean_latency_milliticks,
            r.throughput_per_kilotick,
            r.replans,
            r.repairs_applied,
        );
    }
    println!("  ]");
    println!("}}");

    assert!(
        all_deterministic,
        "repair thread counts disagreed — determinism bug"
    );
}
