//! Standalone harness behind `BENCH_sim.json`: measures the lifelong
//! simulator's steady-state tick cost on the paper-scale sorting center
//! and on ~10k and ≥100k-vertex `scaled_warehouse` instances, and
//! cross-checks the determinism contract (byte-identical `SimReport` JSON
//! at 1, 2, and 4 repair threads). Deviations and MAPF repair are ON for
//! every scenario, so the numbers cover the full engine, not a quiet
//! fast path. Prints the JSON body to stdout:
//!
//! ```text
//! cargo run --release -p wsp-bench --bin sim > BENCH_sim.json
//! ```

use std::time::Instant;

use wsp_bench::{sim_scenario_paper, sim_scenario_scaled, SimScenario};
use wsp_sim::Simulation;

struct Row {
    label: String,
    vertices: usize,
    agents: usize,
    ticks: u64,
    ns_per_tick: f64,
    completed: u64,
    completed_full: u64,
    faults_injected_full: u64,
    tasks_shed_full: u64,
    agents_lost_full: u64,
    delivered: u64,
    mean_latency_milliticks: u64,
    throughput_per_kilotick: u64,
    replans: u64,
    repairs_applied: u64,
    ticks_elided: u64,
    active_agent_ticks: u64,
    events_processed: u64,
    cache_bytes: usize,
    deterministic: bool,
}

/// One bench case: a scenario, the timed-stretch length, an optional
/// stall mean-gap override (the high-deviation row drops the default 64
/// to 6, roughly ×10 the stall rate, to price the engine when elision
/// rarely gets a chance), and the task-assignment policy (the -auction
/// row reruns the 105k-vertex floor with lifelong matching on).
struct Case {
    scenario: SimScenario,
    ticks: u64,
    stall_gap: Option<u32>,
    policy: wsp_sim::AssignPolicy,
    faults: Option<wsp_sim::FaultConfig>,
    label_suffix: &'static str,
}

fn case_config(case: &Case, ticks: u64) -> wsp_sim::SimConfig {
    let mut config = case.scenario.config(ticks);
    if let Some(gap) = case.stall_gap {
        config.deviations = wsp_sim::DeviationConfig::stalls(gap, 2, 8, 9);
    }
    if let Some(faults) = case.faults {
        config.faults = faults;
    }
    config.assign.policy = case.policy;
    config
}

fn measure(case: &Case) -> Row {
    let scenario = &case.scenario;
    let ticks = case.ticks;
    // Determinism probe: full runs at 1/2/4 repair threads must render
    // byte-identical reports.
    let mut renderings = Vec::new();
    let mut completed_full = 0;
    let mut faults_injected_full = 0;
    let mut tasks_shed_full = 0;
    let mut agents_lost_full = 0;
    for threads in [1usize, 2, 4] {
        let mut config = case_config(case, ticks);
        config.repair.threads = Some(threads);
        let mut sim = Simulation::from_cycles(&scenario.instance, scenario.cycles.clone(), config)
            .expect("scenario simulates");
        let report = sim.run().expect("sim runs");
        completed_full = report.counters.completed;
        faults_injected_full = report.counters.faults_injected;
        tasks_shed_full = report.counters.tasks_shed;
        agents_lost_full = report.counters.agents_lost;
        renderings.push(report.to_json());
    }
    let deterministic = renderings.windows(2).all(|w| w[0] == w[1]);

    // Steady-state timing: build once, warm up for two windows, then time
    // a long stretch of ticks (replans amortize into the stretch).
    let mut sim = Simulation::from_cycles(
        &scenario.instance,
        scenario.cycles.clone(),
        case_config(case, u64::MAX),
    )
    .expect("scenario simulates");
    let cache_bytes = sim.auction_cache_bytes();
    let warmup = 2 * sim.window_len() as u64;
    sim.run_ticks(warmup).expect("warmup runs");
    // Snapshot before the stretch so every reported counter is a
    // within-stretch delta, matching the schema in docs/BENCHMARKS.md
    // (cumulative counters would silently include warmup activity).
    let before = sim.counters().clone();
    let t0 = Instant::now();
    sim.run_ticks(ticks).expect("timed stretch runs");
    let ns_per_tick = t0.elapsed().as_nanos() as f64 / ticks as f64;
    let after = sim.counters().clone();
    let completed = after.completed - before.completed;
    let latency_sum = after.latency_sum - before.latency_sum;

    Row {
        label: format!("{}{}", scenario.label, case.label_suffix),
        vertices: scenario.instance.warehouse.graph().vertex_count(),
        agents: sim.agent_count(),
        ticks,
        ns_per_tick,
        completed,
        completed_full,
        faults_injected_full,
        tasks_shed_full,
        agents_lost_full,
        delivered: after.delivered - before.delivered,
        mean_latency_milliticks: (latency_sum * 1000).checked_div(completed).unwrap_or(0),
        throughput_per_kilotick: completed * 1000 / ticks,
        replans: after.replans - before.replans,
        repairs_applied: after.repairs_applied - before.repairs_applied,
        ticks_elided: after.ticks_elided - before.ticks_elided,
        active_agent_ticks: after.active_agent_ticks - before.active_agent_ticks,
        events_processed: after.events_processed - before.events_processed,
        cache_bytes,
        deterministic,
    }
}

fn main() {
    let cases: Vec<Case> = vec![
        Case {
            scenario: sim_scenario_paper(2_000),
            ticks: 4_000,
            stall_gap: None,
            policy: wsp_sim::AssignPolicy::Static,
            faults: None,
            label_suffix: "",
        },
        Case {
            scenario: sim_scenario_scaled(31, 320, 400, 5),
            ticks: 4_000,
            stall_gap: None,
            policy: wsp_sim::AssignPolicy::Static,
            faults: None,
            label_suffix: "",
        },
        Case {
            scenario: sim_scenario_scaled(101, 1000, 2000, 3),
            ticks: 2_000,
            stall_gap: None,
            policy: wsp_sim::AssignPolicy::Static,
            faults: None,
            label_suffix: "",
        },
        // High-deviation stress: the 105k-vertex floor with stalls firing
        // ~×10 as often — prices the event engine when agents keep getting
        // knocked awake and elision is scarce.
        Case {
            scenario: sim_scenario_scaled(101, 1000, 2000, 3),
            ticks: 2_000,
            stall_gap: Some(6),
            policy: wsp_sim::AssignPolicy::Static,
            faults: None,
            label_suffix: "-stalls10x",
        },
        // Lifelong auction assignment on the 105k-vertex floor: queued
        // tasks are matched to bidding agents instead of waiting for a
        // static cycle to pass their pickup, so tasks-completed must land
        // orders of magnitude above the static row's (asserted below).
        Case {
            scenario: sim_scenario_scaled(101, 1000, 2000, 3),
            ticks: 2_000,
            stall_gap: None,
            policy: wsp_sim::AssignPolicy::Auction,
            faults: None,
            label_suffix: "-auction",
        },
        // The auction under adversarial deviations: stalls ~x10 as often
        // keep knocking sleepers awake and dirtying the assignment
        // inputs, so the dirty-set skip and tick elision rarely engage —
        // the upper bound on what the auction costs when quiet stretches
        // never materialize.
        Case {
            scenario: sim_scenario_scaled(101, 1000, 2000, 3),
            ticks: 2_000,
            stall_gap: Some(6),
            policy: wsp_sim::AssignPolicy::Auction,
            faults: None,
            label_suffix: "-auction-stalls10x",
        },
        // Graceful degradation under structural faults: the 105k-vertex
        // auction floor loses ~10% of its fleet to permanent breakdowns
        // spread over the run (mean gap 12 over 2000 ticks ≈ 165 of 1615
        // agents), one station goes dark for 500 ticks, and a corridor
        // closes for 400. Shed tasks re-queue, the auction routes around
        // the wreckage, and whole-run completions must stay >= 80% of the
        // fault-free -auction row (asserted below).
        Case {
            scenario: sim_scenario_scaled(101, 1000, 2000, 3),
            ticks: 2_000,
            stall_gap: None,
            policy: wsp_sim::AssignPolicy::Auction,
            faults: Some(wsp_sim::FaultConfig {
                breakdown_gap: 12,
                permanent_permille: 1000,
                outage_gap: 1000,
                outage_min_ticks: 500,
                outage_max_ticks: 500,
                closure_gap: 1000,
                closure_min_ticks: 400,
                closure_max_ticks: 400,
                closure_len: 4,
                seed: 0xfa17,
                ..wsp_sim::FaultConfig::none()
            }),
            label_suffix: "-faults",
        },
    ];

    let rows: Vec<Row> = cases.iter().map(measure).collect();

    println!("{{");
    println!(
        "  \"note\": \"Lifelong simulator steady-state cost (deviations + MAPF repair ON, \
         record OFF, event engine). ns_per_tick = wall nanoseconds per simulated tick over a \
         timed stretch after a two-window warmup, replans amortized in; elided ticks count as \
         simulated, so quiet stretches drive the figure down. The contract: executed ticks \
         cost O(active agents) plus amortized O(agents + components) replanning — independent \
         of the vertex count. ticks_elided / active_agent_ticks / events_processed expose the \
         event engine's work profile (docs/BENCHMARKS.md defines each). completed_full \
         counts a whole run at the row's tick budget (from the determinism probe), not \
         just the timed stretch. 'deterministic' \
         asserts byte-identical SimReport JSON at 1/2/4 repair threads. The -stalls10x row \
         reruns the 105k-vertex floor with stalls ~x10 as frequent: the adversarial regime \
         where agents keep getting knocked awake. The -auction row reruns the same floor \
         under AssignPolicy::Auction — lifelong matching of queued tasks to bidding agents \
         — and must complete >= 100x the static row's tasks; its assignment phase is \
         dirty-set gated (skipped outright on ticks where no input changed), station and \
         site distances come from fields precomputed at build (cache_bytes reports their \
         resident size, 0 for static rows), and once the queue drains the whole floor \
         sleeps and ticks elide (asserted in-binary: the -auction row must report \
         ticks_elided > 0). The -auction-stalls10x row combines both regimes — lifelong \
         matching with x10 stalls — the upper bound when quiet stretches never \
         materialize. The -faults row is the graceful-degradation guard: the -auction floor \
         with deterministic fault injection on — ~10% of the fleet permanently broken down \
         over the run (agents_lost_full), one station dark for 500 ticks, one corridor \
         closed for 400 — where shed tasks re-queue (tasks_shed_full) and completed_full \
         must stay >= 80% of the fault-free -auction row (asserted in-binary), still \
         byte-deterministic across thread counts. The *_full fault counters are whole-run \
         totals (0 on fault-free rows). The paper row synthesizes its design with \
         the full pipeline; the scaled rows execute direct cycle sets (the ILP does not reach \
         10k+ vertices). Regenerate with: cargo run --release -p wsp-bench --bin sim > \
         BENCH_sim.json. Schema: docs/BENCHMARKS.md.\","
    );
    let all_deterministic = rows.iter().all(|r| r.deterministic);
    println!("  \"deterministic_across_thread_counts\": {all_deterministic},");
    println!("  \"runs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{ \"bench\": \"sim/{}\", \"vertices\": {}, \"agents\": {}, \"ticks\": {}, \
             \"ns_per_tick\": {:.0}, \"completed\": {}, \"completed_full\": {}, \
             \"faults_injected_full\": {}, \"tasks_shed_full\": {}, \"agents_lost_full\": {}, \
             \"delivered\": {}, \
             \"mean_latency_milliticks\": {}, \
             \"throughput_per_kilotick\": {}, \"replans\": {}, \"repairs_applied\": {}, \
             \"ticks_elided\": {}, \"active_agent_ticks\": {}, \"events_processed\": {}, \
             \"cache_bytes\": {} }}{comma}",
            r.label,
            r.vertices,
            r.agents,
            r.ticks,
            r.ns_per_tick,
            r.completed,
            r.completed_full,
            r.faults_injected_full,
            r.tasks_shed_full,
            r.agents_lost_full,
            r.delivered,
            r.mean_latency_milliticks,
            r.throughput_per_kilotick,
            r.replans,
            r.repairs_applied,
            r.ticks_elided,
            r.active_agent_ticks,
            r.events_processed,
            r.cache_bytes,
        );
    }
    println!("  ]");
    println!("}}");

    assert!(
        all_deterministic,
        "repair thread counts disagreed — determinism bug"
    );

    // The auction row's reason to exist: on the 105k-vertex floor the
    // static cycle design completes a handful of tasks per 2k ticks;
    // lifelong matching must beat it by two orders of magnitude. The
    // comparison uses whole-run completions (completed_full): auction
    // finishes tasks ~10 ticks after arrival, so by the time the timed
    // stretch starts everything the warmup injected is already done and
    // the stretch delta would undercount it.
    let completed_at = |suffix: &str| {
        rows.iter()
            .find(|r| r.vertices > 100_000 && r.label.ends_with(suffix))
            .map(|r| r.completed_full)
            .expect("105k row present")
    };
    let static_completed = completed_at("v").max(1);
    let auction_completed = completed_at("-auction");
    assert!(
        auction_completed >= 100 * static_completed,
        "auction throughput regression on the 105k floor: {auction_completed} completed          vs {static_completed} static (need >= 100x)"
    );

    // The auction cost contract: O(dirty work), not O(ticks). With the
    // default stall gap the stream's quiet stretches must actually elide
    // under the auction policy — a zero here means the dirty-set skip or
    // the idle sleep rule regressed and every tick is paying for a full
    // assignment pass again.
    let auction_elided = rows
        .iter()
        .find(|r| r.vertices > 100_000 && r.label.ends_with("-auction"))
        .map(|r| r.ticks_elided)
        .expect("105k auction row present");
    assert!(
        auction_elided > 0,
        "the 105k -auction row elided no ticks — quiet stretches are being executed"
    );

    // Graceful degradation: losing ~10% of the fleet, a station for 500
    // ticks, and a corridor for 400 must not collapse throughput — the
    // faulted floor keeps >= 80% of the fault-free auction completions.
    let faulted = rows
        .iter()
        .find(|r| r.vertices > 100_000 && r.label.ends_with("-faults"))
        .expect("105k -faults row present");
    assert!(
        faulted.agents_lost_full > 0 && faulted.tasks_shed_full > 0,
        "the -faults row injected no breakdowns ({} lost, {} shed)",
        faulted.agents_lost_full,
        faulted.tasks_shed_full
    );
    assert!(
        faulted.completed_full * 5 >= auction_completed * 4,
        "fault-injection throughput collapse: {} completed under faults vs {} fault-free \
         (need >= 80%)",
        faulted.completed_full,
        auction_completed
    );
}
