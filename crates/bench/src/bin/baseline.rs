//! The §V baseline experiment as a standalone harness: sweeps the
//! search-based planners' team size and prints the runtime growth table
//! next to the pipeline's flat runtimes. See also
//! `examples/baseline_comparison.rs` for the itinerary-faithful variant.

use std::time::Instant;

use wsp_mapf::{CbsPlanner, MapfProblem, PrioritizedPlanner};
use wsp_model::{FloorplanGraph, GridMap, VertexId};

fn main() {
    let art = vec![".".repeat(24); 12].join("\n");
    let graph = FloorplanGraph::from_grid(&GridMap::from_ascii(&art).expect("grid"));
    let vs: Vec<VertexId> = graph.vertices().collect();

    println!("{:<8} {:>14} {:>14}", "agents", "prioritized", "ECBS(2)");
    for agents in [2usize, 4, 8, 16, 24] {
        let starts: Vec<VertexId> = vs.iter().take(agents).copied().collect();
        let goals: Vec<Vec<VertexId>> = vs.iter().rev().take(agents).map(|&g| vec![g]).collect();
        let p = MapfProblem::new(&graph, starts, goals);

        let t0 = Instant::now();
        let prio = PrioritizedPlanner::default().solve(&p);
        let prio_t = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let ecbs = CbsPlanner {
            weight: 2.0,
            max_expansions: 5_000,
            ..CbsPlanner::default()
        }
        .solve(&p);
        let ecbs_t = t1.elapsed().as_secs_f64();

        println!(
            "{agents:<8} {:>11.3}s {} {:>11.3}s {}",
            prio_t,
            if prio.is_ok() { "ok " } else { "err" },
            ecbs_t,
            if ecbs.is_ok() { "ok " } else { "err" },
        );
    }
}
