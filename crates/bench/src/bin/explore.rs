//! Standalone harness behind `BENCH_explore.json`: measures the design
//! explorer's batch throughput (candidates/sec) on the default 20-candidate
//! sorting-center sweep at 1, 2, 4, and all available worker threads, and
//! cross-checks the determinism invariant (byte-identical fingerprints at
//! every thread count). Prints the JSON body to stdout:
//!
//! ```text
//! cargo run --release -p wsp-bench --bin explore > BENCH_explore.json
//! ```

use std::time::Instant;

use wsp_explore::{evaluate_batch, sorting_center_sweep, ExploreOptions};

fn main() {
    let candidates = sorting_center_sweep();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points = vec![1usize, 2, 4];
    if !points.contains(&cores) {
        points.push(cores);
    }

    let mut fingerprints: Vec<String> = Vec::new();
    let mut rows: Vec<(usize, f64, f64, usize, usize)> = Vec::new();
    for &threads in &points {
        let options = ExploreOptions {
            threads: Some(threads),
            ..ExploreOptions::default()
        };
        // Warm-up run (also the determinism probe), then timed runs.
        let probe = evaluate_batch(&candidates, &options);
        fingerprints.push(probe.fingerprint());
        let samples = 3;
        let t0 = Instant::now();
        for _ in 0..samples {
            std::hint::black_box(evaluate_batch(&candidates, &options));
        }
        let secs = t0.elapsed().as_secs_f64() / samples as f64;
        rows.push((
            threads,
            secs,
            candidates.len() as f64 / secs,
            probe.front.len(),
            probe
                .reports
                .iter()
                .filter(|r| r.outcome.eval().is_some())
                .count(),
        ));
    }
    let deterministic = fingerprints.windows(2).all(|w| w[0] == w[1]);
    let per_sec_at = |t: usize| rows.iter().find(|r| r.0 == t).map(|r| r.2);
    let speedup_4t = match (per_sec_at(4), per_sec_at(1)) {
        (Some(four), Some(one)) if one > 0.0 => four / one,
        _ => f64::NAN,
    };

    println!("{{");
    println!(
        "  \"note\": \"Design-explorer throughput on the default 20-candidate sorting-center sweep (160 units, T=3600). candidates_per_sec = 20 / mean batch seconds over 3 runs after warm-up. 'deterministic' asserts byte-identical fingerprints (outcomes + Pareto front) across every thread count. Thread scaling is hardware-bound: on a host with available_cores = 1 every point measures the same serialized work and speedup_4t_vs_1t ~ 1.0 only proves the work queue adds no overhead; the >= 3x target at 4 threads needs >= 4 physical cores (candidates are independent, so scaling is embarrassingly parallel). Regenerate with: cargo run --release -p wsp-bench --bin explore > BENCH_explore.json. Schema: docs/BENCHMARKS.md.\","
    );
    println!("  \"available_cores\": {cores},");
    println!("  \"sweep_candidates\": {},", candidates.len());
    println!("  \"deterministic_across_thread_counts\": {deterministic},");
    println!("  \"speedup_4t_vs_1t\": {speedup_4t:.2},");
    println!("  \"runs\": [");
    for (i, (threads, secs, cps, front, solved)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{ \"threads\": {threads}, \"batch_seconds\": {secs:.4}, \"candidates_per_sec\": {cps:.2}, \"front_size\": {front}, \"solved\": {solved} }}{comma}"
        );
    }
    println!("  ]");
    println!("}}");

    assert!(deterministic, "thread counts disagreed — determinism bug");
}
