//! The scale experiment as a standalone harness: sweeps `scaled_warehouse`
//! sizes from ~10k to ~200k vertices, solves a cross-warehouse prioritized
//! MAPF instance on each, and prints one JSON entry per size with the
//! solve time and the reservation-table memory (actual adaptive bytes vs
//! the dense O(horizon × vertices) baseline). `BENCH_scaling.json` is
//! regenerated from this output; see docs/BENCHMARKS.md.

use std::time::Instant;

use wsp_bench::{scaling_planner, scaling_scenario};
use wsp_mapf::MapfProblem;

fn main() {
    // Optional override: `scaling <rows> <cols> [agents] [seed]` probes a
    // single configuration instead of the default sweep.
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let agents = args.get(2).copied().unwrap_or(8) as usize;
    let seed = args.get(3).copied().unwrap_or(7);
    let sizes: Vec<(u32, u32)> = match args[..] {
        [rows, cols, ..] => vec![(rows as u32, cols as u32)],
        [] => vec![(31, 320), (71, 700), (101, 1000), (141, 1400)],
        [_] => panic!("usage: scaling [<rows> <cols> [agents] [seed]]"),
    };
    println!("[");
    for (i, &(rows, cols)) in sizes.iter().enumerate() {
        let scenario = scaling_scenario(rows, cols, agents, seed);
        let graph = scenario.map.warehouse.graph();
        let vertices = graph.vertex_count();
        let planner = scaling_planner(&scenario.map);

        let t0 = Instant::now();
        let p = MapfProblem::new(graph, scenario.starts.clone(), scenario.goals.clone());
        let (solution, table) = planner.solve_with_table(&p).expect("solvable");
        let seconds = t0.elapsed().as_secs_f64();
        assert!(
            solution.validate(graph).is_empty(),
            "solution has conflicts at {vertices} vertices"
        );

        let sparse = table.memory_bytes();
        let dense = table.dense_equivalent_bytes();
        let makespan = solution.makespan();
        println!(
            "  {{\"bench\": \"scaling/prioritized-{vertices}v-{agents}a\", \
             \"rows\": {rows}, \"cols\": {cols}, \"vertices\": {vertices}, \
             \"agents\": {agents}, \"makespan\": {makespan}, \
             \"solve_s\": {seconds:.6}, \
             \"reservation_table_bytes\": {sparse}, \
             \"dense_equivalent_bytes\": {dense}, \
             \"dense_over_sparse\": {:.1}}}{}",
            dense as f64 / sparse as f64,
            if i + 1 == sizes.len() { "" } else { "," },
        );
    }
    println!("]");
}
