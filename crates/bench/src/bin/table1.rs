//! Regenerates Table I: nine WSP instances across the three evaluation
//! maps, in the paper's solver configuration (real-valued flows) plus the
//! strict-capacity variants this reproduction adds.

use wsp_bench::{run_paper_mode, run_strict_integer, run_strict_relaxed, table1_rows};

fn main() {
    println!("TABLE I — Benchmarking the methodology on 9 WSP instances (T = 3600)");
    println!("paper mode = real-valued flows, no entry-capacity assumption (the");
    println!("configuration that reproduces the paper's feasibility pattern).\n");
    println!(
        "{:<16} {:>8} {:>7}  Paper mode (flow synthesis)",
        "Map", "Products", "Units"
    );
    for (map, workloads) in table1_rows() {
        for units in workloads {
            let result = run_paper_mode(&map, units);
            println!(
                "{:<16} {:>8} {:>7}  {result}",
                map.name, map.products, units
            );
        }
    }

    println!("\nStrict mode (Property 4.1 capacity enforced) — real-valued flows:");
    for (map, workloads) in table1_rows() {
        for units in workloads {
            let result = run_strict_relaxed(&map, units);
            println!(
                "{:<16} {:>8} {:>7}  {result}",
                map.name, map.products, units
            );
        }
    }

    println!("\nStrict integer pipeline (flow -> cycles -> verified plan):");
    for (map, workloads) in table1_rows() {
        for units in workloads {
            let result = run_strict_integer(&map, units);
            println!(
                "{:<16} {:>8} {:>7}  {result}",
                map.name, map.products, units
            );
        }
    }
}
