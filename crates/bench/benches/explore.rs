use criterion::{criterion_group, criterion_main, Criterion};
use wsp_explore::{evaluate_batch, sorting_center_sweep, ExploreOptions};

/// Batch-evaluation throughput of the design-space explorer: the default
/// 20-candidate sorting-center sweep at 1, 2, 4, and all available worker
/// threads (BENCH_explore.json records candidates/sec per point; on a
/// single-core container the points collapse to queue-overhead parity).
fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    let candidates = sorting_center_sweep();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points = vec![1usize, 2, 4];
    if !points.contains(&cores) {
        points.push(cores);
    }
    for threads in points {
        let options = ExploreOptions {
            threads: Some(threads),
            ..ExploreOptions::default()
        };
        group.bench_function(format!("sweep20-{threads}t"), |b| {
            b.iter(|| criterion::black_box(evaluate_batch(&candidates, &options)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
