use criterion::{criterion_group, criterion_main, Criterion};
use wsp_core::{solve, PipelineOptions, WspInstance};

/// End-to-end pipeline timing on the evaluation maps: traffic system →
/// contracts → flows → cycles → realized plan. This is the bench the
/// flat-graph refactor trajectory is tracked against (BENCH_baseline.json).
fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    // Only the sorting center runs the strict integer pipeline end to end
    // (the fulfillment centers' Table I workloads are benched through the
    // relaxed paper-mode synthesis in `table1.rs`; their integer solves
    // take minutes and are not a per-PR regression gate).
    let rows = [(wsp_maps::sorting_center().expect("sorting builds"), 160u64)];
    for (map, units) in rows {
        let name = map.name.replace(' ', "_");
        group.bench_function(format!("solve-{name}-{units}"), |b| {
            b.iter(|| {
                let workload = map.uniform_workload(units);
                let instance =
                    WspInstance::new(map.warehouse.clone(), map.traffic.clone(), workload, 3_600);
                criterion::black_box(solve(&instance, &PipelineOptions::default()))
            })
        });
    }
    group.finish();
}

/// Realization alone (the per-timestep hot path) on the sorting center:
/// synthesize once, realize repeatedly over the full horizon.
fn bench_realize(c: &mut Criterion) {
    let mut group = c.benchmark_group("realize");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    let map = wsp_maps::sorting_center().expect("sorting builds");
    let workload = map.uniform_workload(160);
    let flow = wsp_flow::synthesize_flow(
        &map.warehouse,
        &map.traffic,
        &workload,
        3_600,
        &wsp_flow::FlowSynthesisOptions::default(),
    )
    .expect("flow synthesizes");
    let cycles = flow.decompose().expect("decomposes");
    group.bench_function("sorting_center-160", |b| {
        b.iter(|| {
            criterion::black_box(wsp_realize::realize(
                &map.warehouse,
                &map.traffic,
                &cycles,
                None,
                600,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_realize);
criterion_main!(benches);
