use criterion::{criterion_group, criterion_main, Criterion};
use wsp_bench::{scaling_planner, scaling_scenario};
use wsp_mapf::MapfProblem;

/// Scale sweep for the MAPF stack (tracked in BENCH_scaling.json): a
/// cross-warehouse prioritized solve on `scaled_warehouse` instances from
/// ~10k to ~100k vertices. The adaptive reservation table and the
/// frontier-sized A* layer maps keep both memory and time sublinear in
/// `horizon × vertices`; regenerate the JSON with
/// `cargo run --release -p wsp-bench --bin scaling`.
fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    // (rows, cols) -> ~rows × cols vertices; pitch 3, 8 agents.
    for (rows, cols) in [(31u32, 320u32), (71, 700), (101, 1000)] {
        let scenario = scaling_scenario(rows, cols, 8, 7);
        let vertices = scenario.map.warehouse.graph().vertex_count();
        let planner = scaling_planner(&scenario.map);
        group.bench_function(format!("prioritized-{vertices}v-8a"), |b| {
            b.iter(|| {
                let p = MapfProblem::new(
                    scenario.map.warehouse.graph(),
                    scenario.starts.clone(),
                    scenario.goals.clone(),
                );
                criterion::black_box(planner.solve(&p).expect("solvable"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
