use criterion::{criterion_group, criterion_main, Criterion};
use wsp_flow::{synthesize_flow_with_scratch, FlowSynthesisOptions, IlpScratch};

/// Flow-synthesis ILP timing on the paper's sorting center — the stage the
/// sparse revised simplex + warm-started branch-and-bound PR made the fast
/// one. `cold` builds a fresh solver scratch per solve (the
/// one-shot-caller cost); `warm` reuses one scratch across iterations, so
/// every iteration after the first takes the cross-solve warm-start path
/// (identical constraint skeleton → converged-basis reuse) that
/// back-to-back candidate evaluations in `wsp-explore` hit.
fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    let map = wsp_maps::sorting_center().expect("sorting builds");
    let workload = map.uniform_workload(160);

    group.bench_function("synthesize-Sorting_Center-160-cold", |b| {
        b.iter(|| {
            let mut scratch = IlpScratch::new();
            criterion::black_box(synthesize_flow_with_scratch(
                &map.warehouse,
                &map.traffic,
                &workload,
                3_600,
                &FlowSynthesisOptions::default(),
                &mut scratch,
            ))
        })
    });

    let mut scratch = IlpScratch::new();
    group.bench_function("synthesize-Sorting_Center-160-warm", |b| {
        b.iter(|| {
            criterion::black_box(synthesize_flow_with_scratch(
                &map.warehouse,
                &map.traffic,
                &workload,
                3_600,
                &FlowSynthesisOptions::default(),
                &mut scratch,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
