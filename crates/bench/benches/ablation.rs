use criterion::{criterion_group, criterion_main, Criterion};
use wsp_flow::{synthesize_flow_relaxed, FlowEngine, FlowSynthesisOptions};

/// Ablations called out in DESIGN.md: paper (per-product) vs layered
/// encoding size/runtime on the sorting center.
fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_encoding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let map = wsp_maps::sorting_center().expect("sorting builds");
    let workload = map.uniform_workload(160);
    for (name, engine) in [
        ("layered", FlowEngine::LayeredIlp),
        ("paper", FlowEngine::PaperIlp),
    ] {
        let options = FlowSynthesisOptions {
            engine,
            skip_capacity: true,
            ..FlowSynthesisOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                criterion::black_box(synthesize_flow_relaxed(
                    &map.warehouse,
                    &map.traffic,
                    &workload,
                    3600,
                    &options,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
