use criterion::{criterion_group, criterion_main, Criterion};
use wsp_mapf::{InnerSolver, IteratedPlanner, MapfProblem, PrioritizedPlanner};
use wsp_model::{FloorplanGraph, GridMap, VertexId};

/// §V baseline comparison: search-based MAPF runtime grows steeply with
/// team size, while contract-based synthesis is insensitive to it. This
/// bench sweeps the baseline's team size on an open warehouse-like grid.
fn open_grid() -> FloorplanGraph {
    let art = vec![".".repeat(24); 12].join("\n");
    FloorplanGraph::from_grid(&GridMap::from_ascii(&art).expect("grid"))
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_mapf");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let graph = open_grid();
    let vs: Vec<VertexId> = graph.vertices().collect();
    for agents in [2usize, 4, 8] {
        let starts: Vec<VertexId> = vs.iter().take(agents).copied().collect();
        let goals: Vec<Vec<VertexId>> = vs.iter().rev().take(agents).map(|&g| vec![g]).collect();
        group.bench_function(format!("iterated_ecbs-{agents}"), |b| {
            b.iter(|| {
                let p = MapfProblem::new(&graph, starts.clone(), goals.clone());
                let planner = IteratedPlanner::default();
                criterion::black_box(planner.solve(&p).expect("solvable"))
            })
        });
        group.bench_function(format!("prioritized-{agents}"), |b| {
            b.iter(|| {
                let p = MapfProblem::new(&graph, starts.clone(), goals.clone());
                let planner = IteratedPlanner {
                    inner: InnerSolver::Prioritized(PrioritizedPlanner::default()),
                    ..IteratedPlanner::default()
                };
                criterion::black_box(planner.solve(&p).expect("solvable"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
