use criterion::{criterion_group, criterion_main, Criterion};
use wsp_bench::{sim_scenario_paper, sim_scenario_scaled};
use wsp_sim::Simulation;

/// Sampled steady-state tick cost of the lifelong simulator (tracked in
/// BENCH_sim.json): each iteration advances a long-lived simulation by 64
/// ticks with deviations and MAPF repair enabled, so window replans
/// amortize into the samples exactly as they do in production. The paper
/// sorting center and a ~10k-vertex scaled warehouse bound the claim that
/// tick cost does not grow with the vertex count; the ≥100k-vertex point
/// is measured once by the `sim` binary
/// (`cargo run --release -p wsp-bench --bin sim`).
fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    let scenarios = vec![
        sim_scenario_paper(100_000),
        sim_scenario_scaled(31, 320, 400, 5),
    ];
    for scenario in &scenarios {
        let mut sim = Simulation::from_cycles(
            &scenario.instance,
            scenario.cycles.clone(),
            scenario.config(u64::MAX),
        )
        .expect("scenario simulates");
        sim.run_ticks(2 * sim.window_len() as u64).expect("warmup");
        group.bench_function(
            format!("{}-{}a-64ticks", scenario.label, sim.agent_count()),
            |b| {
                b.iter(|| {
                    sim.run_ticks(64).expect("stretch runs");
                    criterion::black_box(sim.counters().ticks)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
