use criterion::{criterion_group, criterion_main, Criterion};
use wsp_bench::{run_paper_mode, table1_rows};

/// Table I regeneration: one Criterion benchmark per row, timing flow
/// synthesis in the paper's solver configuration.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (map, workloads) in table1_rows() {
        for units in workloads {
            group.bench_function(format!("{}-{units}", map.name.replace(' ', "_")), |b| {
                b.iter(|| {
                    let r = run_paper_mode(&map, units);
                    criterion::black_box(r)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
