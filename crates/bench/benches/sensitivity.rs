use criterion::{criterion_group, criterion_main, Criterion};
use wsp_bench::run_paper_mode;

/// §V sensitivity claim: "doubling the units of product in the workload
/// increased runtime by less than 10%". One benchmark per (map, scale).
fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let sorting = wsp_maps::sorting_center().expect("sorting builds");
    let f1 = wsp_maps::fulfillment_center_1().expect("f1 builds");
    for (map, base) in [(&sorting, 160u64), (&f1, 550u64)] {
        for scale in [1u64, 2, 4] {
            let units = base * scale;
            group.bench_function(format!("{}-x{scale}", map.name.replace(' ', "_")), |b| {
                b.iter(|| criterion::black_box(run_paper_mode(map, units)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
