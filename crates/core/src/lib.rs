//! The end-to-end WSP co-design methodology (Fig. 2 of the paper): traffic
//! system → contracts → agent flows → agent cycles → discrete plan, with
//! per-phase timing and independent verification.
//!
//! [`solve`] runs the whole pipeline on a [`WspInstance`] and returns a
//! [`PipelineReport`] whose plan has already been checked — feasibility
//! conditions (1)–(3) of §III and workload servicing — by the
//! [`wsp_model::PlanChecker`], which shares no code with the planner.
//!
//! Underneath, the methodology is a staged engine ([`Pipeline`], module
//! [`pipeline`]): explicit `FlowArtifact → CycleArtifact →
//! RealizedArtifact → VerifiedReport` stages, each resumable from its
//! predecessor's artifact, sharing preallocated scratch tables so batch
//! evaluation over many candidate designs (`wsp-explore`) is
//! allocation-light and embarrassingly parallel (one `Pipeline` per
//! worker thread; every shared input is `Send + Sync`, enforced at
//! compile time).
//!
//! # Examples
//!
//! ```
//! use wsp_core::{solve, PipelineOptions, WspInstance};
//! use wsp_maps::sorting_center;
//!
//! let map = sorting_center()?;
//! let workload = map.uniform_workload(40);
//! let instance = WspInstance::new(map.warehouse, map.traffic, workload, 3600);
//! let report = solve(&instance, &PipelineOptions::default())?;
//! assert!(report.stats.total_delivered() >= 40);
//! println!("{}", report.summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod pipeline;

use std::fmt;
use std::time::Duration;

use wsp_flow::{AgentCycleSet, AgentFlowSet, FlowError, FlowSynthesisOptions};
use wsp_model::{PlanStats, Warehouse, Workload};
use wsp_realize::{RealizeError, RealizeOutcome};
use wsp_traffic::TrafficSystem;

pub use pipeline::{CycleArtifact, FlowArtifact, Pipeline, RealizedArtifact, VerifiedReport};
pub use wsp_flow::{synthesize_flow_relaxed, FlowEngine, RelaxedFlowSummary};
pub use wsp_realize::{AgentSnapshot, WindowOutcome};

/// Parses a thread-count override (the `WSP_THREADS` format): a bare
/// base-10 integer, surrounding whitespace tolerated. `0` is accepted and
/// means "minimum", which [`resolve_threads`] clamps to 1.
///
/// Everything that routes an external thread budget into the workspace —
/// [`resolve_threads`]' environment path and `wsp-server`'s per-job
/// `threads` knob — validates through this one function, so garbage is
/// rejected with the same message everywhere instead of being silently
/// swallowed.
///
/// # Errors
///
/// A human-readable description of why `raw` is not a thread count
/// (empty, non-numeric, or out of range for `usize`).
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    let t = raw.trim();
    if t.is_empty() {
        return Err("empty thread count".to_string());
    }
    t.parse::<usize>()
        .map_err(|e| format!("invalid thread count {t:?}: {e}"))
}

/// Set once `resolve_threads` has warned about an unparsable
/// `WSP_THREADS`; the warning is emitted one time per process.
static WSP_THREADS_WARNED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Resolves a worker-thread count: explicit override, then the
/// `WSP_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]; always at least 1 (an explicit
/// or environment `0` is clamped to 1).
///
/// An unparsable `WSP_THREADS` (e.g. `WSP_THREADS=two`) is **not**
/// silently swallowed: the first time one is seen, a warning naming the
/// bad value is printed to stderr, and the variable is ignored in favor
/// of [`std::thread::available_parallelism`]. Callers that need a hard
/// error instead (e.g. a server validating a per-job thread budget)
/// should validate with [`parse_threads`] first.
///
/// Shared by every parallel driver in the workspace (`wsp-explore`'s
/// batch evaluator, `wsp-sim`'s repair fan-out, `wsp-server`'s job
/// engine) so one knob steers them all.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            let raw = std::env::var("WSP_THREADS").ok()?;
            match parse_threads(&raw) {
                Ok(n) => Some(n),
                Err(e) => {
                    if !WSP_THREADS_WARNED.swap(true, std::sync::atomic::Ordering::Relaxed) {
                        eprintln!(
                            "warning: ignoring WSP_THREADS={raw:?} ({e}); \
                             falling back to available parallelism"
                        );
                    }
                    None
                }
            }
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Shared cancellation + progress channel between a long-running
/// evaluation and whoever supervises it (a server job registry, a signal
/// handler, a test).
///
/// The two sides communicate only through atomics, so one `RunControl`
/// can be shared (`Arc` or plain reference) between the worker driving
/// `wsp_explore::evaluate_batch_with` / `wsp_sim::Simulation::run_controlled`
/// and any number of observers. Cancellation is a level, not an edge:
/// once [`cancel`](RunControl::cancel) is called the flag stays set, and
/// runners stop at their next check point (per candidate for the
/// explorer, per chunk for the simulator). Progress is a monotone
/// counter whose unit the runner defines (candidates evaluated,
/// simulated ticks); observers treat it as "work done so far".
#[derive(Debug, Default)]
pub struct RunControl {
    cancelled: std::sync::atomic::AtomicBool,
    progress: std::sync::atomic::AtomicU64,
}

impl RunControl {
    /// A fresh control: not cancelled, zero progress.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Requests cancellation (sticky; idempotent).
    pub fn cancel(&self) {
        self.cancelled
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Work units completed so far (runner-defined units).
    pub fn progress(&self) -> u64 {
        self.progress.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Adds `n` completed work units (called by the runner).
    pub fn add_progress(&self, n: u64) {
        self.progress
            .fetch_add(n, std::sync::atomic::Ordering::AcqRel);
    }
}

/// A warehouse servicing problem instance (Problem 3.1) together with its
/// co-designed traffic system.
#[derive(Debug, Clone)]
pub struct WspInstance {
    /// The warehouse `W`.
    pub warehouse: Warehouse,
    /// The traffic system designed over `W`.
    pub traffic: TrafficSystem,
    /// The workload `w`.
    pub workload: Workload,
    /// The timestep limit `T`.
    pub t_limit: usize,
}

impl WspInstance {
    /// Bundles an instance.
    pub fn new(
        warehouse: Warehouse,
        traffic: TrafficSystem,
        workload: Workload,
        t_limit: usize,
    ) -> Self {
        WspInstance {
            warehouse,
            traffic,
            workload,
            t_limit,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Flow-synthesis options (engine, ILP limits, period cap).
    pub flow: FlowSynthesisOptions,
    /// Run the realization for the full horizon even after the workload is
    /// serviced (default: stop at the last needed delivery).
    pub realize_full_horizon: bool,
}

/// Wall-clock duration of each pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Contract compilation + flow synthesis (the paper's reported time).
    pub flow_synthesis: Duration,
    /// Flow → agent-cycle decomposition.
    pub decomposition: Duration,
    /// Algorithm 1 realization.
    pub realization: Duration,
    /// Independent plan checking.
    pub verification: Duration,
}

impl PhaseTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.flow_synthesis + self.decomposition + self.realization + self.verification
    }
}

/// Everything the pipeline produced, all independently verified.
///
/// Equality compares the full report including the wall-clock
/// [`PhaseTimings`]; for run-to-run reproducibility comparisons, compare
/// [`objective`](PipelineReport::objective) and the artifacts instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// The synthesized agent flow set (validated against §IV-D exactly).
    pub flow: AgentFlowSet,
    /// The agent cycle set (every cycle carry-consistent).
    pub cycles: AgentCycleSet,
    /// The realization outcome (plan + delivery counts).
    pub outcome: RealizeOutcome,
    /// Plan statistics from the independent checker.
    pub stats: PlanStats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

impl PipelineReport {
    /// A one-line summary in the style of the paper's result reporting.
    pub fn summary(&self) -> String {
        format!(
            "{} agents, {} cycles, {} units delivered in {} timesteps \
             (flow {:.3}s, decomp {:.3}s, realize {:.3}s, verify {:.3}s)",
            self.outcome.agents,
            self.cycles.cycles().len(),
            self.stats.total_delivered(),
            self.outcome.timesteps,
            self.timings.flow_synthesis.as_secs_f64(),
            self.timings.decomposition.as_secs_f64(),
            self.timings.realization.as_secs_f64(),
            self.timings.verification.as_secs_f64(),
        )
    }

    /// The minimization objective pair `(agents, makespan)` used to score
    /// a design: the team size the plan employs and the timestep of the
    /// last needed delivery (falling back to the executed horizon for
    /// plans without deliveries). `wsp-explore`'s Pareto scorer and the
    /// benches both rank candidates with this helper, so the scoring
    /// expression lives in exactly one place.
    pub fn objective(&self) -> (usize, usize) {
        let makespan = self.stats.last_delivery.unwrap_or(self.outcome.timesteps);
        (self.outcome.agents, makespan)
    }
}

/// Pipeline failure, tagged by phase.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Flow synthesis failed (infeasible workload, solver limit, …).
    Flow(FlowError),
    /// Realization failed (capacity precondition, inconsistent cycles, …).
    Realize(RealizeError),
    /// The realized plan failed independent checking, or serviced less
    /// than the workload within `T` (reports the checker's explanation).
    Verification(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Flow(e) => write!(f, "flow synthesis: {e}"),
            PipelineError::Realize(e) => write!(f, "realization: {e}"),
            PipelineError::Verification(e) => write!(f, "verification: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Flow(e) => Some(e),
            PipelineError::Realize(e) => Some(e),
            PipelineError::Verification(_) => None,
        }
    }
}

impl From<FlowError> for PipelineError {
    fn from(e: FlowError) -> Self {
        PipelineError::Flow(e)
    }
}

impl From<RealizeError> for PipelineError {
    fn from(e: RealizeError) -> Self {
        PipelineError::Realize(e)
    }
}

/// Runs the full methodology on an instance: synthesize flows, decompose
/// into cycles, realize into a discrete plan, and verify the plan
/// independently.
///
/// # Errors
///
/// Returns a [`PipelineError`] tagged with the failing phase.
pub fn solve(
    instance: &WspInstance,
    options: &PipelineOptions,
) -> Result<PipelineReport, PipelineError> {
    Pipeline::new().run(instance, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Direction, GridMap, ProductCatalog, ProductId};
    use wsp_traffic::design_perimeter_loop;

    fn tiny_instance(demand: u64) -> WspInstance {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let mut w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        w.set_catalog(ProductCatalog::with_len(1));
        let s = w.shelf_access()[0];
        w.stock(s, ProductId(0), 10_000).unwrap();
        let ts = design_perimeter_loop(&w, 3).unwrap();
        WspInstance::new(w, ts, Workload::from_demands(vec![demand]), 600)
    }

    #[test]
    fn end_to_end_tiny() {
        let instance = tiny_instance(12);
        let report = solve(&instance, &PipelineOptions::default()).unwrap();
        assert!(report.stats.total_delivered() >= 12);
        assert_eq!(report.outcome.missed_advances, 0);
        assert!(report.summary().contains("units delivered"));
    }

    #[test]
    fn full_horizon_option_runs_to_t() {
        let instance = tiny_instance(2);
        let report = solve(
            &instance,
            &PipelineOptions {
                realize_full_horizon: true,
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome.timesteps, 600);
        // Full horizon keeps delivering past the demand.
        assert!(report.stats.total_delivered() > 2);
    }

    #[test]
    fn infeasible_instance_reports_flow_phase() {
        let mut instance = tiny_instance(1);
        instance.workload = Workload::from_demands(vec![10_000_000]);
        let err = solve(&instance, &PipelineOptions::default()).unwrap_err();
        assert!(matches!(err, PipelineError::Flow(_)));
    }

    #[test]
    fn paper_engine_end_to_end() {
        let instance = tiny_instance(6);
        let report = solve(
            &instance,
            &PipelineOptions {
                flow: FlowSynthesisOptions {
                    engine: FlowEngine::PaperIlp,
                    ..FlowSynthesisOptions::default()
                },
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert!(report.stats.total_delivered() >= 6);
    }

    #[test]
    fn timings_are_recorded() {
        let instance = tiny_instance(4);
        let report = solve(&instance, &PipelineOptions::default()).unwrap();
        assert!(report.timings.total() > Duration::ZERO);
    }

    #[test]
    fn parse_threads_accepts_integers_and_rejects_garbage() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 2 "), Ok(2));
        assert_eq!(parse_threads("0"), Ok(0));
        assert!(parse_threads("").is_err());
        assert!(parse_threads("  ").is_err());
        assert!(parse_threads("two").is_err());
        assert!(parse_threads("-1").is_err());
        assert!(parse_threads("3.5").is_err());
        assert!(parse_threads("4x").is_err());
        // Out of range for usize.
        assert!(parse_threads("99999999999999999999999999").is_err());
    }

    /// The `0` / garbage / unset / explicit-override resolution matrix.
    /// One test drives every environment case so the env mutation is
    /// serialized (tests in one binary run concurrently).
    #[test]
    fn resolve_threads_matrix() {
        // Explicit override wins regardless of the environment, and 0 is
        // clamped to 1.
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(1)), 1);
        assert_eq!(resolve_threads(Some(0)), 1);

        let saved = std::env::var("WSP_THREADS").ok();
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);

        // Unset: available parallelism.
        std::env::remove_var("WSP_THREADS");
        assert_eq!(resolve_threads(None), auto.max(1));

        // Parsable env values are honored; 0 clamps to 1.
        std::env::set_var("WSP_THREADS", "2");
        assert_eq!(resolve_threads(None), 2);
        std::env::set_var("WSP_THREADS", "0");
        assert_eq!(resolve_threads(None), 1);

        // Garbage is rejected loudly (a one-time stderr warning), never
        // silently parsed, and falls back to available parallelism.
        std::env::set_var("WSP_THREADS", "two");
        assert_eq!(resolve_threads(None), auto.max(1));
        assert!(
            WSP_THREADS_WARNED.load(std::sync::atomic::Ordering::Relaxed),
            "garbage WSP_THREADS must trip the one-time warning"
        );
        // Explicit override still bypasses the garbage env entirely.
        assert_eq!(resolve_threads(Some(5)), 5);

        match saved {
            Some(v) => std::env::set_var("WSP_THREADS", v),
            None => std::env::remove_var("WSP_THREADS"),
        }
    }

    #[test]
    fn run_control_is_sticky_and_monotone() {
        let c = RunControl::new();
        assert!(!c.is_cancelled());
        assert_eq!(c.progress(), 0);
        c.add_progress(3);
        c.add_progress(4);
        assert_eq!(c.progress(), 7);
        c.cancel();
        assert!(c.is_cancelled());
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
    }
}
