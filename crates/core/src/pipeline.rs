//! The staged pipeline engine: the four phases of the methodology as
//! explicit, resumable stages over typed artifacts, driven by a reusable
//! [`Pipeline`] whose scratch tables make repeated evaluations
//! allocation-light.
//!
//! The one-shot [`solve`](crate::solve) remains the convenience entry
//! point; it is now a thin wrapper over `Pipeline::new().run(..)`. The
//! staged API exists for two callers:
//!
//! * **Batch evaluation** (`wsp-explore`): one `Pipeline` per worker
//!   thread evaluates candidate designs back to back, reusing the
//!   realization and verification scratch across candidates.
//! * **Resumption**: every stage takes the previous stage's artifact, so a
//!   caller can synthesize once and re-realize under different options
//!   (horizon, full-horizon flag) without re-running the ILP, or re-verify
//!   a realized artifact against a different workload.
//!
//! Stage chain: [`FlowArtifact`] → [`CycleArtifact`] → [`RealizedArtifact`]
//! → [`VerifiedReport`]. Artifacts nest (each carries its predecessor), so
//! any artifact alone is enough to resume from, and the final verification
//! assembles the flat [`PipelineReport`] from the chain.
//!
//! # Examples
//!
//! Resuming from the cycle stage to compare horizons without re-solving
//! the ILP:
//!
//! ```
//! use wsp_core::{Pipeline, PipelineOptions, WspInstance};
//! use wsp_maps::sorting_center;
//!
//! let map = sorting_center()?;
//! let workload = map.uniform_workload(40);
//! let instance = WspInstance::new(map.warehouse, map.traffic, workload, 3600);
//! let options = PipelineOptions::default();
//!
//! let mut pipeline = Pipeline::new();
//! let flow = pipeline.synthesize(&instance, &options)?;
//! let cycles = pipeline.decompose(&flow)?;
//! // Two realizations from one synthesis.
//! let fast = pipeline.realize(&instance, &options, &cycles)?;
//! let report = pipeline.verify(&instance, fast)?;
//! assert!(report.stats.total_delivered() >= 40);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::time::{Duration, Instant};

use wsp_flow::{synthesize_flow_with_scratch, AgentCycleSet, AgentFlowSet, IlpScratch};
use wsp_model::{CheckScratch, LocationMatrix};
use wsp_realize::{
    realize_window_with_scratch, realize_with_scratch, AgentSnapshot, RealizeOutcome,
    RealizeScratch, WindowOutcome,
};

use crate::{PhaseTimings, PipelineError, PipelineOptions, PipelineReport, WspInstance};

/// Stage-one artifact: the synthesized agent flow set (§IV-D).
#[derive(Debug, Clone)]
pub struct FlowArtifact {
    /// The synthesized agent flow set (validated against §IV-D exactly).
    pub flow: AgentFlowSet,
    /// Wall-clock time of contract compilation + flow synthesis.
    pub elapsed: Duration,
}

/// Stage-two artifact: the flow decomposed into agent cycles (§IV-E).
#[derive(Debug, Clone)]
pub struct CycleArtifact {
    /// The stage-one artifact this was decomposed from.
    pub flow: FlowArtifact,
    /// The agent cycle set (every cycle carry-consistent).
    pub cycles: AgentCycleSet,
    /// Wall-clock time of the decomposition.
    pub elapsed: Duration,
}

/// Stage-three artifact: the cycles realized into a discrete plan
/// (Algorithm 1).
#[derive(Debug, Clone)]
pub struct RealizedArtifact {
    /// The stage-two artifact this was realized from.
    pub cycles: CycleArtifact,
    /// The realization outcome (plan + delivery counts).
    pub outcome: RealizeOutcome,
    /// Wall-clock time of the realization.
    pub elapsed: Duration,
}

/// Stage-four artifact: the independently verified end state of the
/// pipeline — the flat [`PipelineReport`].
pub type VerifiedReport = PipelineReport;

/// The staged pipeline engine. One `Pipeline` holds the preallocated
/// realization and verification scratch tables plus the ILP solver
/// scratch (basis factors, pricing workspace, and the warm-start state
/// the flow synthesizer reuses across candidates that share a constraint
/// skeleton); keep it per thread (it is `Send`, and every stage method
/// takes the instance by `&`) and feed it instances back to back for
/// allocation-light batch evaluation.
#[derive(Debug, Default)]
pub struct Pipeline {
    realize_scratch: RealizeScratch,
    check_scratch: CheckScratch,
    ilp_scratch: IlpScratch,
}

impl Pipeline {
    /// A fresh pipeline (scratch tables grow on first use).
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Stage one: synthesize an agent flow set for the instance (Fig. 2,
    /// "synthesize agent flows").
    ///
    /// # Errors
    ///
    /// [`PipelineError::Flow`] on infeasible workloads or solver limits.
    pub fn synthesize(
        &mut self,
        instance: &WspInstance,
        options: &PipelineOptions,
    ) -> Result<FlowArtifact, PipelineError> {
        let t0 = Instant::now();
        let flow = synthesize_flow_with_scratch(
            &instance.warehouse,
            &instance.traffic,
            &instance.workload,
            instance.t_limit,
            &options.flow,
            &mut self.ilp_scratch,
        )?;
        Ok(FlowArtifact {
            flow,
            elapsed: t0.elapsed(),
        })
    }

    /// Stage two: decompose the flow set into agent cycles.
    ///
    /// Borrows the artifact (cloning the small flow set into the result),
    /// so one synthesis can feed several decompositions.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Flow`] if the flow set cannot be decomposed
    /// (cannot happen for flow sets produced by stage one).
    pub fn decompose(&mut self, flow: &FlowArtifact) -> Result<CycleArtifact, PipelineError> {
        let t0 = Instant::now();
        let cycles = flow.flow.decompose()?;
        Ok(CycleArtifact {
            flow: flow.clone(),
            cycles,
            elapsed: t0.elapsed(),
        })
    }

    /// Stage three: realize the cycle set into a discrete collision-free
    /// plan, reusing this pipeline's realization scratch.
    ///
    /// Borrows the artifact, so one decomposition can feed several
    /// realizations (e.g. different horizons via `options`).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Realize`] on capacity violations or inconsistent
    /// cycle sets.
    pub fn realize(
        &mut self,
        instance: &WspInstance,
        options: &PipelineOptions,
        cycles: &CycleArtifact,
    ) -> Result<RealizedArtifact, PipelineError> {
        let t0 = Instant::now();
        let workload_stop = if options.realize_full_horizon {
            None
        } else {
            Some(&instance.workload)
        };
        let outcome = realize_with_scratch(
            &instance.warehouse,
            &instance.traffic,
            &cycles.cycles,
            workload_stop,
            instance.t_limit,
            &mut self.realize_scratch,
        )?;
        Ok(RealizedArtifact {
            cycles: cycles.clone(),
            outcome,
            elapsed: t0.elapsed(),
        })
    }

    /// Resumes the realize stage as one rolling-horizon window: exactly
    /// `window` ticks starting at absolute timestep `start_t` from the
    /// given per-agent [`AgentSnapshot`]s, debiting executed pickups from
    /// the caller-owned `stock` ledger and reusing this pipeline's
    /// realization scratch.
    ///
    /// This is the replanning entry point of the lifelong simulator
    /// (`wsp-sim`): synthesize and decompose once, then realize window
    /// after window from the executed state — windowing is exact, so a
    /// deviation-free sequence of windows reproduces the one-shot
    /// [`realize`](Self::realize) trajectories tick for tick.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Realize`] on invalid cycle sets or malformed
    /// snapshots ([`wsp_realize::RealizeError::BadSnapshot`]).
    pub fn realize_window(
        &mut self,
        instance: &WspInstance,
        cycles: &AgentCycleSet,
        start_t: usize,
        window: usize,
        states: &[AgentSnapshot],
        stock: &mut LocationMatrix,
    ) -> Result<WindowOutcome, PipelineError> {
        realize_window_with_scratch(
            &instance.warehouse,
            &instance.traffic,
            cycles,
            start_t,
            window,
            states,
            stock,
            &mut self.realize_scratch,
        )
        .map_err(PipelineError::from)
    }

    /// Stage four: check the realized plan with the independent
    /// [`wsp_model::PlanChecker`] (feasibility conditions (1)–(3) of §III
    /// plus workload servicing), reusing this pipeline's verification
    /// scratch, and assemble the flat report.
    ///
    /// Takes the artifact by value: the verified plan moves into the
    /// report rather than being copied.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Verification`] with the checker's explanation.
    pub fn verify(
        &mut self,
        instance: &WspInstance,
        realized: RealizedArtifact,
    ) -> Result<VerifiedReport, PipelineError> {
        let t0 = Instant::now();
        let checker = wsp_model::PlanChecker::new(&instance.warehouse);
        let stats = checker
            .check_services_with_scratch(
                &realized.outcome.plan,
                &instance.workload,
                &mut self.check_scratch,
            )
            .map_err(|e| PipelineError::Verification(e.to_string()))?;
        let timings = PhaseTimings {
            flow_synthesis: realized.cycles.flow.elapsed,
            decomposition: realized.cycles.elapsed,
            realization: realized.elapsed,
            verification: t0.elapsed(),
        };
        let RealizedArtifact {
            cycles: cycle_artifact,
            outcome,
            ..
        } = realized;
        Ok(PipelineReport {
            flow: cycle_artifact.flow.flow,
            cycles: cycle_artifact.cycles,
            outcome,
            stats,
            timings,
        })
    }

    /// Runs all four stages: synthesize flows, decompose into cycles,
    /// realize into a discrete plan, and verify the plan independently.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] tagged with the failing phase.
    pub fn run(
        &mut self,
        instance: &WspInstance,
        options: &PipelineOptions,
    ) -> Result<PipelineReport, PipelineError> {
        let flow = self.synthesize(instance, options)?;
        let cycles = self.decompose(&flow)?;
        let realized = self.realize(instance, options, &cycles)?;
        self.verify(instance, realized)
    }
}

// Compile-time Send + Sync audit: `wsp-explore` moves instances, options,
// pipelines, and artifacts across `std::thread::scope` workers, and shares
// candidate inputs behind `&` — every type crossing the boundary must be
// thread-safe. A regression here (an `Rc`, a raw pointer, interior
// mutability without `Sync`) fails the build, not the batch run.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<wsp_model::Warehouse>();
    assert_send_sync::<wsp_traffic::TrafficSystem>();
    assert_send_sync::<wsp_model::Workload>();
    assert_send_sync::<wsp_flow::FlowSynthesisOptions>();
    assert_send_sync::<WspInstance>();
    assert_send_sync::<PipelineOptions>();
    assert_send_sync::<PipelineReport>();
    assert_send_sync::<FlowArtifact>();
    assert_send_sync::<CycleArtifact>();
    assert_send_sync::<RealizedArtifact>();
    // The lifelong simulator (`wsp-sim`) moves snapshots, window plans,
    // and candidate repair paths across its scoped repair workers.
    assert_send_sync::<AgentSnapshot>();
    assert_send_sync::<WindowOutcome>();
    // The event-driven simulator hands whole realize scratches (and the
    // window plans realized through them, `first_change` schedule
    // included) to worker pipelines; its own queue/scheduler types are
    // audited in `wsp_sim`'s mirror of this block.
    assert_send_sync::<wsp_realize::RealizeScratch>();
    // The solver scratches live inside each worker's `Pipeline` and cross
    // the thread boundary with it.
    assert_send_sync::<IlpScratch>();
    assert_send_sync::<wsp_flow::LpScratch>();
    // `wsp-server` shares one `RunControl` per job between its HTTP
    // handler threads (cancel/poll) and the job worker driving the
    // evaluation — it must stay lock-free thread-safe.
    assert_send_sync::<crate::RunControl>();
    assert_send::<Pipeline>();
    assert_send::<PipelineError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::{Direction, GridMap, ProductCatalog, ProductId, Warehouse, Workload};
    use wsp_traffic::design_perimeter_loop;

    fn tiny_instance(demand: u64) -> WspInstance {
        let grid = GridMap::from_ascii("...\n.#.\n.@.").unwrap();
        let mut w =
            Warehouse::from_grid_with_access(&grid, &[Direction::East, Direction::West]).unwrap();
        w.set_catalog(ProductCatalog::with_len(1));
        let s = w.shelf_access()[0];
        w.stock(s, ProductId(0), 10_000).unwrap();
        let ts = design_perimeter_loop(&w, 3).unwrap();
        WspInstance::new(w, ts, Workload::from_demands(vec![demand]), 600)
    }

    #[test]
    fn staged_run_matches_one_shot_solve() {
        let instance = tiny_instance(12);
        let options = PipelineOptions::default();
        let one_shot = crate::solve(&instance, &options).unwrap();
        let staged = Pipeline::new().run(&instance, &options).unwrap();
        assert_eq!(staged.flow, one_shot.flow);
        assert_eq!(staged.cycles.cycles(), one_shot.cycles.cycles());
        assert_eq!(staged.outcome, one_shot.outcome);
        assert_eq!(staged.stats, one_shot.stats);
    }

    #[test]
    fn pipeline_reuse_across_instances_is_deterministic() {
        let mut pipeline = Pipeline::new();
        let options = PipelineOptions::default();
        let a1 = pipeline.run(&tiny_instance(12), &options).unwrap();
        let _other = pipeline.run(&tiny_instance(3), &options).unwrap();
        let a2 = pipeline.run(&tiny_instance(12), &options).unwrap();
        assert_eq!(a1.outcome, a2.outcome);
        assert_eq!(a1.stats, a2.stats);
        assert_eq!(a1.objective(), a2.objective());
    }

    #[test]
    fn stages_resume_from_retained_artifacts() {
        let instance = tiny_instance(4);
        let options = PipelineOptions::default();
        let mut pipeline = Pipeline::new();
        let flow = pipeline.synthesize(&instance, &options).unwrap();
        let cycles = pipeline.decompose(&flow).unwrap();

        // Early-stop and full-horizon realizations from the same cycles.
        let early = pipeline.realize(&instance, &options, &cycles).unwrap();
        let full_options = PipelineOptions {
            realize_full_horizon: true,
            ..PipelineOptions::default()
        };
        let full = pipeline.realize(&instance, &full_options, &cycles).unwrap();
        assert!(early.outcome.timesteps < full.outcome.timesteps);
        assert_eq!(full.outcome.timesteps, 600);

        let early_report = pipeline.verify(&instance, early).unwrap();
        let full_report = pipeline.verify(&instance, full).unwrap();
        assert!(early_report.stats.total_delivered() >= 4);
        assert!(full_report.stats.total_delivered() > early_report.stats.total_delivered());
    }

    #[test]
    fn realize_window_resumes_the_realize_stage() {
        let instance = tiny_instance(4);
        let options = PipelineOptions {
            realize_full_horizon: true,
            ..PipelineOptions::default()
        };
        let mut pipeline = Pipeline::new();
        let flow = pipeline.synthesize(&instance, &options).unwrap();
        let cycles = pipeline.decompose(&flow).unwrap();
        let full = pipeline.realize(&instance, &options, &cycles).unwrap();

        let mut states = wsp_realize::initial_snapshots(&instance.traffic, &cycles.cycles).unwrap();
        let mut stock = instance.warehouse.location_matrix().clone();
        let mut t = 0usize;
        while t < 60 {
            let out = pipeline
                .realize_window(&instance, &cycles.cycles, t, 20, &states, &mut stock)
                .unwrap();
            for (a, s) in out.final_states.iter().enumerate() {
                assert_eq!(
                    s.pos,
                    full.outcome.plan.state(a, t + 20).unwrap().at,
                    "agent {a} diverged at t={}",
                    t + 20
                );
            }
            states = out.final_states;
            t += 20;
        }
    }

    #[test]
    fn verify_reports_unserviced_workloads() {
        let instance = tiny_instance(4);
        let options = PipelineOptions::default();
        let mut pipeline = Pipeline::new();
        let flow = pipeline.synthesize(&instance, &options).unwrap();
        let cycles = pipeline.decompose(&flow).unwrap();
        let realized = pipeline.realize(&instance, &options, &cycles).unwrap();
        // Verifying against a harder instance must fail in the verify phase.
        let mut harder = instance.clone();
        harder.workload = Workload::from_demands(vec![1_000]);
        let err = pipeline.verify(&harder, realized).unwrap_err();
        assert!(matches!(err, PipelineError::Verification(_)));
    }

    #[test]
    fn artifact_timings_flow_into_the_report() {
        let instance = tiny_instance(6);
        let options = PipelineOptions::default();
        let mut pipeline = Pipeline::new();
        let flow = pipeline.synthesize(&instance, &options).unwrap();
        let cycles = pipeline.decompose(&flow).unwrap();
        let realized = pipeline.realize(&instance, &options, &cycles).unwrap();
        let synth_elapsed = flow.elapsed;
        let report = pipeline.verify(&instance, realized).unwrap();
        assert_eq!(report.timings.flow_synthesis, synth_elapsed);
        assert!(report.timings.total() >= synth_elapsed);
    }
}
