//! MAPF catch-up repair: when an agent falls far enough behind its window
//! plan (a stall of its own, or a convoy queued behind one), the engine
//! tries to splice in a space-time A* detour that rejoins the plan
//! downstream *on schedule*, planned against a [`ReservationTable`]
//! holding every other agent's projected trajectory.
//!
//! The fan-out is the same determinism shape as `wsp-explore`'s batch
//! evaluator: workers claim request indices off an atomic counter, search
//! against the shared read-only table with per-worker
//! [`SearchScratch`] tables, and write results into request-indexed
//! slots — so the outcome is a pure function of the requests at every
//! thread count. Acceptance then runs sequentially in agent order,
//! cross-checking accepted paths pairwise (candidates are not in the
//! shared table), which keeps the applied set order-independent too.

use std::sync::atomic::{AtomicUsize, Ordering};

use wsp_mapf::{PlanQuery, ReservationTable, SearchScratch, SpaceTimeAstar};
use wsp_model::{FloorplanGraph, VertexId};

/// One catch-up request: route `agent` from `start` (its actual position,
/// relative time 0) to `goal` (its plan cell at the rejoin index),
/// arriving in at most `deadline` ticks so the rejoin is back on schedule.
#[derive(Debug, Clone)]
pub(crate) struct RepairRequest {
    pub agent: usize,
    pub start: VertexId,
    pub goal: VertexId,
    /// Relative arrival budget; the found path is padded with waits at
    /// `goal` to exactly this length, so acceptance means lag-zero rejoin.
    pub deadline: usize,
    /// Window-plan index the agent's cursor jumps to on completion.
    pub rejoin_cursor: usize,
    /// The agent's lag when the request was made (batch-cap priority).
    pub lag: usize,
}

/// An accepted catch-up: the padded relative path (`path[0] == start`,
/// `path[deadline] == goal`) and the rejoin index.
#[derive(Debug, Clone)]
pub(crate) struct RepairPath {
    pub path: Vec<VertexId>,
    /// Progress along `path` (index of the cell the agent stands on).
    pub at: usize,
    pub rejoin_cursor: usize,
}

/// Plans every request against the shared reservation table on up to
/// `threads` scoped workers and returns accepted, padded paths in
/// request-indexed slots (`None` = no path within the deadline).
pub(crate) fn plan_repairs(
    graph: &FloorplanGraph,
    table: &ReservationTable,
    requests: &[RepairRequest],
    threads: usize,
) -> Vec<Option<Vec<VertexId>>> {
    let n = requests.len();
    let mut slots: Vec<Option<Vec<VertexId>>> = Vec::new();
    slots.resize_with(n, || None);
    if n == 0 {
        return slots;
    }
    // Deadline-capped searches are microseconds of work; below a handful
    // of requests the thread spawn/join overhead dwarfs them, so small
    // batches run inline. Results are slot-indexed either way, so the
    // outcome is byte-identical at any width.
    let threads = if n <= 4 { 1 } else { threads.clamp(1, n) };
    let next = AtomicUsize::new(0);
    let worker = || {
        let mut scratch = SearchScratch::new();
        let mut produced: Vec<(usize, Option<Vec<VertexId>>)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            produced.push((i, plan_one(graph, table, &requests[i], &mut scratch)));
        }
        produced
    };

    if threads == 1 {
        for (i, found) in worker() {
            slots[i] = found;
        }
        return slots;
    }
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            workers.push(scope.spawn(worker));
        }
        for handle in workers {
            for (i, found) in handle.join().expect("repair worker panicked") {
                slots[i] = found;
            }
        }
    });
    slots
}

/// One catch-up search: deadline-capped space-time A* to the rejoin cell,
/// padded with validated waits so the agent camps at the goal only when
/// the reservation table says nobody reserved it.
fn plan_one(
    graph: &FloorplanGraph,
    table: &ReservationTable,
    r: &RepairRequest,
    scratch: &mut SearchScratch,
) -> Option<Vec<VertexId>> {
    // A path longer than the deadline is rejected anyway, so cap the
    // search horizon at the deadline instead of wasting expansions on
    // unacceptable paths.
    let astar = SpaceTimeAstar {
        max_time: r.deadline + 1,
        focal_weight: 1.0,
    };
    let query = PlanQuery {
        start: r.start,
        start_time: 0,
        goal: r.goal,
        reservations: Some(table),
        constraints: None,
        conflict_paths: None,
        require_parkable: false,
    };
    let segment = astar.plan_with_scratch(graph, &query, scratch)?;
    let mut path = segment.path;
    if path.len() > r.deadline + 1 {
        return None; // cannot rejoin on schedule
    }
    // The A* validated every step against the table; the goal-waits the
    // padding adds must be validated too, or the camped agent would block
    // a reserved trajectory passing through the rejoin cell and amplify
    // the very lag the repair is meant to remove.
    if (path.len() - 1..=r.deadline).any(|k| !table.vertex_free(r.goal, k)) {
        return None;
    }
    path.resize(r.deadline + 1, r.goal);
    Some(path)
}

/// Sequential acceptance in agent order: a candidate path is accepted only
/// if it has no vertex or edge conflict with any previously accepted one
/// (candidates are excluded from the shared table, so they must be checked
/// against each other). Execution-time occupancy checks remain the safety
/// net either way.
pub(crate) fn accept_repairs(
    requests: &[RepairRequest],
    found: Vec<Option<Vec<VertexId>>>,
) -> Vec<(usize, RepairPath)> {
    let mut accepted: Vec<(usize, RepairPath)> = Vec::new();
    for (r, path) in requests.iter().zip(found) {
        let Some(path) = path else { continue };
        let clashes = accepted.iter().any(|(_, other)| {
            let horizon = path.len().max(other.path.len());
            (0..horizon).any(|k| {
                let mine = *path.get(k).unwrap_or(path.last().expect("non-empty"));
                let theirs = *other
                    .path
                    .get(k)
                    .unwrap_or(other.path.last().expect("non-empty"));
                if mine == theirs {
                    return true;
                }
                if k == 0 {
                    return false;
                }
                let mine_prev = *path.get(k - 1).unwrap_or(path.last().expect("non-empty"));
                let theirs_prev = *other
                    .path
                    .get(k - 1)
                    .unwrap_or(other.path.last().expect("non-empty"));
                mine == theirs_prev && theirs == mine_prev && mine != mine_prev
            })
        });
        if !clashes {
            accepted.push((
                r.agent,
                RepairPath {
                    path,
                    at: 0,
                    rejoin_cursor: r.rejoin_cursor,
                },
            ));
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_model::GridMap;

    fn graph(art: &str) -> FloorplanGraph {
        FloorplanGraph::from_grid(&GridMap::from_ascii(art).unwrap())
    }

    fn v(g: &FloorplanGraph, x: u32, y: u32) -> VertexId {
        g.vertex_at((x, y).into()).unwrap()
    }

    #[test]
    fn repairs_pad_to_the_deadline_and_slot_by_request() {
        let g = graph(".....\n.....");
        let table = ReservationTable::new(g.vertex_count());
        let requests = vec![
            RepairRequest {
                agent: 3,
                start: v(&g, 0, 0),
                goal: v(&g, 3, 0),
                deadline: 5,
                rejoin_cursor: 9,
                lag: 0,
            },
            RepairRequest {
                agent: 1,
                start: v(&g, 0, 1),
                goal: v(&g, 4, 1),
                deadline: 2, // unreachable: distance 4 > 2
                rejoin_cursor: 7,
                lag: 0,
            },
        ];
        for threads in [1usize, 2, 4] {
            let found = plan_repairs(&g, &table, &requests, threads);
            assert_eq!(found.len(), 2);
            let path = found[0].as_ref().expect("reachable");
            assert_eq!(path.len(), 6);
            assert_eq!(path[0], v(&g, 0, 0));
            assert_eq!(*path.last().unwrap(), v(&g, 3, 0));
            assert!(found[1].is_none(), "deadline 2 must be unreachable");
        }
    }

    #[test]
    fn acceptance_rejects_mutually_conflicting_paths() {
        let g = graph("...");
        let a = v(&g, 0, 0);
        let b = v(&g, 1, 0);
        let c = v(&g, 2, 0);
        let requests = vec![
            RepairRequest {
                agent: 0,
                start: a,
                goal: c,
                deadline: 2,
                rejoin_cursor: 4,
                lag: 0,
            },
            RepairRequest {
                agent: 1,
                start: c,
                goal: a,
                deadline: 2,
                rejoin_cursor: 4,
                lag: 0,
            },
        ];
        // Head-on paths through the 1-wide corridor: the second must lose.
        let found = vec![Some(vec![a, b, c]), Some(vec![c, b, a])];
        let accepted = accept_repairs(&requests, found);
        assert_eq!(accepted.len(), 1);
        assert_eq!(accepted[0].0, 0);
        assert_eq!(accepted[0].1.rejoin_cursor, 4);
    }

    #[test]
    fn disjoint_paths_are_both_accepted() {
        let g = graph("...\n...");
        let requests = vec![
            RepairRequest {
                agent: 0,
                start: v(&g, 0, 0),
                goal: v(&g, 2, 0),
                deadline: 2,
                rejoin_cursor: 2,
                lag: 0,
            },
            RepairRequest {
                agent: 1,
                start: v(&g, 0, 1),
                goal: v(&g, 2, 1),
                deadline: 2,
                rejoin_cursor: 2,
                lag: 0,
            },
        ];
        let found = plan_repairs(&g, &ReservationTable::new(g.vertex_count()), &requests, 2);
        let accepted = accept_repairs(&requests, found);
        assert_eq!(accepted.len(), 2);
    }
}
